//! Thompson-style NFA compiled from a [`Pattern`].
//!
//! States are connected by epsilon transitions and *consuming*
//! transitions labelled with an [`EventPattern`]. `All` (conjunction)
//! is expanded to the alternation of all orderings of its children,
//! with an arity cap; bounded `Repeat` is expanded by copying;
//! unbounded `Repeat` uses a back-edge.

use crate::pattern::{EventPattern, Pattern};
use fenestra_base::error::{Error, Result};

/// Maximum `All` arity (expanded to `arity!` orderings).
pub const MAX_ALL_ARITY: usize = 4;

/// A transition out of a state.
#[derive(Debug, Clone)]
pub enum Trans {
    /// Spontaneous move.
    Eps(usize),
    /// Consume an event matching the pattern, then move.
    Consume(Box<EventPattern>, usize),
}

/// One NFA state.
#[derive(Debug, Clone, Default)]
pub struct State {
    /// Outgoing transitions.
    pub trans: Vec<Trans>,
}

/// The compiled automaton.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// All states; indexes are state ids.
    pub states: Vec<State>,
    /// Initial state.
    pub start: usize,
    /// Accepting state (single, by construction).
    pub accept: usize,
}

impl Nfa {
    /// Compile a pattern.
    pub fn compile(pattern: &Pattern) -> Result<Nfa> {
        let mut b = Builder { states: Vec::new() };
        let (start, accept) = b.fragment(pattern)?;
        Ok(Nfa {
            states: b.states,
            start,
            accept,
        })
    }

    /// The epsilon-closure of a state.
    pub fn eps_closure(&self, state: usize) -> Vec<usize> {
        let mut seen = vec![false; self.states.len()];
        let mut stack = vec![state];
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            out.push(s);
            for t in &self.states[s].trans {
                if let Trans::Eps(n) = t {
                    stack.push(*n);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The consuming transitions reachable (via epsilon) from `state`.
    pub fn consuming_from(&self, state: usize) -> Vec<(&EventPattern, usize)> {
        let mut out = Vec::new();
        for s in self.eps_closure(state) {
            for t in &self.states[s].trans {
                if let Trans::Consume(p, n) = t {
                    out.push((p.as_ref(), *n));
                }
            }
        }
        out
    }

    /// Whether `state` can reach the accept state via epsilon moves.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.eps_closure(state).contains(&self.accept)
    }
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn new_state(&mut self) -> usize {
        self.states.push(State::default());
        self.states.len() - 1
    }

    fn eps(&mut self, from: usize, to: usize) {
        self.states[from].trans.push(Trans::Eps(to));
    }

    fn consume(&mut self, from: usize, pat: EventPattern, to: usize) {
        self.states[from]
            .trans
            .push(Trans::Consume(Box::new(pat), to));
    }

    /// Build a fragment; returns (entry, exit).
    fn fragment(&mut self, pattern: &Pattern) -> Result<(usize, usize)> {
        match pattern {
            Pattern::Atom(a) => {
                let s = self.new_state();
                let e = self.new_state();
                self.consume(s, a.clone(), e);
                Ok((s, e))
            }
            Pattern::Seq(ps) => {
                if ps.is_empty() {
                    return Err(Error::Invalid("empty sequence pattern".into()));
                }
                let mut entry = None;
                let mut prev_exit: Option<usize> = None;
                for p in ps {
                    let (s, e) = self.fragment(p)?;
                    if let Some(pe) = prev_exit {
                        self.eps(pe, s);
                    } else {
                        entry = Some(s);
                    }
                    prev_exit = Some(e);
                }
                Ok((entry.expect("non-empty"), prev_exit.expect("non-empty")))
            }
            Pattern::Any(ps) => {
                if ps.is_empty() {
                    return Err(Error::Invalid("empty alternation pattern".into()));
                }
                let s = self.new_state();
                let e = self.new_state();
                for p in ps {
                    let (ps_, pe) = self.fragment(p)?;
                    self.eps(s, ps_);
                    self.eps(pe, e);
                }
                Ok((s, e))
            }
            Pattern::All(ps) => {
                if ps.is_empty() {
                    return Err(Error::Invalid("empty conjunction pattern".into()));
                }
                if ps.len() > MAX_ALL_ARITY {
                    return Err(Error::Invalid(format!(
                        "conjunction arity {} exceeds the maximum {} (it expands to arity! orderings)",
                        ps.len(),
                        MAX_ALL_ARITY
                    )));
                }
                // Expand to Any over all orderings.
                let mut orderings: Vec<Pattern> = Vec::new();
                let idx: Vec<usize> = (0..ps.len()).collect();
                permute(&idx, &mut |perm| {
                    orderings.push(Pattern::Seq(perm.iter().map(|&i| ps[i].clone()).collect()));
                });
                self.fragment(&Pattern::Any(orderings))
            }
            Pattern::Repeat { pat, min, max } => {
                if let Some(max) = max {
                    if max < min || *max == 0 {
                        return Err(Error::Invalid(format!("bad repeat bounds {min}..={max}")));
                    }
                }
                let s = self.new_state();
                let e = self.new_state();
                // `min` mandatory copies.
                let mut cursor = s;
                for _ in 0..*min {
                    let (ps_, pe) = self.fragment(pat)?;
                    self.eps(cursor, ps_);
                    cursor = pe;
                }
                self.eps(cursor, e);
                match max {
                    Some(max) => {
                        // Optional copies up to max.
                        for _ in *min..*max {
                            let (ps_, pe) = self.fragment(pat)?;
                            self.eps(cursor, ps_);
                            self.eps(pe, e);
                            cursor = pe;
                        }
                    }
                    None => {
                        // Unbounded: loop one more copy back.
                        let (ps_, pe) = self.fragment(pat)?;
                        self.eps(cursor, ps_);
                        self.eps(pe, ps_);
                        self.eps(pe, e);
                    }
                }
                Ok((s, e))
            }
        }
    }
}

fn permute(items: &[usize], f: &mut impl FnMut(&[usize])) {
    let mut v: Vec<usize> = items.to_vec();
    permute_rec(&mut v, 0, f);
}

fn permute_rec(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute_rec(v, k + 1, f);
        v.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str) -> Pattern {
        Pattern::Atom(EventPattern::on(name, name))
    }

    #[test]
    fn atom_nfa() {
        let n = Nfa::compile(&atom("a")).unwrap();
        assert!(!n.is_accepting(n.start));
        let cons = n.consuming_from(n.start);
        assert_eq!(cons.len(), 1);
        assert!(n.is_accepting(cons[0].1));
    }

    #[test]
    fn seq_requires_order() {
        let n = Nfa::compile(&Pattern::seq([atom("a"), atom("b")])).unwrap();
        let first = n.consuming_from(n.start);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].0.alias.as_str(), "a");
        let second = n.consuming_from(first[0].1);
        assert_eq!(second[0].0.alias.as_str(), "b");
        assert!(n.is_accepting(second[0].1));
    }

    #[test]
    fn any_offers_both_branches() {
        let n = Nfa::compile(&Pattern::any_of([atom("a"), atom("b")])).unwrap();
        let firsts: Vec<&str> = n
            .consuming_from(n.start)
            .iter()
            .map(|(p, _)| p.alias.as_str())
            .collect();
        assert_eq!(firsts.len(), 2);
        assert!(firsts.contains(&"a") && firsts.contains(&"b"));
    }

    #[test]
    fn all_expands_orderings() {
        let n = Nfa::compile(&Pattern::all_of([atom("a"), atom("b")])).unwrap();
        let firsts: Vec<&str> = n
            .consuming_from(n.start)
            .iter()
            .map(|(p, _)| p.alias.as_str())
            .collect();
        assert!(firsts.contains(&"a") && firsts.contains(&"b"));
    }

    #[test]
    fn all_arity_capped() {
        let big: Vec<Pattern> = (0..5).map(|i| atom(&format!("x{i}"))).collect();
        assert!(Nfa::compile(&Pattern::all_of(big)).is_err());
    }

    #[test]
    fn repeat_bounded() {
        // a{2,3}
        let n = Nfa::compile(&Pattern::repeat(atom("a"), 2, Some(3))).unwrap();
        // After one 'a': not accepting.
        let s1 = n.consuming_from(n.start)[0].1;
        assert!(!n.is_accepting(s1));
        let s2 = n.consuming_from(s1)[0].1;
        assert!(n.is_accepting(s2), "two copies suffice");
        let s3 = n.consuming_from(s2)[0].1;
        assert!(n.is_accepting(s3), "three copies also accepted");
        assert!(n.consuming_from(s3).is_empty(), "no fourth copy");
    }

    #[test]
    fn repeat_unbounded_loops() {
        // a{1,}
        let n = Nfa::compile(&Pattern::repeat(atom("a"), 1, None)).unwrap();
        let mut s = n.start;
        for i in 0..5 {
            let cons = n.consuming_from(s);
            assert!(!cons.is_empty(), "iteration {i} must offer another a");
            s = cons[0].1;
            assert!(n.is_accepting(s));
        }
    }

    #[test]
    fn repeat_zero_min_accepts_immediately() {
        let n = Nfa::compile(&Pattern::repeat(atom("a"), 0, Some(2))).unwrap();
        assert!(n.is_accepting(n.start));
    }

    #[test]
    fn invalid_patterns_rejected() {
        assert!(Nfa::compile(&Pattern::Seq(vec![])).is_err());
        assert!(Nfa::compile(&Pattern::Any(vec![])).is_err());
        assert!(Nfa::compile(&Pattern::repeat(atom("a"), 3, Some(2))).is_err());
    }
}
