//! Pattern AST for complex event detection.

use fenestra_base::expr::Expr;
use fenestra_base::record::StreamId;
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Duration;

/// A single-event pattern: stream constraint, content predicate, and an
/// alias under which the matched event is bound.
///
/// Predicates may reference the candidate event's fields directly
/// (`amount > 100`), the special names `ts` / `stream`, and fields of
/// *previously bound* events with dotted names (`a.user`).
#[derive(Debug, Clone)]
pub struct EventPattern {
    /// Restrict to this stream (`None` = any stream).
    pub stream: Option<StreamId>,
    /// Content predicate (truthy = match). `Expr::lit(true)` matches
    /// everything.
    pub pred: Expr,
    /// Binding alias for the matched event.
    pub alias: Symbol,
}

impl EventPattern {
    /// Any event on `stream`, bound as `alias`.
    pub fn on(stream: impl Into<Symbol>, alias: impl Into<Symbol>) -> EventPattern {
        EventPattern {
            stream: Some(stream.into()),
            pred: Expr::lit(true),
            alias: alias.into(),
        }
    }

    /// Any event on any stream, bound as `alias`.
    pub fn any(alias: impl Into<Symbol>) -> EventPattern {
        EventPattern {
            stream: None,
            pred: Expr::lit(true),
            alias: alias.into(),
        }
    }

    /// Add a content predicate (chainable; conjoined with any existing
    /// predicate).
    pub fn filter(mut self, pred: Expr) -> EventPattern {
        self.pred = match self.pred {
            Expr::Lit(v) if v.is_truthy() => pred,
            p => p.and(pred),
        };
        self
    }
}

/// A composite temporal pattern.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// One event.
    Atom(EventPattern),
    /// Each sub-pattern in order, with strictly increasing time.
    Seq(Vec<Pattern>),
    /// Any one of the alternatives.
    Any(Vec<Pattern>),
    /// All sub-patterns, in any order. Expanded to the alternation of
    /// all orderings at compile time, so keep the arity small (≤ 4 is
    /// enforced by the compiler).
    All(Vec<Pattern>),
    /// `min..=max` repetitions of the sub-pattern (`max = None` =
    /// unbounded, Kleene).
    Repeat {
        /// Repeated sub-pattern.
        pat: Box<Pattern>,
        /// Minimum repetitions (may be 0).
        min: u32,
        /// Maximum repetitions (`None` = unbounded).
        max: Option<u32>,
    },
}

impl Pattern {
    /// Single-atom helper.
    pub fn atom(a: EventPattern) -> Pattern {
        Pattern::Atom(a)
    }

    /// Sequence helper.
    pub fn seq(pats: impl IntoIterator<Item = Pattern>) -> Pattern {
        Pattern::Seq(pats.into_iter().collect())
    }

    /// Alternation helper.
    pub fn any_of(pats: impl IntoIterator<Item = Pattern>) -> Pattern {
        Pattern::Any(pats.into_iter().collect())
    }

    /// Conjunction helper.
    pub fn all_of(pats: impl IntoIterator<Item = Pattern>) -> Pattern {
        Pattern::All(pats.into_iter().collect())
    }

    /// `pat{min,}` / `pat{min,max}` helper.
    pub fn repeat(pat: Pattern, min: u32, max: Option<u32>) -> Pattern {
        Pattern::Repeat {
            pat: Box::new(pat),
            min,
            max,
        }
    }

    /// The aliases bound anywhere in the pattern, in syntactic order
    /// (duplicates possible under `Repeat`).
    pub fn aliases(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_aliases(&mut out);
        out
    }

    fn collect_aliases(&self, out: &mut Vec<Symbol>) {
        match self {
            Pattern::Atom(a) => out.push(a.alias),
            Pattern::Seq(ps) | Pattern::Any(ps) | Pattern::All(ps) => {
                for p in ps {
                    p.collect_aliases(out);
                }
            }
            Pattern::Repeat { pat, .. } => pat.collect_aliases(out),
        }
    }
}

/// A complete pattern specification: the pattern, its time window, and
/// negated atoms that must *not* occur within a match's span.
#[derive(Debug, Clone)]
pub struct PatternSpec {
    /// The positive pattern.
    pub pattern: Pattern,
    /// Matches must complete within this span of the first element.
    pub within: Duration,
    /// Atoms whose occurrence anywhere between a partial match's first
    /// and last event kills the match (absence constraints).
    pub negated: Vec<EventPattern>,
}

impl PatternSpec {
    /// A spec with the given pattern and window, no negations.
    pub fn new(pattern: Pattern, within: Duration) -> PatternSpec {
        PatternSpec {
            pattern,
            within,
            negated: Vec::new(),
        }
    }

    /// Add an absence constraint (chainable).
    pub fn without(mut self, atom: EventPattern) -> PatternSpec {
        self.negated.push(atom);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_shapes() {
        let p = Pattern::seq([
            Pattern::atom(EventPattern::on("a-str", "a")),
            Pattern::any_of([
                Pattern::atom(EventPattern::on("b-str", "b")),
                Pattern::atom(EventPattern::on("c-str", "c")),
            ]),
        ]);
        let aliases: Vec<&str> = p.aliases().iter().map(|s| s.as_str()).collect();
        assert_eq!(aliases, vec!["a", "b", "c"]);
    }

    #[test]
    fn filter_conjoins() {
        let a = EventPattern::on("s", "x")
            .filter(Expr::name("v").gt(Expr::lit(1i64)))
            .filter(Expr::name("v").lt(Expr::lit(10i64)));
        // First filter replaces the default `true`, second conjoins.
        match a.pred {
            Expr::Binary(fenestra_base::expr::BinOp::And, _, _) => {}
            other => panic!("expected conjunction, got {other:?}"),
        }
    }

    #[test]
    fn spec_negations_accumulate() {
        let spec = PatternSpec::new(
            Pattern::atom(EventPattern::on("s", "a")),
            Duration::millis(100),
        )
        .without(EventPattern::on("s", "n1"))
        .without(EventPattern::on("s", "n2"));
        assert_eq!(spec.negated.len(), 2);
    }
}
