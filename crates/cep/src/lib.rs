#![warn(missing_docs)]
//! # fenestra-cep
//!
//! Complex event processing for Fenestra: temporal patterns over event
//! streams, with **interval time semantics** for detected situations
//! (after EP-SPARQL / ETALIS, which the paper cites as the CEP systems
//! whose "situations encode the current state of the application
//! environment").
//!
//! Patterns ([`pattern::Pattern`]) compose single-event atoms into
//! sequences, alternations, conjunctions, and bounded/unbounded
//! repetitions, constrained by a `within` window and optional negated
//! atoms ("no X between the first and last element"). The
//! [`matcher::Matcher`] compiles a pattern to a Thompson-style NFA
//! ([`nfa`]) and feeds events through it, producing
//! [`matcher::Match`]es that carry a validity interval `[first, last]`
//! and the bound events.
//!
//! In the Fenestra architecture, CEP patterns serve two roles:
//!
//! 1. standalone situation detection (classic CEP), and
//! 2. *multi-event triggers* for state-management rules — the paper's
//!    open research question 1 ("a state transition determined by
//!    multiple streaming elements") — see `fenestra-rules`.

pub mod interval;
pub mod matcher;
pub mod nfa;
pub mod pattern;

pub use matcher::{Match, Matcher, MatcherConfig};
pub use pattern::{EventPattern, Pattern, PatternSpec};
