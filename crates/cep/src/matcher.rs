//! The runtime matcher: feeds events through the compiled NFA.

use crate::nfa::Nfa;
use crate::pattern::{EventPattern, PatternSpec};
use fenestra_base::expr::Scope;
use fenestra_base::record::Event;
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Interval, Timestamp};
use fenestra_base::value::Value;
use std::collections::VecDeque;

/// A completed pattern match: the bound events and the interval they
/// span (interval time semantics — the detected situation is valid
/// over `[first, last]`, encoded half-open as `[first, last+1)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// `(alias, event)` in binding order; repeated aliases appear once
    /// per repetition.
    pub bindings: Vec<(Symbol, Event)>,
    /// Validity interval of the detected situation.
    pub interval: Interval,
}

impl Match {
    /// The first bound event with this alias.
    pub fn get(&self, alias: impl Into<Symbol>) -> Option<&Event> {
        let alias = alias.into();
        self.bindings
            .iter()
            .find(|(a, _)| *a == alias)
            .map(|(_, e)| e)
    }

    /// All bound events with this alias (repetitions).
    pub fn get_all(&self, alias: impl Into<Symbol>) -> Vec<&Event> {
        let alias = alias.into();
        self.bindings
            .iter()
            .filter(|(a, _)| *a == alias)
            .map(|(_, e)| e)
            .collect()
    }
}

/// Resource limits and selection behaviour.
#[derive(Debug, Clone, Copy)]
pub struct MatcherConfig {
    /// Maximum simultaneously tracked partial matches; the oldest are
    /// evicted beyond this (counted in [`Matcher::evicted`]).
    pub max_partials: usize,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            max_partials: 10_000,
        }
    }
}

#[derive(Debug, Clone)]
struct Partial {
    state: usize,
    bindings: Vec<(Symbol, Event)>,
    first_ts: Timestamp,
    last_ts: Timestamp,
}

/// Scope for atom predicates: the candidate event's own fields (plus
/// `ts`, `stream`) and dotted references to earlier bindings
/// (`alias.field`, `alias.ts`).
struct MatchScope<'a> {
    ev: &'a Event,
    bindings: &'a [(Symbol, Event)],
}

impl Scope for MatchScope<'_> {
    fn lookup(&self, name: Symbol) -> Option<Value> {
        let s = name.as_str();
        if let Some((alias, field)) = s.split_once('.') {
            let alias = Symbol::intern(alias);
            let bound = self
                .bindings
                .iter()
                .rev()
                .find(|(a, _)| *a == alias)
                .map(|(_, e)| e)?;
            return match field {
                "ts" => Some(Value::Time(bound.ts)),
                "stream" => Some(Value::Str(bound.stream)),
                _ => bound.record.get(Symbol::intern(field)).copied(),
            };
        }
        if let Some(v) = self.ev.record.get(name) {
            return Some(*v);
        }
        match s {
            "ts" => Some(Value::Time(self.ev.ts)),
            "stream" => Some(Value::Str(self.ev.stream)),
            _ => None,
        }
    }
}

fn atom_matches(atom: &EventPattern, ev: &Event, bindings: &[(Symbol, Event)]) -> bool {
    if let Some(s) = atom.stream {
        if ev.stream != s {
            return false;
        }
    }
    atom.pred
        .eval_bool(&MatchScope { ev, bindings })
        .unwrap_or(false)
}

/// Incremental pattern matcher with skip-till-any-match semantics:
/// every partial match survives non-matching events, and a matching
/// event both extends existing partials and starts new ones.
pub struct Matcher {
    spec: PatternSpec,
    nfa: Nfa,
    partials: VecDeque<Partial>,
    config: MatcherConfig,
    /// Partials dropped due to the `max_partials` cap.
    pub evicted: u64,
    /// Partials dropped because their window expired.
    pub timed_out: u64,
    /// Partials killed by a negated atom.
    pub negated_kills: u64,
}

impl Matcher {
    /// Compile `spec` into a matcher.
    pub fn new(spec: PatternSpec) -> fenestra_base::error::Result<Matcher> {
        let nfa = Nfa::compile(&spec.pattern)?;
        Ok(Matcher {
            spec,
            nfa,
            partials: VecDeque::new(),
            config: MatcherConfig::default(),
            evicted: 0,
            timed_out: 0,
            negated_kills: 0,
        })
    }

    /// Override resource limits (chainable).
    pub fn with_config(mut self, config: MatcherConfig) -> Matcher {
        self.config = config;
        self
    }

    /// Number of live partial matches.
    pub fn partial_count(&self) -> usize {
        self.partials.len()
    }

    /// Feed one event; returns the matches it completes.
    pub fn on_event(&mut self, ev: &Event) -> Vec<Match> {
        // Expire partials whose window has passed.
        let within = self.spec.within;
        let before = self.partials.len();
        self.partials
            .retain(|p| ev.ts.saturating_sub(within) <= p.first_ts);
        self.timed_out += (before - self.partials.len()) as u64;

        // Negated atoms kill any partial whose span the event falls into
        // (the event is after the partial's first element by arrival).
        if !self.spec.negated.is_empty() {
            let negated = std::mem::take(&mut self.spec.negated);
            let before = self.partials.len();
            self.partials
                .retain(|p| !negated.iter().any(|n| atom_matches(n, ev, &p.bindings)));
            self.negated_kills += (before - self.partials.len()) as u64;
            self.spec.negated = negated;
        }

        let mut completed = Vec::new();
        let mut spawned: Vec<Partial> = Vec::new();

        // Extend existing partials (skip-till-any-match: the original
        // partial also survives unchanged).
        for i in 0..self.partials.len() {
            let p = &self.partials[i];
            // Strictly increasing time within a match keeps sequence
            // semantics sane under simultaneous events.
            if ev.ts <= p.last_ts {
                continue;
            }
            let transitions: Vec<(usize, Symbol)> = self
                .nfa
                .consuming_from(p.state)
                .into_iter()
                .filter(|(atom, _)| atom_matches(atom, ev, &p.bindings))
                .map(|(atom, next)| (next, atom.alias))
                .collect();
            for (next, alias) in transitions {
                let p = &self.partials[i];
                let mut bindings = p.bindings.clone();
                bindings.push((alias, ev.clone()));
                let np = Partial {
                    state: next,
                    bindings,
                    first_ts: p.first_ts,
                    last_ts: ev.ts,
                };
                if self.nfa.is_accepting(np.state) {
                    completed.push(Match {
                        bindings: np.bindings.clone(),
                        interval: Interval::closed(np.first_ts, np.last_ts.next()),
                    });
                }
                // Keep the partial alive too: it may extend further
                // (e.g. unbounded repeats) unless it has no outgoing
                // consuming transitions.
                if !self.nfa.consuming_from(np.state).is_empty() {
                    spawned.push(np);
                }
            }
        }

        // Start new partials at this event.
        let initial: Vec<(usize, Symbol)> = self
            .nfa
            .consuming_from(self.nfa.start)
            .into_iter()
            .filter(|(atom, _)| atom_matches(atom, ev, &[]))
            .map(|(atom, next)| (next, atom.alias))
            .collect();
        for (next, alias) in initial {
            let np = Partial {
                state: next,
                bindings: vec![(alias, ev.clone())],
                first_ts: ev.ts,
                last_ts: ev.ts,
            };
            if self.nfa.is_accepting(np.state) {
                completed.push(Match {
                    bindings: np.bindings.clone(),
                    interval: Interval::closed(np.first_ts, np.last_ts.next()),
                });
            }
            if !self.nfa.consuming_from(np.state).is_empty() {
                spawned.push(np);
            }
        }

        self.partials.extend(spawned);
        while self.partials.len() > self.config.max_partials {
            self.partials.pop_front();
            self.evicted += 1;
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;
    use fenestra_base::expr::Expr;
    use fenestra_base::time::Duration;

    fn ev(stream: &str, ts: u64, pairs: Vec<(&str, Value)>) -> Event {
        Event::from_pairs(stream, ts, pairs)
    }

    fn seq_ab(within: u64) -> Matcher {
        let spec = PatternSpec::new(
            Pattern::seq([
                Pattern::atom(
                    EventPattern::on("s", "a").filter(Expr::name("k").eq(Expr::lit("a"))),
                ),
                Pattern::atom(
                    EventPattern::on("s", "b").filter(Expr::name("k").eq(Expr::lit("b"))),
                ),
            ]),
            Duration::millis(within),
        );
        Matcher::new(spec).unwrap()
    }

    #[test]
    fn sequence_matches_in_order() {
        let mut m = seq_ab(100);
        assert!(m
            .on_event(&ev("s", 1, vec![("k", Value::str("a"))]))
            .is_empty());
        let matches = m.on_event(&ev("s", 5, vec![("k", Value::str("b"))]));
        assert_eq!(matches.len(), 1);
        let mt = &matches[0];
        assert_eq!(mt.get("a").unwrap().ts, Timestamp::new(1));
        assert_eq!(mt.get("b").unwrap().ts, Timestamp::new(5));
        assert_eq!(
            mt.interval,
            Interval::closed(Timestamp::new(1), Timestamp::new(6))
        );
    }

    #[test]
    fn wrong_order_does_not_match() {
        let mut m = seq_ab(100);
        assert!(m
            .on_event(&ev("s", 1, vec![("k", Value::str("b"))]))
            .is_empty());
        assert!(m
            .on_event(&ev("s", 2, vec![("k", Value::str("a"))]))
            .is_empty());
    }

    #[test]
    fn window_expiry() {
        let mut m = seq_ab(10);
        m.on_event(&ev("s", 1, vec![("k", Value::str("a"))]));
        let matches = m.on_event(&ev("s", 50, vec![("k", Value::str("b"))]));
        assert!(matches.is_empty(), "a expired before b arrived");
        assert_eq!(m.timed_out, 1);
    }

    #[test]
    fn skip_till_any_match_finds_all_combinations() {
        let mut m = seq_ab(100);
        m.on_event(&ev("s", 1, vec![("k", Value::str("a"))]));
        m.on_event(&ev("s", 2, vec![("k", Value::str("a"))]));
        let matches = m.on_event(&ev("s", 3, vec![("k", Value::str("b"))]));
        assert_eq!(matches.len(), 2, "both a's pair with the b");
    }

    #[test]
    fn cross_binding_predicate() {
        // b must carry the same user as a.
        let spec = PatternSpec::new(
            Pattern::seq([
                Pattern::atom(
                    EventPattern::on("s", "a").filter(Expr::name("kind").eq(Expr::lit("login"))),
                ),
                Pattern::atom(
                    EventPattern::on("s", "b")
                        .filter(Expr::name("kind").eq(Expr::lit("purchase")))
                        .filter(Expr::name("user").eq(Expr::name("a.user"))),
                ),
            ]),
            Duration::millis(100),
        );
        let mut m = Matcher::new(spec).unwrap();
        m.on_event(&ev(
            "s",
            1,
            vec![("kind", Value::str("login")), ("user", Value::str("u1"))],
        ));
        let other = m.on_event(&ev(
            "s",
            2,
            vec![("kind", Value::str("purchase")), ("user", Value::str("u2"))],
        ));
        assert!(other.is_empty(), "different user must not match");
        let same = m.on_event(&ev(
            "s",
            3,
            vec![("kind", Value::str("purchase")), ("user", Value::str("u1"))],
        ));
        assert_eq!(same.len(), 1);
    }

    #[test]
    fn negation_kills_partials() {
        let spec = PatternSpec::new(
            Pattern::seq([
                Pattern::atom(
                    EventPattern::on("s", "a").filter(Expr::name("k").eq(Expr::lit("a"))),
                ),
                Pattern::atom(
                    EventPattern::on("s", "b").filter(Expr::name("k").eq(Expr::lit("b"))),
                ),
            ]),
            Duration::millis(100),
        )
        .without(EventPattern::on("s", "n").filter(Expr::name("k").eq(Expr::lit("cancel"))));
        let mut m = Matcher::new(spec).unwrap();
        m.on_event(&ev("s", 1, vec![("k", Value::str("a"))]));
        m.on_event(&ev("s", 2, vec![("k", Value::str("cancel"))]));
        let matches = m.on_event(&ev("s", 3, vec![("k", Value::str("b"))]));
        assert!(matches.is_empty(), "cancel between a and b kills the match");
        assert_eq!(m.negated_kills, 1);
    }

    #[test]
    fn unbounded_repeat_collects_all() {
        // a+ b : every prefix of a's produces a match when b arrives.
        let spec = PatternSpec::new(
            Pattern::seq([
                Pattern::repeat(
                    Pattern::atom(
                        EventPattern::on("s", "a").filter(Expr::name("k").eq(Expr::lit("a"))),
                    ),
                    1,
                    None,
                ),
                Pattern::atom(
                    EventPattern::on("s", "b").filter(Expr::name("k").eq(Expr::lit("b"))),
                ),
            ]),
            Duration::millis(100),
        );
        let mut m = Matcher::new(spec).unwrap();
        m.on_event(&ev("s", 1, vec![("k", Value::str("a"))]));
        m.on_event(&ev("s", 2, vec![("k", Value::str("a"))]));
        let matches = m.on_event(&ev("s", 3, vec![("k", Value::str("b"))]));
        // Runs: [a1 b], [a2 b], [a1 a2 b].
        assert_eq!(matches.len(), 3);
        let max_as = matches.iter().map(|m| m.get_all("a").len()).max().unwrap();
        assert_eq!(max_as, 2);
    }

    #[test]
    fn partial_cap_evicts_oldest() {
        let spec = PatternSpec::new(
            Pattern::seq([
                Pattern::atom(EventPattern::on("s", "a")),
                Pattern::atom(EventPattern::on("s", "b").filter(Expr::lit(false))),
            ]),
            Duration::millis(1_000_000),
        );
        let mut m = Matcher::new(spec)
            .unwrap()
            .with_config(MatcherConfig { max_partials: 5 });
        for t in 0..20u64 {
            m.on_event(&ev("s", t, vec![]));
        }
        assert_eq!(m.partial_count(), 5);
        assert_eq!(m.evicted, 15);
    }

    #[test]
    fn simultaneous_events_do_not_form_sequence() {
        let mut m = seq_ab(100);
        m.on_event(&ev("s", 5, vec![("k", Value::str("a"))]));
        let matches = m.on_event(&ev("s", 5, vec![("k", Value::str("b"))]));
        assert!(matches.is_empty(), "sequence requires strictly later time");
    }
}
