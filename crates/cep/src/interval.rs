//! Allen's interval algebra over validity intervals.
//!
//! Detected situations carry intervals (interval time semantics); these
//! relations let downstream logic compose situations temporally
//! ("alarm during maintenance", "login before purchase"). Open
//! intervals (`end = None`) are treated as extending to the end of
//! time.

use fenestra_base::time::{Interval, Timestamp};

fn end_of(i: &Interval) -> Timestamp {
    i.end.unwrap_or(Timestamp::MAX)
}

/// `a` ends strictly before `b` starts (with a gap).
pub fn before(a: &Interval, b: &Interval) -> bool {
    end_of(a) < b.start
}

/// `a` ends exactly where `b` starts.
pub fn meets(a: &Interval, b: &Interval) -> bool {
    end_of(a) == b.start
}

/// `a` starts first, they overlap, and `a` ends first.
pub fn overlaps(a: &Interval, b: &Interval) -> bool {
    a.start < b.start && end_of(a) > b.start && end_of(a) < end_of(b)
}

/// `a` lies strictly inside `b`.
pub fn during(a: &Interval, b: &Interval) -> bool {
    a.start > b.start && end_of(a) < end_of(b)
}

/// `a` and `b` start together, `a` ends first.
pub fn starts(a: &Interval, b: &Interval) -> bool {
    a.start == b.start && end_of(a) < end_of(b)
}

/// `a` and `b` end together, `a` starts later.
pub fn finishes(a: &Interval, b: &Interval) -> bool {
    a.start > b.start && end_of(a) == end_of(b)
}

/// Identical intervals.
pub fn equals(a: &Interval, b: &Interval) -> bool {
    a.start == b.start && end_of(a) == end_of(b)
}

/// The thirteen Allen relations, as a symmetric classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllenRelation {
    /// `a` before `b`.
    Before,
    /// `a` after `b`.
    After,
    /// `a` meets `b`.
    Meets,
    /// `a` met-by `b`.
    MetBy,
    /// `a` overlaps `b`.
    Overlaps,
    /// `a` overlapped-by `b`.
    OverlappedBy,
    /// `a` during `b`.
    During,
    /// `a` contains `b`.
    Contains,
    /// `a` starts `b`.
    Starts,
    /// `a` started-by `b`.
    StartedBy,
    /// `a` finishes `b`.
    Finishes,
    /// `a` finished-by `b`.
    FinishedBy,
    /// `a` equals `b`.
    Equals,
}

/// Classify the relation between `a` and `b`.
pub fn classify(a: &Interval, b: &Interval) -> AllenRelation {
    use AllenRelation::*;
    if equals(a, b) {
        Equals
    } else if before(a, b) {
        Before
    } else if before(b, a) {
        After
    } else if meets(a, b) {
        Meets
    } else if meets(b, a) {
        MetBy
    } else if overlaps(a, b) {
        Overlaps
    } else if overlaps(b, a) {
        OverlappedBy
    } else if during(a, b) {
        During
    } else if during(b, a) {
        Contains
    } else if starts(a, b) {
        Starts
    } else if starts(b, a) {
        StartedBy
    } else if finishes(a, b) {
        Finishes
    } else {
        debug_assert!(finishes(b, a));
        FinishedBy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> Interval {
        Interval::closed(Timestamp::new(s), Timestamp::new(e))
    }

    #[test]
    fn relations() {
        assert_eq!(classify(&iv(0, 5), &iv(10, 20)), AllenRelation::Before);
        assert_eq!(classify(&iv(10, 20), &iv(0, 5)), AllenRelation::After);
        assert_eq!(classify(&iv(0, 10), &iv(10, 20)), AllenRelation::Meets);
        assert_eq!(classify(&iv(10, 20), &iv(0, 10)), AllenRelation::MetBy);
        assert_eq!(classify(&iv(0, 15), &iv(10, 20)), AllenRelation::Overlaps);
        assert_eq!(
            classify(&iv(10, 20), &iv(0, 15)),
            AllenRelation::OverlappedBy
        );
        assert_eq!(classify(&iv(12, 15), &iv(10, 20)), AllenRelation::During);
        assert_eq!(classify(&iv(10, 20), &iv(12, 15)), AllenRelation::Contains);
        assert_eq!(classify(&iv(10, 15), &iv(10, 20)), AllenRelation::Starts);
        assert_eq!(classify(&iv(10, 20), &iv(10, 15)), AllenRelation::StartedBy);
        assert_eq!(classify(&iv(15, 20), &iv(10, 20)), AllenRelation::Finishes);
        assert_eq!(
            classify(&iv(10, 20), &iv(15, 20)),
            AllenRelation::FinishedBy
        );
        assert_eq!(classify(&iv(10, 20), &iv(10, 20)), AllenRelation::Equals);
    }

    #[test]
    fn exhaustive_classification_over_small_grid() {
        // Every pair of non-empty intervals over a small grid must fall
        // into exactly one relation (classify must never panic, and the
        // inverse pair must classify to the mirrored relation).
        let mirror = |r: AllenRelation| -> AllenRelation {
            use AllenRelation::*;
            match r {
                Before => After,
                After => Before,
                Meets => MetBy,
                MetBy => Meets,
                Overlaps => OverlappedBy,
                OverlappedBy => Overlaps,
                During => Contains,
                Contains => During,
                Starts => StartedBy,
                StartedBy => Starts,
                Finishes => FinishedBy,
                FinishedBy => Finishes,
                Equals => Equals,
            }
        };
        for a1 in 0..5u64 {
            for a2 in a1 + 1..6 {
                for b1 in 0..5u64 {
                    for b2 in b1 + 1..6 {
                        let (a, b) = (iv(a1, a2), iv(b1, b2));
                        let r = classify(&a, &b);
                        assert_eq!(classify(&b, &a), mirror(r), "{a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn open_intervals_extend_to_end_of_time() {
        let open = Interval::open(Timestamp::new(10));
        assert_eq!(classify(&iv(0, 5), &open), AllenRelation::Before);
        assert_eq!(classify(&iv(12, 20), &open), AllenRelation::During);
        let open2 = Interval::open(Timestamp::new(0));
        assert_eq!(classify(&open, &open2), AllenRelation::Finishes);
    }
}
