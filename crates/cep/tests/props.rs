//! Property tests for the CEP matcher: sequence matching is checked
//! against a brute-force enumeration of all subsequences.

use fenestra_base::expr::Expr;
use fenestra_base::record::Event;
use fenestra_base::time::Duration;
use fenestra_base::value::Value;
use fenestra_cep::{EventPattern, Matcher, MatcherConfig, Pattern, PatternSpec};
use proptest::prelude::*;

/// Random stream of events with kinds a/b/c and strictly increasing
/// timestamps.
fn events_strategy() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((1u64..10, 0u8..3), 1..40).prop_map(|spec| {
        let mut t = 0u64;
        spec.into_iter()
            .map(|(gap, k)| {
                t += gap;
                let kind = ["a", "b", "c"][k as usize];
                Event::from_pairs("s", t, [("kind", kind)])
            })
            .collect()
    })
}

fn kind_of(e: &Event) -> &'static str {
    e.get("kind").unwrap().as_str().unwrap()
}

/// Brute force: count strictly-increasing index tuples whose kinds
/// spell `kinds` and whose span fits in `within` (start-to-completion,
/// inclusive of the expiry rule used by the matcher: a partial whose
/// window has passed at the completing event's time is dead —
/// completion must satisfy `last.ts - first.ts <= within` *and* the
/// partial must not have been expired before the completing event;
/// since expiry uses the same bound, the two formulations agree).
fn brute_force_seq(events: &[Event], kinds: &[&str], within: u64) -> usize {
    fn rec(
        events: &[Event],
        kinds: &[&str],
        from_idx: usize,
        first_ts: Option<u64>,
        prev_ts: Option<u64>,
        within: u64,
    ) -> usize {
        if kinds.is_empty() {
            return 1;
        }
        let mut total = 0;
        for i in from_idx..events.len() {
            let e = &events[i];
            let t = e.ts.millis();
            if kind_of(e) != kinds[0] {
                continue;
            }
            // Strictly increasing time within a match.
            if let Some(p) = prev_ts {
                if t <= p {
                    continue;
                }
            }
            if let Some(f) = first_ts {
                if t - f > within {
                    continue;
                }
            }
            total += rec(
                events,
                &kinds[1..],
                i + 1,
                Some(first_ts.unwrap_or(t)),
                Some(t),
                within,
            );
        }
        total
    }
    rec(events, kinds, 0, None, None, within)
}

fn seq_spec(kinds: &[&str], within: u64) -> PatternSpec {
    PatternSpec::new(
        Pattern::seq(kinds.iter().enumerate().map(|(i, k)| {
            Pattern::atom(
                EventPattern::on("s", format!("x{i}").as_str())
                    .filter(Expr::name("kind").eq(Expr::lit(*k))),
            )
        })),
        Duration::millis(within),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The NFA matcher finds exactly the brute-force subsequence count
    /// for 2-step sequences.
    #[test]
    fn seq2_matches_brute_force(events in events_strategy(), within in 5u64..60) {
        let mut m = Matcher::new(seq_spec(&["a", "b"], within)).unwrap()
            .with_config(MatcherConfig { max_partials: 1_000_000 });
        let mut got = 0usize;
        for e in &events {
            got += m.on_event(e).len();
        }
        let want = brute_force_seq(&events, &["a", "b"], within);
        prop_assert_eq!(got, want);
    }

    /// Same for 3-step sequences.
    #[test]
    fn seq3_matches_brute_force(events in events_strategy(), within in 5u64..60) {
        let mut m = Matcher::new(seq_spec(&["a", "b", "c"], within)).unwrap()
            .with_config(MatcherConfig { max_partials: 1_000_000 });
        let mut got = 0usize;
        for e in &events {
            got += m.on_event(e).len();
        }
        let want = brute_force_seq(&events, &["a", "b", "c"], within);
        prop_assert_eq!(got, want);
    }

    /// Matches carry well-formed intervals: first bound ≤ last bound,
    /// interval spans exactly first..=last.
    #[test]
    fn match_intervals_are_well_formed(events in events_strategy()) {
        let mut m = Matcher::new(seq_spec(&["a", "b"], 100)).unwrap();
        for e in &events {
            for mt in m.on_event(e) {
                let first = mt.bindings.first().unwrap().1.ts;
                let last = mt.bindings.last().unwrap().1.ts;
                prop_assert!(first < last, "strictly increasing sequence time");
                prop_assert_eq!(mt.interval.start, first);
                prop_assert_eq!(mt.interval.end, Some(last.next()));
            }
        }
    }

    /// A negated atom that matches everything kills every partial:
    /// only adjacent-pair completions (nothing strictly between) can
    /// survive... in fact with `without(any)` arriving events
    /// themselves kill all open partials before extension, so no
    /// 2-step match survives unless the events are consecutive with no
    /// intervening event — but the *completing* event also matches the
    /// negation and kills the partial first. Hence: zero matches.
    #[test]
    fn universal_negation_kills_everything(events in events_strategy()) {
        let spec = seq_spec(&["a", "b"], 1000)
            .without(EventPattern::on("s", "n").filter(Expr::lit(true)));
        let mut m = Matcher::new(spec).unwrap();
        let mut got = 0usize;
        for e in &events {
            got += m.on_event(e).len();
        }
        prop_assert_eq!(got, 0);
    }

    /// The partial cap keeps memory bounded no matter the input.
    #[test]
    fn partial_cap_is_respected(events in events_strategy()) {
        let mut m = Matcher::new(seq_spec(&["a", "b"], u64::MAX / 2)).unwrap()
            .with_config(MatcherConfig { max_partials: 7 });
        for e in &events {
            m.on_event(e);
            prop_assert!(m.partial_count() <= 7);
        }
    }
}

#[test]
fn brute_force_self_check() {
    // aab -> ab matches: (a1,b), (a2,b) = 2.
    let evs: Vec<Event> = [("a", 1u64), ("a", 2), ("b", 3)]
        .iter()
        .map(|(k, t)| Event::from_pairs("s", *t, [("kind", Value::str(k))]))
        .collect();
    assert_eq!(brute_force_seq(&evs, &["a", "b"], 100), 2);
    assert_eq!(
        brute_force_seq(&evs, &["a", "b"], 1),
        1,
        "window excludes a1"
    );
}
