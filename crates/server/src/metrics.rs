//! Server-side observability counters.
//!
//! Engine counters live in [`fenestra_core::EngineMetrics`]; these
//! cover the network layer. All fields are atomics so connection
//! threads update them without locks; the `stats` command reads a
//! consistent-enough snapshot.

use serde_json::{Map, Value as Json};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for the server's network layer.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections currently open, either plane (gauge).
    pub conns_open: AtomicU64,
    /// Open connections that negotiated the binary plane via the
    /// `FNB1` magic (gauge; subset of `conns_open`).
    pub conns_binary: AtomicU64,
    /// Bytes read off sockets (including line terminators).
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets (including line terminators).
    pub bytes_out: AtomicU64,
    /// High-water mark of the ingest queue depth.
    pub queue_hwm: AtomicU64,
    /// Queries served (`query` commands, successful or not).
    pub queries: AtomicU64,
    /// Events dropped by the [`crate::Backpressure::Shed`] policy.
    pub shed: AtomicU64,
    /// Events accepted into the ingest queue.
    pub events: AtomicU64,
    /// Watches registered.
    pub watches: AtomicU64,
    /// Events acked into the queue but dropped by the engine as beyond
    /// the lateness bound. An ack means *admitted*, not *applied*; this
    /// counter is how admitted-but-discarded events become visible.
    pub late_dropped: AtomicU64,
    /// Ingest batches applied by the engine thread (each = one apply
    /// pass + one WAL frame + one fsync under `always` + one watch
    /// poll, however many events it covered).
    pub ingest_batches: AtomicU64,
    /// Events covered by those batches (mean batch size =
    /// `ingest_batched_events / ingest_batches`).
    pub ingest_batched_events: AtomicU64,
    /// Largest single ingest batch applied.
    pub ingest_batch_max: AtomicU64,
    /// WAL commits that covered more than one event — true group
    /// commits, where the fsync was amortized.
    pub group_commits: AtomicU64,
    /// Ingest frames admitted with their ack held back until durable
    /// (`--fsync always`): released, in per-connection FIFO order,
    /// once a WAL fsync covers every event of the frame — with a
    /// lateness bound, only after the watermark passes it. Shed frames
    /// are not counted; their ack was never deferred.
    pub acks_deferred: AtomicU64,
    /// Deferred acks resolved: the held line (ack or, on WAL failure,
    /// an error) was handed to its connection's writer. Steady-state,
    /// `acks_deferred - acks_released` is the number of in-flight
    /// held acks across all connections.
    pub acks_released: AtomicU64,
    /// Durable WAL: op batches appended.
    pub wal_appends: AtomicU64,
    /// Durable WAL: payload bytes appended (frame headers included).
    pub wal_bytes: AtomicU64,
    /// Durable WAL: fsync calls issued.
    pub fsyncs: AtomicU64,
    /// Ops replayed from snapshot + WAL tail during boot recovery.
    pub recovered_ops: AtomicU64,
    /// Wall-clock milliseconds spent in boot recovery.
    pub recovery_ms: AtomicU64,
    /// Bytes of torn/corrupt WAL tail discarded during recovery.
    pub wal_discarded_bytes: AtomicU64,
    /// Ops discarded during recovery (decoded but unreplayable).
    pub wal_discarded_ops: AtomicU64,
    /// Closed facts reclaimed by horizon GC (`--gc-horizon-ms`),
    /// summed across shards.
    pub gc_removed: AtomicU64,
}

impl ServerMetrics {
    /// Record an observed ingest queue depth, keeping the maximum.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Record one applied ingest batch of `events` events.
    pub fn observe_ingest_batch(&self, events: u64) {
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.ingest_batched_events
            .fetch_add(events, Ordering::Relaxed);
        self.ingest_batch_max.fetch_max(events, Ordering::Relaxed);
    }

    /// Counter snapshot as a JSON object (embedded in `stats` replies).
    pub fn json_value(&self) -> Json {
        let mut obj = Map::new();
        let get = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        obj.insert("connections".into(), get(&self.connections));
        obj.insert("conns_open".into(), get(&self.conns_open));
        obj.insert("conns_binary".into(), get(&self.conns_binary));
        obj.insert("bytes_in".into(), get(&self.bytes_in));
        obj.insert("bytes_out".into(), get(&self.bytes_out));
        obj.insert("queue_hwm".into(), get(&self.queue_hwm));
        obj.insert("queries".into(), get(&self.queries));
        obj.insert("shed".into(), get(&self.shed));
        obj.insert("events".into(), get(&self.events));
        obj.insert("watches".into(), get(&self.watches));
        obj.insert("late_dropped".into(), get(&self.late_dropped));
        obj.insert("ingest_batches".into(), get(&self.ingest_batches));
        obj.insert(
            "ingest_batched_events".into(),
            get(&self.ingest_batched_events),
        );
        obj.insert("ingest_batch_max".into(), get(&self.ingest_batch_max));
        let batches = self.ingest_batches.load(Ordering::Relaxed);
        let batch_mean = if batches > 0 {
            self.ingest_batched_events.load(Ordering::Relaxed) as f64 / batches as f64
        } else {
            0.0
        };
        obj.insert(
            "ingest_batch_mean".into(),
            serde_json::Number::from_f64((batch_mean * 100.0).round() / 100.0)
                .map(Json::Number)
                .unwrap_or(Json::Null),
        );
        obj.insert("group_commits".into(), get(&self.group_commits));
        obj.insert("acks_deferred".into(), get(&self.acks_deferred));
        obj.insert("acks_released".into(), get(&self.acks_released));
        obj.insert("wal_appends".into(), get(&self.wal_appends));
        obj.insert("wal_bytes".into(), get(&self.wal_bytes));
        obj.insert("fsyncs".into(), get(&self.fsyncs));
        obj.insert("recovered_ops".into(), get(&self.recovered_ops));
        obj.insert("recovery_ms".into(), get(&self.recovery_ms));
        obj.insert("wal_discarded_bytes".into(), get(&self.wal_discarded_bytes));
        obj.insert("wal_discarded_ops".into(), get(&self.wal_discarded_ops));
        obj.insert("gc_removed".into(), get(&self.gc_removed));
        Json::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_hwm_keeps_max() {
        let m = ServerMetrics::default();
        m.observe_queue_depth(3);
        m.observe_queue_depth(9);
        m.observe_queue_depth(5);
        assert_eq!(m.queue_hwm.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn ingest_batch_stats_track_count_sum_max_mean() {
        let m = ServerMetrics::default();
        m.observe_ingest_batch(1);
        m.observe_ingest_batch(7);
        m.observe_ingest_batch(4);
        assert_eq!(m.ingest_batches.load(Ordering::Relaxed), 3);
        assert_eq!(m.ingest_batched_events.load(Ordering::Relaxed), 12);
        assert_eq!(m.ingest_batch_max.load(Ordering::Relaxed), 7);
        let v = m.json_value();
        assert_eq!(
            v.get("ingest_batch_mean").and_then(|x| x.as_f64()),
            Some(4.0)
        );
    }

    #[test]
    fn json_has_all_counters() {
        let m = ServerMetrics::default();
        m.connections.fetch_add(2, Ordering::Relaxed);
        let v = m.json_value();
        for key in [
            "connections",
            "conns_open",
            "conns_binary",
            "bytes_in",
            "bytes_out",
            "queue_hwm",
            "queries",
            "shed",
            "events",
            "watches",
            "late_dropped",
            "ingest_batches",
            "ingest_batched_events",
            "ingest_batch_max",
            "ingest_batch_mean",
            "group_commits",
            "acks_deferred",
            "acks_released",
            "wal_appends",
            "wal_bytes",
            "fsyncs",
            "recovered_ops",
            "recovery_ms",
            "wal_discarded_bytes",
            "wal_discarded_ops",
            "gc_removed",
        ] {
            assert!(v.get(key).is_some(), "{key}");
        }
        assert_eq!(v.get("connections").and_then(|x| x.as_u64()), Some(2));
    }
}
