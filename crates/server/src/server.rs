//! The threaded TCP server.
//!
//! Threading model: one **engine thread** owns the [`Engine`] and
//! consumes a bounded command queue (FIFO, so a `shutdown` command
//! naturally drains every ingest admitted before it). Each accepted
//! connection gets a **reader thread** (socket lines → commands) and a
//! **writer thread** (outbound channel → socket), so slow clients
//! never stall the engine — except deliberately, under the
//! [`Backpressure::Block`] policy, where a full ingest queue blocks
//! the *sending* connection only.

use crate::config::{Backpressure, ServerConfig};
use crate::metrics::ServerMetrics;
use crate::proto::{self, Request};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use fenestra_base::error::{Error, Result};
use fenestra_base::record::Event;
use fenestra_base::time::Timestamp;
use fenestra_core::{Engine, Watch};
use fenestra_temporal::wal_file::{recover, segment_path};
use fenestra_temporal::{FsyncPolicy, WalWriter, WalWriterStats};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// An ingest acknowledgement the engine thread releases only after the
/// events' group commit reached stable storage (`--fsync always`).
/// Without deferral the connection thread acks at admit time instead.
struct Ack {
    /// Which connection the ack belongs to: release keeps acks in
    /// request order *per connection* without letting one connection's
    /// uncovered frame starve the others.
    conn: u64,
    sink: Sender<String>,
    line: String,
}

/// A deferred ack the engine thread is holding until it is actually
/// durable. With `--max-lateness-ms > 0` an admitted event can sit in
/// the engine's reorder buffer — producing **no** journal ops, hence
/// covered by no WAL frame — until the watermark passes it. The ack is
/// therefore releasable only once every event of its frame has left
/// the buffer *and* a subsequent WAL append+fsync succeeded. Held acks
/// release in FIFO order per connection, keeping each connection's ack
/// stream monotone.
struct PendingAck {
    ack: Ack,
    /// Highest event timestamp the frame carried (`None` for an empty
    /// batch frame, which is trivially durable). The frame is covered
    /// once the reorder buffer holds nothing at or below this.
    max_ts: Option<Timestamp>,
}

/// Commands consumed by the engine thread.
enum EngineCmd {
    /// One event (plain event frame). The engine thread greedily
    /// coalesces consecutive ingests into one group commit.
    Ingest(Event, Option<Ack>),
    /// A client-batched frame (`{"op":"ingest","events":[…]}`),
    /// admitted atomically and acked once.
    IngestBatch(Vec<Event>, Option<Ack>),
    Query {
        text: String,
        reply: Sender<String>,
    },
    Watch {
        name: String,
        text: String,
        /// Ack/error and every subsequent delta go to the sink, so the
        /// ack is ordered before the initial rows.
        sink: Sender<String>,
    },
    Stats {
        reply: Sender<String>,
    },
    Snapshot,
    Shutdown {
        reply: Option<Sender<String>>,
    },
}

/// Shared context for connection threads.
struct ConnCtx {
    cmd_tx: Sender<EngineCmd>,
    backpressure: Backpressure,
    /// `--fsync always` with a WAL: acks ride the command into the
    /// engine thread and are released once a WAL fsync covers their
    /// events — with a lateness bound, only after the watermark passes
    /// the frame — upgrading the ack from "admitted" to "durable".
    durable_acks: bool,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
}

/// The server entry point; see [`Server::start`].
pub struct Server;

/// A running server: bound address, shutdown trigger, join.
pub struct ServerHandle {
    addr: SocketAddr,
    cmd_tx: Sender<EngineCmd>,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    engine_thread: Option<JoinHandle<()>>,
    listener_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind the listener, start the engine/listener/snapshot threads,
    /// and return a handle. Events, queries, watches, stats, and
    /// shutdown all arrive over the one listener (see [`crate::proto`]).
    pub fn start(config: ServerConfig) -> Result<ServerHandle> {
        let ServerConfig {
            addr,
            queue_capacity,
            backpressure,
            batch_max,
            snapshot_path,
            snapshot_every,
            engine: engine_cfg,
            setup,
            wal_path,
            fsync,
        } = config;
        let durable_acks = wal_path.is_some() && fsync == FsyncPolicy::Always;
        let listener = TcpListener::bind(&addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::default());

        let mut engine = Engine::new(engine_cfg);
        // With a durable WAL configured, boot is a recovery: latest
        // snapshot plus the WAL tail, installed *before* `setup` so the
        // hook's declarations land on top of the recovered state.
        let durability = match &wal_path {
            Some(base) => {
                let t0 = std::time::Instant::now();
                let rec = recover(snapshot_path.as_deref(), Some(base))?;
                metrics
                    .recovered_ops
                    .store(rec.snapshot_ops + rec.wal_ops, Ordering::Relaxed);
                metrics
                    .wal_discarded_bytes
                    .store(rec.discarded_bytes, Ordering::Relaxed);
                metrics
                    .wal_discarded_ops
                    .store(rec.discarded_ops, Ordering::Relaxed);
                let resumed = rec.resumed();
                engine.restore_state(rec.store)?;
                // `open` re-truncates the same torn bytes `recover`
                // already counted, so its torn count is not added.
                let (writer, _torn) = WalWriter::open(&segment_path(base, rec.wal_gen), fsync)?;
                metrics
                    .recovery_ms
                    .store(t0.elapsed().as_millis() as u64, Ordering::Relaxed);
                Some(Durability {
                    writer,
                    base: base.clone(),
                    gen: rec.wal_gen,
                    snapshot_path: snapshot_path.clone(),
                    metrics: metrics.clone(),
                    rotated_stats: WalWriterStats::default(),
                    boot_resumed: resumed,
                })
            }
            None => None,
        };
        if let Some(setup) = setup {
            setup(&mut engine);
        }

        let (cmd_tx, cmd_rx) = channel::bounded(queue_capacity);
        let shutdown = Arc::new(AtomicBool::new(false));

        let engine_thread = {
            let metrics = metrics.clone();
            let shutdown = shutdown.clone();
            thread::Builder::new()
                .name("fenestra-engine".into())
                .spawn(move || {
                    engine_loop(
                        engine,
                        cmd_rx,
                        snapshot_path,
                        durability,
                        batch_max,
                        metrics,
                        shutdown,
                        addr,
                    )
                })?
        };

        let listener_thread = {
            let ctx = Arc::new(ConnCtx {
                cmd_tx: cmd_tx.clone(),
                backpressure,
                durable_acks,
                metrics: metrics.clone(),
                shutdown: shutdown.clone(),
            });
            thread::Builder::new()
                .name("fenestra-accept".into())
                .spawn(move || accept_loop(listener, ctx))?
        };

        if let Some(every) = snapshot_every {
            let tx = cmd_tx.clone();
            let stop = shutdown.clone();
            thread::Builder::new()
                .name("fenestra-snapshot".into())
                .spawn(move || loop {
                    thread::sleep(std::time::Duration::from_millis(every.as_millis().max(1)));
                    if stop.load(Ordering::SeqCst) || tx.send(EngineCmd::Snapshot).is_err() {
                        break;
                    }
                })?;
        }

        Ok(ServerHandle {
            addr,
            cmd_tx,
            metrics,
            shutdown,
            engine_thread: Some(engine_thread),
            listener_thread: Some(listener_thread),
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolves port `0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// True once the engine thread has exited (e.g. a client issued
    /// the wire-level `shutdown` command).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: drain the ingest queue, flush the engine,
    /// write the snapshot (if configured), stop the threads. Same
    /// path as the wire-level `shutdown` command. Idempotent.
    pub fn shutdown(&mut self) {
        let _ = self.cmd_tx.send(EngineCmd::Shutdown { reply: None });
        self.join();
    }

    /// Wait for the engine and listener threads to exit (e.g. after a
    /// client issued the `shutdown` command).
    pub fn join(&mut self) {
        if let Some(t) = self.engine_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
    }
}

// ----- engine thread --------------------------------------------------------

/// The engine thread's durable-log state: the open segment writer plus
/// everything the snapshot-coordinated rotation needs.
struct Durability {
    writer: WalWriter,
    /// Segment base path; the open segment is `segment_path(base, gen)`.
    base: PathBuf,
    gen: u64,
    snapshot_path: Option<PathBuf>,
    metrics: Arc<ServerMetrics>,
    /// Counters accumulated by writers of already-rotated segments
    /// (each `WalWriter` counts from zero).
    rotated_stats: WalWriterStats,
    /// Whether boot recovery replayed anything — if so, the loop
    /// checkpoints immediately so the next boot starts from a snapshot
    /// instead of re-replaying the same tail.
    boot_resumed: bool,
}

impl Durability {
    /// Mirror writer counters into the server metrics.
    fn publish_stats(&self) {
        let s = self.writer.stats();
        let m = &self.metrics;
        m.wal_appends
            .store(self.rotated_stats.appends + s.appends, Ordering::Relaxed);
        m.wal_bytes
            .store(self.rotated_stats.bytes + s.bytes, Ordering::Relaxed);
        m.fsyncs
            .store(self.rotated_stats.fsyncs + s.fsyncs, Ordering::Relaxed);
    }

    /// Append the ops the engine applied since the last drain — the
    /// **group commit**: one frame (and, under `always`, one fsync) for
    /// however many events the batch covered. This runs once per ingest
    /// batch, which is also what keeps the engine's in-memory journal
    /// bounded. Returns `Some(ops appended)` on success (0 when the
    /// journal was empty), `None` if the append failed — callers
    /// holding deferred acks must then report the failure, not ack.
    fn drain(&mut self, engine: &mut Engine) -> Option<usize> {
        let ops = engine.take_journal();
        let mut appended = Some(ops.len());
        if !ops.is_empty() {
            if let Err(e) = self.writer.append(&ops) {
                eprintln!(
                    "fenestrad: WAL append to {} failed: {e}",
                    self.writer.path().display()
                );
                appended = None;
            }
        }
        self.publish_stats();
        appended
    }

    /// Drain, make the open segment durable, and — when a snapshot path
    /// is configured — rotate: start segment `gen+1` empty, write a
    /// compact snapshot stamped `wal_gen = gen+1`, then delete segment
    /// `gen`. Every crash window recovers: before the snapshot rename
    /// lands, recovery uses the old snapshot + full old segment; after,
    /// the new snapshot + (empty or missing) new segment. Returns
    /// whether the drain and sync both succeeded (the durability
    /// outcome deferred acks depend on; rotation failures only delay
    /// compaction, never durability).
    fn checkpoint(&mut self, engine: &mut Engine) -> bool {
        let committed = self.drain(engine).is_some();
        if let Err(e) = self.writer.sync() {
            eprintln!(
                "fenestrad: WAL sync of {} failed: {e}",
                self.writer.path().display()
            );
            self.publish_stats();
            return false;
        }
        self.publish_stats();
        let Some(snap) = self.snapshot_path.clone() else {
            return committed; // Nothing to rotate against; the segment just grows.
        };
        let next_gen = self.gen + 1;
        let next_path = segment_path(&self.base, next_gen);
        let next_writer = match WalWriter::create(&next_path, self.writer.policy()) {
            Ok(w) => w,
            Err(e) => {
                eprintln!(
                    "fenestrad: starting WAL segment {} failed: {e}",
                    next_path.display()
                );
                return committed;
            }
        };
        if let Err(e) = engine.save_state_compact(&snap, next_gen) {
            // The snapshot still names the old generation; keep
            // appending to the old segment and retry next checkpoint.
            eprintln!("fenestrad: snapshot to {} failed: {e}", snap.display());
            return committed;
        }
        let old_path = segment_path(&self.base, self.gen);
        self.rotated_stats.appends += self.writer.stats().appends;
        self.rotated_stats.bytes += self.writer.stats().bytes;
        self.rotated_stats.fsyncs += self.writer.stats().fsyncs;
        self.writer = next_writer;
        self.gen = next_gen;
        if let Err(e) = std::fs::remove_file(&old_path) {
            eprintln!(
                "fenestrad: removing rotated WAL segment {} failed: {e}",
                old_path.display()
            );
        }
        committed
    }
}

#[allow(clippy::too_many_arguments)]
fn engine_loop(
    mut engine: Engine,
    rx: Receiver<EngineCmd>,
    snapshot_path: Option<PathBuf>,
    mut durability: Option<Durability>,
    batch_max: usize,
    metrics: Arc<ServerMetrics>,
    shutdown: Arc<AtomicBool>,
    addr: SocketAddr,
) {
    if let Some(d) = durability.as_mut() {
        if d.boot_resumed {
            // Fold the replayed tail into a fresh snapshot so the next
            // boot recovers from there, not from the same tail again.
            let _ = d.checkpoint(&mut engine);
        } else {
            // First boot: persist whatever `setup` journaled (schema,
            // rule side effects) before the first event.
            let _ = d.drain(&mut engine);
        }
    }
    let mut watches: Vec<(Watch, Sender<String>)> = Vec::new();
    // Durable-mode acks held until their events are actually covered
    // by a fsynced WAL frame (see [`PendingAck`]), in admission order.
    // Release is FIFO per connection — a connection never sees a later
    // ack overtake an earlier one — but one connection's uncovered
    // frame does not hold up covered frames from other connections.
    let mut pending_acks: VecDeque<PendingAck> = VecDeque::new();
    // A non-ingest command pulled off the queue while coalescing an
    // ingest batch; handled on the next iteration (FIFO preserved).
    let mut deferred_cmd: Option<EngineCmd> = None;
    loop {
        let cmd = match deferred_cmd.take() {
            Some(cmd) => cmd,
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
        };
        let mut quit = false;
        // Whether this command may have changed queryable state. Pure
        // reads (`Query`, `Stats`) and checkpoints leave it false, so
        // standing watches are not re-polled (no store read lock, no
        // re-evaluation) on their account.
        let mut poll = false;
        match cmd {
            cmd @ (EngineCmd::Ingest(..) | EngineCmd::IngestBatch(..)) => {
                // Group commit: greedily drain the queue into one event
                // batch (up to `batch_max` events), apply it in one
                // engine pass, append ONE WAL frame, fsync once, and
                // poll watches once — instead of once per event.
                let (mut batch, mut acks) = into_batch(cmd);
                while batch.len() < batch_max {
                    match rx.try_recv() {
                        Ok(cmd @ (EngineCmd::Ingest(..) | EngineCmd::IngestBatch(..))) => {
                            let (evs, more) = into_batch(cmd);
                            batch.extend(evs);
                            acks.extend(more);
                        }
                        Ok(other) => {
                            deferred_cmd = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                let n = batch.len() as u64;
                let late = engine.push_batch(batch);
                if late > 0 {
                    // Deferred or not, the ack means "accepted", not
                    // "applied": events beyond the lateness bound are
                    // discarded and become visible here.
                    metrics.late_dropped.fetch_add(late, Ordering::Relaxed);
                }
                if n > 0 {
                    metrics.observe_ingest_batch(n);
                }
                let committed = match durability.as_mut() {
                    Some(d) => match d.drain(&mut engine) {
                        Some(ops) => {
                            if ops > 0 && n > 1 {
                                metrics.group_commits.fetch_add(1, Ordering::Relaxed);
                            }
                            true
                        }
                        None => false,
                    },
                    None => true,
                };
                // Durable-ack mode: the group fsync (inside the append,
                // policy `always`) covers exactly the events that have
                // drained out of the reorder buffer — release, in FIFO
                // order, every held ack whose events all have. Frames
                // still (partly) in the buffer stay held until a later
                // batch advances the watermark past them. On append
                // failure, report instead of lying about durability.
                if committed {
                    pending_acks.extend(acks);
                    release_covered(&mut pending_acks, &engine);
                } else {
                    fail_acks(pending_acks.drain(..).chain(acks));
                }
                poll = n > late;
            }
            EngineCmd::Query { text, reply } => {
                metrics.queries.fetch_add(1, Ordering::Relaxed);
                let line = match engine.query(&text) {
                    Ok(res) => proto::query_reply(&res, Some(&engine.store())),
                    Err(e) => proto::error(&e.to_string()),
                };
                let _ = reply.send(line);
            }
            EngineCmd::Watch { name, text, sink } => match parse_select(&text) {
                Ok(q) => {
                    metrics.watches.fetch_add(1, Ordering::Relaxed);
                    let _ = sink.send(proto::watch_ack(&name));
                    watches.push((Watch::new(name.as_str(), q), sink));
                    // Poll so the new watch delivers its initial rows.
                    poll = true;
                }
                Err(e) => {
                    let _ = sink.send(proto::error(&e.to_string()));
                }
            },
            EngineCmd::Stats { reply } => {
                let line = proto::stats_reply(
                    fenestra_wire::metrics::metrics_json_value(&engine.metrics()),
                    metrics.json_value(),
                );
                let _ = reply.send(line);
            }
            EngineCmd::Snapshot => match durability.as_mut() {
                Some(d) => {
                    if d.checkpoint(&mut engine) {
                        release_covered(&mut pending_acks, &engine);
                    } else {
                        fail_acks(pending_acks.drain(..));
                    }
                }
                None => snapshot(&engine, &snapshot_path),
            },
            EngineCmd::Shutdown { reply } => {
                // FIFO queue: every ingest admitted before this command
                // has already been applied. Flush and persist —
                // `finish` also drains the reorder buffer, so every
                // still-held ack is releasable once the final
                // checkpoint commits.
                engine.finish();
                let committed = match durability.as_mut() {
                    Some(d) => d.checkpoint(&mut engine),
                    None => {
                        snapshot(&engine, &snapshot_path);
                        true
                    }
                };
                if committed {
                    release_covered(&mut pending_acks, &engine);
                } else {
                    fail_acks(pending_acks.drain(..));
                }
                if let Some(reply) = reply {
                    let _ = reply.send(proto::bye());
                }
                // finish() may have drained buffered events into state.
                poll = true;
                quit = true;
            }
        }
        // Push view updates for whatever the command changed; drop
        // watches whose connection has gone away. Skipped entirely when
        // no state-mutating command ran since the last poll.
        if poll && !watches.is_empty() {
            let store = engine.store();
            watches.retain_mut(|(w, sink)| {
                w.poll(&store)
                    .iter()
                    .all(|d| sink.send(proto::delta_line(d, Some(&store))).is_ok())
            });
        }
        if quit {
            break;
        }
    }
    shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop so it notices the flag.
    let _ = TcpStream::connect(addr);
}

/// Split an ingest command into its events and (optional) deferred
/// ack, stamped with the frame's highest event timestamp so release
/// can wait for the reorder buffer to pass the whole frame.
fn into_batch(cmd: EngineCmd) -> (Vec<Event>, Vec<PendingAck>) {
    let (evs, ack) = match cmd {
        EngineCmd::Ingest(ev, ack) => (vec![ev], ack),
        EngineCmd::IngestBatch(evs, ack) => (evs, ack),
        _ => unreachable!("into_batch is only called on ingest commands"),
    };
    let max_ts = evs.iter().map(|e| e.ts).max();
    let pending = ack.map(|ack| PendingAck { ack, max_ts });
    (evs, pending.into_iter().collect())
}

/// Release every held ack whose events have all drained out of the
/// reorder buffer (and were hence covered by the WAL commit that just
/// succeeded) — including frames dropped entirely as late, which left
/// nothing behind to persist. Release is FIFO *per connection*: a
/// covered ack stays held while an earlier frame from the same
/// connection is still uncovered, so each connection's ack stream is
/// monotone — but an uncovered frame never starves other connections
/// (the stream-head frame's ack can be held for a long time on an
/// idle stream, and late frames admitted behind it would otherwise
/// wait with it). With `max_lateness == 0` the buffer is always empty
/// after a push, so every held ack releases immediately.
fn release_covered(pending: &mut VecDeque<PendingAck>, engine: &Engine) {
    if pending.is_empty() {
        return;
    }
    let low = engine.buffered_low_ts();
    // Connections whose oldest held frame is still uncovered; few
    // connections ever hold uncovered frames at once, so a linear
    // scan beats a hash set.
    let mut blocked: Vec<u64> = Vec::new();
    let mut kept = VecDeque::new();
    for p in pending.drain(..) {
        let covered = match (p.max_ts, low) {
            (None, _) | (_, None) => true,
            (Some(max_ts), Some(low)) => max_ts < low,
        };
        if covered && !blocked.contains(&p.ack.conn) {
            let _ = p.ack.sink.send(p.ack.line);
        } else {
            if !blocked.contains(&p.ack.conn) {
                blocked.push(p.ack.conn);
            }
            kept.push_back(p);
        }
    }
    *pending = kept;
}

/// A WAL append or sync failed: the log now has a hole, so no held ack
/// can honestly claim durability anymore. Fail them all.
fn fail_acks(acks: impl Iterator<Item = PendingAck>) {
    for p in acks {
        let _ = p
            .ack
            .sink
            .send(proto::error("WAL append failed; events not durable"));
    }
}

fn parse_select(text: &str) -> Result<fenestra_query::Query> {
    match fenestra_query::parse_query(text)? {
        fenestra_query::ParsedQuery::Select(q) => Ok(q),
        fenestra_query::ParsedQuery::History { .. } => Err(Error::Invalid(
            "history queries cannot be watched; watch a select query".into(),
        )),
    }
}

fn snapshot(engine: &Engine, path: &Option<PathBuf>) {
    if let Some(p) = path {
        if let Err(e) = engine.save_state(p) {
            eprintln!("fenestrad: snapshot to {} failed: {e}", p.display());
        }
    }
}

// ----- connection threads ---------------------------------------------------

fn accept_loop(listener: TcpListener, ctx: Arc<ConnCtx>) {
    for stream in listener.incoming() {
        if ctx.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // The connection counter doubles as the connection id held
        // acks are keyed by (see [`Ack::conn`]).
        let conn_id = ctx.metrics.connections.fetch_add(1, Ordering::Relaxed);
        let ctx = ctx.clone();
        let _ = thread::Builder::new()
            .name("fenestra-conn".into())
            .spawn(move || handle_conn(stream, ctx, conn_id));
    }
}

fn handle_conn(stream: TcpStream, ctx: Arc<ConnCtx>, conn_id: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // All outbound lines — acks, replies, watch deltas — funnel
    // through one channel so a single writer owns the socket and the
    // per-connection ordering is explicit.
    let (out_tx, out_rx) = channel::unbounded::<String>();
    let writer = {
        let metrics = ctx.metrics.clone();
        thread::spawn(move || {
            let mut w = BufWriter::new(write_half);
            for line in out_rx.iter() {
                metrics
                    .bytes_out
                    .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
                if writeln!(w, "{line}").and_then(|()| w.flush()).is_err() {
                    break;
                }
            }
        })
    };

    let reader = BufReader::new(stream);
    let mut seq = 0u64;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        ctx.metrics
            .bytes_in
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let req = match proto::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                let _ = out_tx.send(proto::error(&e.to_string()));
                continue;
            }
        };
        match req {
            Request::Event(ev) => {
                seq += 1;
                if !ingest(&ctx, &out_tx, conn_id, Frame::One(ev), seq) {
                    break;
                }
            }
            Request::Batch(evs) => {
                if evs.is_empty() && !ctx.durable_acks {
                    // Nothing to admit; ack the frame without an engine
                    // round-trip. In durable-ack mode even empty frames
                    // travel through the engine queue so their ack
                    // cannot overtake a held ack for an earlier frame
                    // on the same connection.
                    let _ = out_tx.send(proto::ack_batch(seq, 0));
                } else {
                    seq += evs.len() as u64;
                    if !ingest(&ctx, &out_tx, conn_id, Frame::Many(evs), seq) {
                        break;
                    }
                }
            }
            Request::Query { text } => {
                request_reply(&ctx, &out_tx, |reply| EngineCmd::Query { text, reply })
            }
            Request::Stats => request_reply(&ctx, &out_tx, |reply| EngineCmd::Stats { reply }),
            Request::Watch { name, text } => {
                let sink = out_tx.clone();
                if ctx
                    .cmd_tx
                    .send(EngineCmd::Watch { name, text, sink })
                    .is_err()
                {
                    let _ = out_tx.send(proto::error("server shutting down"));
                }
            }
            Request::Shutdown => {
                request_reply(&ctx, &out_tx, |reply| EngineCmd::Shutdown {
                    reply: Some(reply),
                });
                break;
            }
        }
    }
    drop(out_tx);
    let _ = writer.join();
}

/// One ingest frame off the wire: a plain event line, or a
/// client-batched `{"op":"ingest","events":[…]}` frame.
enum Frame {
    One(Event),
    Many(Vec<Event>),
}

/// Enqueue one ingest frame under the configured backpressure policy.
/// A batch frame is admitted (or shed) atomically: one queue slot, one
/// ack. Under durable acks the ack line travels with the command and
/// the engine thread releases it once the frame's events are durable
/// (see [`PendingAck`]); otherwise it is sent here, at admit time.
/// Returns `false` when the server is shutting down.
fn ingest(
    ctx: &ConnCtx,
    out_tx: &Sender<String>,
    conn_id: u64,
    frame: Frame,
    last_seq: u64,
) -> bool {
    let count = match &frame {
        Frame::One(_) => 1,
        Frame::Many(evs) => evs.len() as u64,
    };
    let mut immediate_ack = Some(match &frame {
        Frame::One(_) => proto::ack(last_seq),
        Frame::Many(_) => proto::ack_batch(last_seq, count),
    });
    let ack = if ctx.durable_acks {
        immediate_ack.take().map(|line| Ack {
            conn: conn_id,
            sink: out_tx.clone(),
            line,
        })
    } else {
        None
    };
    let cmd = match frame {
        Frame::One(ev) => EngineCmd::Ingest(ev, ack),
        Frame::Many(evs) => EngineCmd::IngestBatch(evs, ack),
    };
    let admitted = match ctx.backpressure {
        Backpressure::Block => {
            if ctx.cmd_tx.send(cmd).is_err() {
                let _ = out_tx.send(proto::error("server shutting down"));
                return false;
            }
            true
        }
        Backpressure::Shed => match ctx.cmd_tx.try_send(cmd) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                ctx.metrics.shed.fetch_add(count, Ordering::Relaxed);
                let _ = out_tx.send(proto::shed(last_seq, count));
                false
            }
            Err(TrySendError::Disconnected(_)) => {
                let _ = out_tx.send(proto::error("server shutting down"));
                return false;
            }
        },
    };
    if admitted {
        ctx.metrics.events.fetch_add(count, Ordering::Relaxed);
        if ctx.durable_acks {
            // Counted only once the frame actually entered the queue —
            // a shed frame's ack was never deferred, it never existed.
            ctx.metrics.acks_deferred.fetch_add(1, Ordering::Relaxed);
        }
        ctx.metrics.observe_queue_depth(ctx.cmd_tx.len() as u64);
        if let Some(line) = immediate_ack {
            let _ = out_tx.send(line);
        }
    }
    true
}

/// Send a command carrying a one-shot reply channel and forward the
/// reply (or a shutdown notice) to the connection's writer.
fn request_reply(
    ctx: &ConnCtx,
    out_tx: &Sender<String>,
    make: impl FnOnce(Sender<String>) -> EngineCmd,
) {
    let (rtx, rrx) = channel::bounded(1);
    if ctx.cmd_tx.send(make(rtx)).is_err() {
        let _ = out_tx.send(proto::error("server shutting down"));
        return;
    }
    let line = rrx
        .recv()
        .unwrap_or_else(|_| proto::error("server shutting down"));
    let _ = out_tx.send(line);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(stream: &TcpStream) -> impl Iterator<Item = String> + '_ {
        BufReader::new(stream.try_clone().unwrap())
            .lines()
            .map_while(|l| l.ok())
    }

    #[test]
    fn stats_shutdown_round_trip() {
        let mut handle = Server::start(ServerConfig::new("127.0.0.1:0")).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);

        writeln!(input, r#"{{"stream":"s","ts":1,"x":2}}"#).unwrap();
        let ack = rx.next().unwrap();
        assert!(ack.contains(r#""seq":1"#), "got: {ack}");

        writeln!(input, r#"{{"cmd":"stats"}}"#).unwrap();
        let stats = rx.next().unwrap();
        let v: serde_json::Value = serde_json::from_str(&stats).unwrap();
        assert!(v.get("engine").is_some() && v.get("server").is_some());

        writeln!(input, r#"{{"cmd":"shutdown"}}"#).unwrap();
        let bye = rx.next().unwrap();
        assert!(bye.contains("bye"), "got: {bye}");
        handle.join();
    }

    #[test]
    fn wal_restart_recovers_state_and_rotates_segments() {
        let dir = std::env::temp_dir().join(format!("fenestra-srv-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("state.json");
        let wal = dir.join("log");
        let config = || {
            ServerConfig::new("127.0.0.1:0")
                .snapshot_path(&snap)
                .wal_path(&wal)
                .setup(|engine| {
                    engine.declare_attr("room", fenestra_temporal::AttrSchema::one());
                    engine
                        .add_rules_text("rule mv:\n on s\n replace $(visitor).room = room")
                        .unwrap();
                })
        };

        let mut handle = Server::start(config()).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);
        for ts in 1..=5 {
            writeln!(
                input,
                r#"{{"stream":"s","ts":{ts},"visitor":"v{ts}","room":"lab"}}"#
            )
            .unwrap();
            assert!(rx.next().unwrap().contains(r#""ok":true"#));
        }
        writeln!(input, r#"{{"cmd":"shutdown"}}"#).unwrap();
        rx.next().unwrap();
        handle.join();
        // Shutdown checkpointed: snapshot exists, gen 0 rotated away.
        assert!(snap.exists());
        assert!(!segment_path(&wal, 0).exists());

        // Restart over the same state directory and query it.
        let mut handle = Server::start(config()).unwrap();
        assert!(
            handle.metrics().recovered_ops.load(Ordering::Relaxed) > 0,
            "restart must replay the snapshot"
        );
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);
        writeln!(
            input,
            r#"{{"cmd":"query","q":"select ?v where {{ ?v room \"lab\" }}"}}"#
        )
        .unwrap();
        let reply = rx.next().unwrap();
        for v in ["v1", "v2", "v3", "v4", "v5"] {
            assert!(reply.contains(v), "missing {v} in: {reply}");
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_lines_get_errors_not_disconnects() {
        let mut handle = Server::start(ServerConfig::new("127.0.0.1:0")).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);

        writeln!(input, "this is not json").unwrap();
        assert!(rx.next().unwrap().contains(r#""ok":false"#));
        writeln!(input, r#"{{"cmd":"nope"}}"#).unwrap();
        assert!(rx.next().unwrap().contains("unknown command"));
        // Connection still works afterwards.
        writeln!(input, r#"{{"stream":"s","ts":1}}"#).unwrap();
        assert!(rx.next().unwrap().contains(r#""ok":true"#));

        handle.shutdown();
    }
}
