//! The threaded TCP server.
//!
//! Threading model: N **shard threads** (one per `--shards`, default 1)
//! each own one [`Engine`] partition and consume their own bounded
//! command queue (FIFO per shard, so a `shutdown` command naturally
//! drains every ingest admitted before it on that shard). Events route
//! to exactly one shard by a deterministic hash of their entity key
//! (see [`fenestra_core::ShardRouter`]); batch frames are split by
//! route and acked only when **every** touched shard's group commit
//! covers its part. Each accepted connection gets a **reader thread**
//! (socket lines → commands) and a **writer thread** (outbound channel
//! → socket), so slow clients never stall the engines — except
//! deliberately, under the [`Backpressure::Block`] policy, where a
//! full shard queue blocks the *sending* connection only.
//!
//! Queries fan out across shards and merge. `stats` is served
//! **lock-light** on the connection thread: shard loops and WAL
//! writers publish counters, gauges, and stage-latency histograms
//! into per-shard atomics ([`fenestra_obs::ShardObs`]) that the stats
//! builder — and the optional Prometheus listener
//! (`--metrics-addr`) — merely load and merge. Metrics reads never
//! enqueue through the ingest path; the explicit `{"cmd":"sync"}`
//! command is the processing barrier `stats` used to double as. With
//! one shard, query byte layout and the on-disk WAL/snapshot format
//! are identical to the pre-sharding server.

use crate::config::{Backpressure, ServerConfig};
use crate::metrics::ServerMetrics;
use crate::proto::{self, Request};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use fenestra_base::error::{Error, Result};
use fenestra_base::record::Event;
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Interval, Timestamp};
use fenestra_base::value::Value;
use fenestra_core::shard::{merge_rows, partial_select};
use fenestra_core::{Engine, EngineMetrics, QueryResult, ShardRouter, Watch};
use fenestra_obs::{EngineCounters, PipelineObs, ShardObs};
use fenestra_query::{
    Bindings, CacheStats, CachedPlan, PhysicalPlan, PlanCache, Query, QueryOptions, WindowPhys,
};
use fenestra_replica::{
    load_epoch, now_us, serve_follower, store_epoch, AckTracker, FollowerClient, LeaderConfig,
    ReplPaths, DEAD_SESSION_HEARTBEATS, HEARTBEAT_MS,
};
use fenestra_temporal::wal_file::{
    list_segment_gens, recover_shards, segment_path, shard_segment_path, shard_snapshot_path,
};
use fenestra_temporal::{FsyncPolicy, Provenance, TemporalStore, WalWriter, WalWriterStats};
use fenestra_wire::repl::{redirect_line, ReplFrame, ShardPosition};
use serde_json::{Map, Value as Json};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

// ----- cross-shard acks -----------------------------------------------------

/// Where (and how) a frame's acknowledgement is delivered. The two
/// wire planes share one ack table — and therefore one FIFO, vote,
/// and failure machinery — but render resolutions differently: the
/// JSONL plane sends pre-built reply lines to its writer thread, the
/// binary plane sends encoded `Ack`/`Err` frames to the reactor that
/// owns the connection.
pub(crate) enum AckSink {
    /// JSONL: the connection writer's line channel, plus the ack line
    /// built at admission.
    Line {
        /// The connection's outbound line channel.
        tx: Sender<String>,
        /// The success line (`{"ok":true,…}`), pre-rendered.
        line: String,
    },
    /// Binary: the owning reactor's outbound byte lane, plus the ack
    /// identity to encode on resolution.
    Bin {
        /// Queue-and-wake handle addressing the connection.
        out: crate::reactor::OutHandle,
        /// Per-connection sequence number of the frame's last event.
        seq: u64,
        /// Events in the frame.
        count: u64,
    },
}

impl AckSink {
    /// Deliver the success acknowledgement.
    fn send_ok(&self) {
        match self {
            AckSink::Line { tx, line } => {
                let _ = tx.send(line.clone());
            }
            AckSink::Bin { out, seq, count } => {
                out.send(fenestra_wire::binary::encode_ack(*seq, *count));
            }
        }
    }

    /// Deliver a failure resolution carrying `msg`.
    fn send_err(&self, msg: &str) {
        match self {
            AckSink::Line { tx, .. } => {
                let _ = tx.send(proto::error(msg));
            }
            AckSink::Bin { out, seq, .. } => {
                out.send(fenestra_wire::binary::encode_err(*seq, msg));
            }
        }
    }
}

/// One ingest frame's acknowledgement, shared by every shard the frame
/// touched. Under durable acks (`--fsync always` with a WAL) the ack
/// line is released only after each touched shard **votes**: its group
/// commit covered the frame's part — with `--max-lateness-ms > 0`,
/// only once the shard's watermark passed the part (see the crate docs,
/// "Ack semantics and durability"; the PR-4 contract holds per shard).
pub(crate) struct FrameAck {
    /// Connection the ack belongs to (release is FIFO per connection).
    conn: u64,
    sink: AckSink,
    /// Touched shards that have not voted yet. At zero the frame is
    /// complete and its line can go out (in per-connection order).
    remaining: AtomicUsize,
    /// Set by any shard whose WAL append/sync failed: the frame is not
    /// durable, so completion sends an error instead of the ack.
    failed: AtomicBool,
    /// Set by the sync-replica gate when the frame was locally durable
    /// but not confirmed by enough followers within `--sync-timeout-ms`
    /// (and `--sync-fallback` was off). Distinguishes the error line:
    /// the events *are* on the leader's disk, just not replicated.
    sync_failed: AtomicBool,
    /// Completion latch, read by the per-connection FIFO drain.
    done: AtomicBool,
}

impl FrameAck {
    /// A fresh frame ack awaiting `remaining` shard votes.
    pub(crate) fn new(conn: u64, sink: AckSink, remaining: usize) -> FrameAck {
        FrameAck {
            conn,
            sink,
            remaining: AtomicUsize::new(remaining),
            failed: AtomicBool::new(false),
            sync_failed: AtomicBool::new(false),
            done: AtomicBool::new(false),
        }
    }
}

/// Registry of in-flight durable acks, keyed by connection, in socket
/// (admission) order. Shards vote from their own threads; the table
/// sends each connection's ack lines strictly in admission order — a
/// completed frame waits behind an earlier incomplete one, but one
/// connection's stalled frame never holds up another connection.
pub(crate) struct AckTable {
    conns: Mutex<HashMap<u64, VecDeque<Arc<FrameAck>>>>,
    /// For the `acks_released` counter: every held line handed to a
    /// writer (ack or failure) counts as one resolved deferral.
    metrics: Arc<ServerMetrics>,
}

impl AckTable {
    fn new(metrics: Arc<ServerMetrics>) -> AckTable {
        AckTable {
            conns: Mutex::new(HashMap::new()),
            metrics,
        }
    }

    /// Whether connection `conn` still has unresolved frames — the
    /// reactor keeps an EOF'd binary connection alive until this says
    /// no, so held acks outlive a client that stops sending.
    pub(crate) fn has_conn(&self, conn: u64) -> bool {
        self.conns
            .lock()
            .expect("ack table lock")
            .contains_key(&conn)
    }

    /// Register a frame in admission order. Must happen before any
    /// shard can vote on it (i.e. before the parts are enqueued).
    pub(crate) fn register(&self, frame: Arc<FrameAck>) {
        let empty = frame.remaining.load(Ordering::Acquire) == 0;
        if empty {
            frame.done.store(true, Ordering::Release);
        }
        let conn = frame.conn;
        self.conns
            .lock()
            .expect("ack table lock")
            .entry(conn)
            .or_default()
            .push_back(frame);
        if empty {
            self.drain(conn);
        }
    }

    /// Remove a just-registered frame that was never admitted (shed).
    /// Only the registering connection thread calls this, and frames
    /// register sequentially per connection, so it is the back entry.
    pub(crate) fn unregister_last(&self, frame: &Arc<FrameAck>) {
        let mut map = self.conns.lock().expect("ack table lock");
        if let Some(q) = map.get_mut(&frame.conn) {
            if q.back().is_some_and(|b| Arc::ptr_eq(b, frame)) {
                q.pop_back();
            }
            if q.is_empty() {
                map.remove(&frame.conn);
            }
        }
    }

    /// One shard's verdict on its part of the frame. Exactly one vote
    /// per touched shard; the last vote completes the frame and flushes
    /// the connection's sendable prefix.
    fn vote(&self, frame: &Arc<FrameAck>, durable: bool) {
        if !durable {
            frame.failed.store(true, Ordering::Release);
        }
        if frame.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            frame.done.store(true, Ordering::Release);
            self.drain(frame.conn);
        }
    }

    /// Send the connection's completed-frame prefix, in order.
    fn drain(&self, conn: u64) {
        let mut map = self.conns.lock().expect("ack table lock");
        let Some(q) = map.get_mut(&conn) else { return };
        while q.front().is_some_and(|f| f.done.load(Ordering::Acquire)) {
            let f = q.pop_front().expect("checked front");
            self.metrics.acks_released.fetch_add(1, Ordering::Relaxed);
            if f.sync_failed.load(Ordering::Acquire) {
                f.sink.send_err(
                    "sync replication timed out; events durable locally but not \
                     confirmed by enough replicas",
                );
            } else if f.failed.load(Ordering::Acquire) {
                f.sink.send_err("WAL append failed; events not durable");
            } else {
                f.sink.send_ok();
            }
        }
        if q.is_empty() {
            map.remove(&conn);
        }
    }

    /// Shutdown sweep: every frame still registered (admitted behind
    /// the shutdown command, so never applied) is failed explicitly —
    /// no ack is left hanging, and no sink is left alive to wedge a
    /// connection's writer thread.
    fn fail_all(&self, msg: &str) {
        let mut map = self.conns.lock().expect("ack table lock");
        for (_, q) in map.drain() {
            for f in q {
                self.metrics.acks_released.fetch_add(1, Ordering::Relaxed);
                f.sink.send_err(msg);
            }
        }
    }
}

// ----- sync-replica ack gate ------------------------------------------------

/// One shard's hand-off to the sync gate: every ack part the shard's
/// group commit just covered locally, plus the WAL position that commit
/// reached. The parts are releasable once ≥ `--sync-replicas` follower
/// sessions claim fsynced coverage of `(gen, offset)` — generation
/// first, then byte offset (see [`AckTracker::covering`]).
struct SyncWait {
    shard: u32,
    gen: u64,
    offset: u64,
    parts: Vec<AckPart>,
    /// When the shard handed the wait over; the timeout and the
    /// `sync_wait_us` histogram both measure from here.
    since: Instant,
}

/// Commands consumed by the sync-gate thread.
enum GateMsg {
    /// Park these locally-durable parts until followers cover them.
    Wait(SyncWait),
    /// A follower's coverage advanced (sent by the [`AckTracker`]
    /// notify hook): re-check the parked waits now instead of on the
    /// next timeout tick. This is what makes the gate event-driven —
    /// without it, every sync-replicated ack ate up to a full polling
    /// interval of pure wakeup latency.
    Poke,
    /// Shutdown barrier: resolve every parked wait (followers keep
    /// acking during the drain — shipping is still running), confirm,
    /// and exit. Terminal: no `Wait` is accepted after it, and none can
    /// arrive — the shard threads have already drained.
    Flush(Sender<()>),
}

/// Everything the sync-gate thread owns. One gate serves all shards:
/// waits resolve in FIFO order per shard (coverage is monotone, so the
/// front wait always resolves first), and a resolved wait votes its
/// parts exactly like the async path would have.
struct SyncGateCtx {
    rx: Receiver<GateMsg>,
    /// Follower coverage, fed by the leader's per-session ack readers.
    tracker: Arc<AckTracker>,
    /// `--sync-replicas`: how many sessions must cover a position.
    replicas: u32,
    /// `--sync-timeout-ms`: how long a wait may park before degrading.
    timeout: std::time::Duration,
    /// `--sync-fallback`: on timeout, ack anyway (counted) instead of
    /// failing the frame.
    fallback: bool,
    table: Arc<AckTable>,
    obs: Arc<PipelineObs>,
}

/// The sync-gate thread: park covered-locally parts and release (or
/// time out) in per-shard FIFO order. Event-driven: coverage advances
/// arrive as [`GateMsg::Poke`] from the ack tracker's notify hook, so
/// the only timed wake-up left is each front wait's *own* timeout
/// deadline — an idle gate sleeps, a busy gate wakes exactly when a
/// follower acks or a wait expires.
fn sync_gate_loop(ctx: SyncGateCtx) {
    let mut queues: Vec<VecDeque<SyncWait>> = Vec::new();
    let mut open = true;
    loop {
        let busy = queues.iter().any(|q| !q.is_empty());
        if !busy && !open {
            return;
        }
        let msg = if !open {
            // Channel gone but waits remain: poll coverage until the
            // timeouts clear them. (Unreachable in practice — the
            // notify hook keeps a sender alive — but harmless.)
            thread::sleep(std::time::Duration::from_millis(2));
            None
        } else if busy {
            // Sleep until the earliest front-wait deadline; a Poke or
            // a new Wait cuts the sleep short.
            let next_deadline = queues
                .iter()
                .filter_map(|q| q.front())
                .map(|w| (w.since + ctx.timeout).saturating_duration_since(Instant::now()))
                .min()
                .unwrap_or(std::time::Duration::from_millis(1));
            match ctx.rx.recv_timeout(next_deadline) {
                Ok(m) => Some(m),
                Err(channel::RecvTimeoutError::Timeout) => None,
                Err(channel::RecvTimeoutError::Disconnected) => {
                    open = false;
                    None
                }
            }
        } else {
            match ctx.rx.recv() {
                Ok(m) => Some(m),
                Err(_) => {
                    open = false;
                    continue;
                }
            }
        };
        match msg {
            Some(GateMsg::Poke) => {}
            Some(GateMsg::Wait(w)) => {
                if queues.len() <= w.shard as usize {
                    queues.resize_with(w.shard as usize + 1, VecDeque::new);
                }
                ctx.obs
                    .repl
                    .sync_waiting
                    .fetch_add(w.parts.len() as u64, Ordering::Relaxed);
                queues[w.shard as usize].push_back(w);
            }
            Some(GateMsg::Flush(done)) => {
                while queues.iter().any(|q| !q.is_empty()) {
                    gate_pass(&ctx, &mut queues);
                    thread::sleep(std::time::Duration::from_millis(2));
                }
                let _ = done.send(());
                return;
            }
            None => {}
        }
        gate_pass(&ctx, &mut queues);
    }
}

/// One resolution pass: release each shard queue's covered prefix,
/// degrade (fallback-ack or fail) anything past its timeout.
fn gate_pass(ctx: &SyncGateCtx, queues: &mut [VecDeque<SyncWait>]) {
    let robs = &ctx.obs.repl;
    for (shard, q) in queues.iter_mut().enumerate() {
        while let Some(front) = q.front() {
            let covered =
                ctx.tracker.covering(shard as u32, front.gen, front.offset) >= ctx.replicas;
            if !covered && front.since.elapsed() < ctx.timeout {
                break; // FIFO: later waits target later positions.
            }
            let w = q.pop_front().expect("checked front");
            let n = w.parts.len() as u64;
            robs.sync_waiting.fetch_sub(n, Ordering::Relaxed);
            robs.sync_wait_us
                .record(w.since.elapsed().as_micros() as u64);
            if covered || ctx.fallback {
                if covered {
                    robs.sync_acks_ok.fetch_add(n, Ordering::Relaxed);
                } else {
                    robs.sync_acks_fallback.fetch_add(n, Ordering::Relaxed);
                }
                let now = Instant::now();
                for p in w.parts {
                    if let Some(s) = ctx.obs.shards.get(shard) {
                        s.ack_hold_us
                            .record(now.saturating_duration_since(p.admitted).as_micros() as u64);
                    }
                    ctx.table.vote(&p.frame, true);
                }
            } else {
                robs.sync_acks_timeout.fetch_add(n, Ordering::Relaxed);
                for p in w.parts {
                    p.frame.sync_failed.store(true, Ordering::Release);
                    ctx.table.vote(&p.frame, false);
                }
            }
        }
    }
}

// ----- shard commands -------------------------------------------------------

/// A frame part's ack bookkeeping, carried with the part to its shard.
pub(crate) struct AckPart {
    pub(crate) frame: Arc<FrameAck>,
    /// Highest event timestamp in *this shard's part* (`None` never
    /// occurs for sent parts — empty parts are not sent — but a frame
    /// dropped entirely as late still yields a covered vote).
    pub(crate) max_ts: Option<Timestamp>,
    /// When the connection thread admitted the frame; the `ack_hold_us`
    /// stage measures from here to the covering vote.
    pub(crate) admitted: Instant,
}

/// One shard's history span list, ids already resolved.
type HistorySpans = Vec<(Interval, Value, Provenance)>;

/// Commands consumed by a shard thread.
pub(crate) enum ShardCmd {
    /// This shard's part of one or more ingest frames. The shard
    /// greedily coalesces consecutive parts into one group commit and
    /// votes the attached acks once its WAL fsync covers them. The
    /// JSONL plane sends one part per frame; the reactor coalesces
    /// every frame it decoded from one socket drain into a single part
    /// carrying one [`AckPart`] per frame (bigger group commits from
    /// the same queue depth). `enqueued` is when the front door sent
    /// the part (the `queue_wait_us` stage).
    Ingest {
        evs: Vec<Event>,
        acks: Vec<AckPart>,
        enqueued: Instant,
    },
    /// Single-shard deployments: execute the compiled plan through the
    /// full legacy path, returning the exact reply line
    /// (byte-identical to the unsharded server). The plan arrives
    /// pre-compiled from the connection thread's shared [`PlanCache`].
    QueryPlan {
        plan: Arc<CachedPlan>,
        reply: Sender<String>,
    },
    /// Fan-out select: run with `limit`/`count` stripped and entity
    /// ids resolved; the connection thread merges across shards.
    QueryRows {
        q: Arc<Query>,
        reply: Sender<std::result::Result<Vec<Bindings>, String>>,
    },
    /// Fan-out history: every shard that knows the entity replies
    /// `Some`; the connection thread merges the timelines by span
    /// start (ties broken by shard id, then in-shard order).
    QueryHistory {
        entity: Symbol,
        attr: Symbol,
        reply: Sender<Option<HistorySpans>>,
    },
    /// Fan-out windowed aggregation: this shard's slice of the fact
    /// stream a [`WindowPhys`] scans, ts-ordered; the connection
    /// thread merges the slices and runs the window operator once.
    QueryFacts {
        w: Arc<WindowPhys>,
        reply: Sender<std::result::Result<Vec<Event>, String>>,
    },
    /// Register a standing query on this shard; deltas for this
    /// shard's partition of the rows go to `sink`. Watches of the
    /// same statement share one plan (the cache hands out `Arc`s).
    Watch {
        name: String,
        plan: Arc<CachedPlan>,
        sink: Sender<String>,
    },
    /// Processing barrier: replies once every command admitted before
    /// it on this shard's FIFO queue has been applied. `stats` reads
    /// atomics on the connection thread and proves nothing; `sync`
    /// proves everything.
    Sync {
        done: Sender<()>,
    },
    Snapshot,
    /// Horizon GC pass (`--gc-horizon-ms`), on the snapshot cadence.
    Gc,
    /// Follower: append leader-shipped raw WAL frames expected at
    /// exactly `(gen, offset)` of this shard's local segment, apply the
    /// contained ops to the store, and reply the new offset, frame/op
    /// counts for the replication counters, and whether the append was
    /// fsynced (policy `always`) — only then may the follower claim the
    /// position as *covered* to the leader's sync-ack gate. The local
    /// WAL stays a byte mirror of the leader's.
    ReplicaApply {
        gen: u64,
        offset: u64,
        bytes: Vec<u8>,
        reply: Sender<Result<(u64, u64, u64, bool)>>,
    },
    /// Follower: wholesale re-bootstrap from a leader snapshot (empty
    /// bytes = start this shard empty), restarting the local WAL with a
    /// fresh segment at `gen`.
    ReplicaBootstrap {
        gen: u64,
        bytes: Vec<u8>,
        reply: Sender<Result<()>>,
    },
    /// Follower: mirror the leader's rotation — checkpoint into a fresh
    /// segment at exactly `new_gen` (which must be the successor of the
    /// local generation; frames arrive in order, so the old segment is
    /// fully applied by now).
    ReplicaRotate {
        new_gen: u64,
        reply: Sender<Result<()>>,
    },
    /// Replication: this shard's durable position — current segment
    /// generation and byte length. `(0, 0)` without a WAL.
    ReplicaPosition {
        reply: Sender<(u64, u64)>,
    },
    /// Drain, flush, persist, vote every held ack, then confirm.
    Shutdown {
        done: Sender<()>,
    },
}

// ----- replication role -----------------------------------------------------

/// Replication role state, shared by the connection threads, the shard
/// threads, and the follower loop. Present only when `--follow` or
/// `--replicate` is configured; a plain server carries `None` and pays
/// nothing.
struct ReplState {
    /// The node's fencing epoch. Bumped (and persisted) at promotion;
    /// the replication listener fences sessions against it.
    epoch: Arc<AtomicU64>,
    /// True while this node is a read-only follower: ingest is
    /// redirected, local checkpoints and GC are suppressed (the
    /// leader's stream drives both), and `{"cmd":"promote"}` is legal.
    following: AtomicBool,
    /// The leader's replication address (`--follow`), echoed in ingest
    /// redirect errors.
    leader: Option<String>,
    /// Promotion request latch, set by `{"cmd":"promote"}`; the
    /// follower loop observes it within one tick.
    promote: AtomicBool,
    /// Promotion completion latch: the epoch is persisted and every
    /// shard has checkpointed under it.
    promoted: AtomicBool,
}

impl ReplState {
    fn is_following(&self) -> bool {
        self.following.load(Ordering::SeqCst)
    }
}

/// Shared context for connection threads and the reactor pool.
pub(crate) struct ConnCtx {
    pub(crate) shard_txs: Vec<Sender<ShardCmd>>,
    pub(crate) router: Arc<ShardRouter>,
    pub(crate) ack_table: Arc<AckTable>,
    coord: Arc<ShutdownCoord>,
    pub(crate) backpressure: Backpressure,
    /// `--fsync always` with a WAL: acks are deferred until every
    /// touched shard's group commit covers the frame.
    pub(crate) durable_acks: bool,
    /// Cap on one frame's payload (binary) or one line (JSONL).
    pub(crate) max_frame_bytes: usize,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) obs: Arc<PipelineObs>,
    /// Statement-keyed compiled-plan cache, shared by every connection
    /// (and every plane): queries, watches, and `EXPLAIN` all go
    /// through it, so repeated statements compile once.
    pub(crate) plans: Arc<PlanCache>,
    repl: Option<Arc<ReplState>>,
    pub(crate) shutdown: Arc<AtomicBool>,
}

/// The server entry point; see [`Server::start`].
pub struct Server;

/// A running server: bound address, shutdown trigger, join.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    replicate_addr: Option<SocketAddr>,
    metrics: Arc<ServerMetrics>,
    obs: Arc<PipelineObs>,
    shutdown: Arc<AtomicBool>,
    coord: Arc<ShutdownCoord>,
    shard_threads: Vec<JoinHandle<()>>,
    reactor_threads: Vec<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    repl_thread: Option<JoinHandle<()>>,
    follower_thread: Option<JoinHandle<()>>,
    sync_thread: Option<JoinHandle<()>>,
}

/// Coordinates the one graceful shutdown: broadcast `Shutdown` to all
/// shards, wait until each has drained/persisted/voted, then fail any
/// never-applied leftovers and stop the listener. Idempotent — late
/// callers wait for the first to finish.
struct ShutdownCoord {
    shard_txs: Vec<Sender<ShardCmd>>,
    ack_table: Arc<AckTable>,
    /// The sync gate's queue, when `--sync-replicas` is on: after the
    /// shards drain, the gate is flushed (waits resolve by coverage or
    /// timeout, with shipping still live) before leftovers are failed.
    sync_tx: Option<Sender<GateMsg>>,
    shutdown: Arc<AtomicBool>,
    started: AtomicBool,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    replicate_addr: Option<SocketAddr>,
}

impl ShutdownCoord {
    fn trigger(&self) {
        if self.started.swap(true, Ordering::SeqCst) {
            // Another caller is already draining; wait it out so "bye"
            // (sent after trigger returns) still means drained.
            while !self.shutdown.load(Ordering::SeqCst) {
                thread::sleep(std::time::Duration::from_millis(1));
            }
            return;
        }
        let mut dones = Vec::new();
        for tx in &self.shard_txs {
            let (dtx, drx) = channel::bounded(1);
            if tx.send(ShardCmd::Shutdown { done: dtx }).is_ok() {
                dones.push(drx);
            }
        }
        for d in dones {
            let _ = d.recv();
        }
        // Give parked sync waits their last chance to resolve — the
        // replication listener is still shipping, so followers can
        // still cover them — before anything is failed wholesale.
        if let Some(tx) = &self.sync_tx {
            let (dtx, drx) = channel::bounded(1);
            if tx.send(GateMsg::Flush(dtx)).is_ok() {
                let _ = drx.recv();
            }
        }
        // Frames admitted behind the shutdown command were never
        // applied; resolve their acks explicitly rather than hanging.
        self.ack_table.fail_all("server shutting down");
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loops so they notice the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(maddr) = self.metrics_addr {
            let _ = TcpStream::connect(maddr);
        }
        if let Some(raddr) = self.replicate_addr {
            let _ = TcpStream::connect(raddr);
        }
    }
}

impl Server {
    /// Bind the listener, start the shard/listener/snapshot threads,
    /// and return a handle. Events, queries, watches, stats, and
    /// shutdown all arrive over the one listener (see [`crate::proto`]).
    pub fn start(config: ServerConfig) -> Result<ServerHandle> {
        let ServerConfig {
            addr,
            queue_capacity,
            backpressure,
            batch_max,
            snapshot_path,
            snapshot_every,
            engine: engine_cfg,
            setup,
            wal_path,
            fsync,
            shards,
            gc_horizon,
            metrics_addr,
            slow_ms,
            replicate_addr,
            follow,
            promote_after,
            sync_replicas,
            sync_timeout,
            sync_fallback,
            max_frame_bytes,
            reactors,
        } = config;
        let shards = shards.max(1);
        let durable_acks = wal_path.is_some() && fsync == FsyncPolicy::Always;
        if sync_replicas > 0 && replicate_addr.is_none() {
            return Err(Error::Invalid(
                "--sync-replicas needs --replicate: follower coverage is measured on the \
                 shipping sessions"
                    .into(),
            ));
        }
        if sync_replicas > 0 && !durable_acks {
            return Err(Error::Invalid(
                "--sync-replicas needs durable acks (--wal with --fsync always): a sync \
                 ack strengthens the durable ack, it cannot replace it"
                    .into(),
            ));
        }
        if follow.is_some() && (wal_path.is_none() || snapshot_path.is_none()) {
            return Err(Error::Invalid(
                "--follow needs --wal and --snapshot: a follower mirrors the leader's \
                 on-disk layout"
                    .into(),
            ));
        }
        if replicate_addr.is_some() && wal_path.is_none() {
            return Err(Error::Invalid(
                "--replicate needs --wal: followers are shipped the on-disk segments".into(),
            ));
        }
        let listener = TcpListener::bind(&addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::default());
        let obs = Arc::new(PipelineObs::new(shards as usize));
        let metrics_listener = match &metrics_addr {
            Some(maddr) => Some(TcpListener::bind(maddr)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let repl_listener = match &replicate_addr {
            Some(raddr) => Some(TcpListener::bind(raddr)?),
            None => None,
        };
        let replicate_addr = match &repl_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let mut engines: Vec<Engine> = (0..shards).map(|_| Engine::new(engine_cfg)).collect();
        for (i, engine) in engines.iter_mut().enumerate() {
            engine.set_obs(obs.shards[i].clone());
        }
        // With a durable WAL configured, boot is a recovery: each
        // shard's latest snapshot plus its WAL tail, all shards
        // replayed in parallel, installed *before* `setup` so the
        // hook's declarations land on top of the recovered state. A
        // `--shards` value contradicting the on-disk layout is
        // rejected here, before anything is written.
        // The fencing epoch survives a crash two ways: the sidecar
        // written at promotion, and the stamp in every later snapshot.
        // Boot takes the max — whichever persisted first.
        let mut boot_epoch = wal_path.as_deref().map_or(0, load_epoch);
        let mut durabilities: Vec<Option<Durability>> = Vec::with_capacity(shards as usize);
        let epoch = Arc::new(AtomicU64::new(0));
        match &wal_path {
            Some(base) => {
                let t0 = std::time::Instant::now();
                let recs = recover_shards(snapshot_path.as_deref(), Some(base), shards)?;
                let mut ops = 0u64;
                let mut discarded_bytes = 0u64;
                let mut discarded_ops = 0u64;
                for (i, rec) in recs.into_iter().enumerate() {
                    ops += rec.snapshot_ops + rec.wal_ops;
                    discarded_bytes += rec.discarded_bytes;
                    discarded_ops += rec.discarded_ops;
                    boot_epoch = boot_epoch.max(rec.epoch);
                    let resumed = rec.resumed();
                    engines[i].restore_state(rec.store)?;
                    let seg = if shards == 1 {
                        segment_path(base, rec.wal_gen)
                    } else {
                        shard_segment_path(base, i as u32, rec.wal_gen)
                    };
                    // `open` re-truncates the same torn bytes `recover`
                    // already counted, so its torn count is not added.
                    let (mut writer, _torn) = WalWriter::open(&seg, fsync)?;
                    writer.set_obs(obs.shards[i].wal.clone());
                    durabilities.push(Some(Durability {
                        writer,
                        base: base.clone(),
                        gen: rec.wal_gen,
                        snapshot_path: snapshot_path.clone(),
                        metrics: metrics.clone(),
                        obs: obs.shards[i].clone(),
                        rotated_stats: WalWriterStats::default(),
                        published: WalWriterStats::default(),
                        boot_resumed: resumed,
                        shard: i as u32,
                        shards_total: shards,
                        epoch: epoch.clone(),
                    }));
                }
                metrics.recovered_ops.store(ops, Ordering::Relaxed);
                metrics
                    .wal_discarded_bytes
                    .store(discarded_bytes, Ordering::Relaxed);
                metrics
                    .wal_discarded_ops
                    .store(discarded_ops, Ordering::Relaxed);
                metrics
                    .recovery_ms
                    .store(t0.elapsed().as_millis() as u64, Ordering::Relaxed);
            }
            None => durabilities.extend((0..shards).map(|_| None)),
        }
        epoch.store(boot_epoch, Ordering::SeqCst);
        obs.repl.epoch.store(boot_epoch, Ordering::Relaxed);
        let repl = if follow.is_some() || replicate_addr.is_some() {
            obs.repl
                .following
                .store(u64::from(follow.is_some()), Ordering::Relaxed);
            Some(Arc::new(ReplState {
                epoch: epoch.clone(),
                following: AtomicBool::new(follow.is_some()),
                leader: follow.clone(),
                promote: AtomicBool::new(false),
                promoted: AtomicBool::new(false),
            }))
        } else {
            None
        };
        if let Some(setup) = &setup {
            for engine in &mut engines {
                setup(engine);
            }
        }
        // Derive the routing keys from the registered rules. Rules
        // whose matches can cross entities are rejected here, with the
        // shard count that would accept them.
        let mut router = ShardRouter::new(shards);
        for rule in engines[0].state_rules() {
            router.observe_rule(rule)?;
        }
        let router = Arc::new(router);

        let shutdown = Arc::new(AtomicBool::new(false));
        let ack_table = Arc::new(AckTable::new(metrics.clone()));
        // Follower durable-coverage registry, fed by the shipping
        // sessions' ack readers. Cheap when idle; the gate below is the
        // only reader.
        let ack_tracker = Arc::new(AckTracker::new());
        let (sync_tx, sync_thread) = if sync_replicas > 0 {
            let (tx, rx) = channel::unbounded();
            // Event-driven gate: follower coverage advances poke the
            // gate awake instead of it polling on a fixed tick.
            let poke = tx.clone();
            ack_tracker.set_notify(move || {
                let _ = poke.send(GateMsg::Poke);
            });
            let gctx = SyncGateCtx {
                rx,
                tracker: ack_tracker.clone(),
                replicas: sync_replicas,
                timeout: std::time::Duration::from_millis(sync_timeout.as_millis().max(1)),
                fallback: sync_fallback,
                table: ack_table.clone(),
                obs: obs.clone(),
            };
            let t = thread::Builder::new()
                .name("fenestra-sync-gate".into())
                .spawn(move || sync_gate_loop(gctx))?;
            (Some(tx), Some(t))
        } else {
            (None, None)
        };
        let per_shard_capacity = (queue_capacity / shards as usize).max(1);
        let mut shard_txs = Vec::with_capacity(shards as usize);
        let mut shard_threads = Vec::with_capacity(shards as usize);
        for (i, (engine, durability)) in engines.into_iter().zip(durabilities).enumerate() {
            let (tx, rx) = channel::bounded(per_shard_capacity);
            shard_txs.push(tx);
            let ctx = ShardCtx {
                id: i as u32,
                shards_total: shards,
                engine,
                rx,
                snapshot_path: snapshot_path.clone(),
                durability,
                batch_max,
                gc_horizon,
                metrics: metrics.clone(),
                obs: obs.shards[i].clone(),
                slow_ms,
                ack_table: ack_table.clone(),
                repl: repl.clone(),
                sync_tx: sync_tx.clone(),
            };
            shard_threads.push(
                thread::Builder::new()
                    .name(format!("fenestra-shard-{i}"))
                    .spawn(move || shard_loop(ctx))?,
            );
        }

        let coord = Arc::new(ShutdownCoord {
            shard_txs: shard_txs.clone(),
            ack_table: ack_table.clone(),
            sync_tx: sync_tx.clone(),
            shutdown: shutdown.clone(),
            started: AtomicBool::new(false),
            addr,
            metrics_addr,
            replicate_addr,
        });

        // The front door: an epoll reactor pool replaces the old
        // accept thread. Reactor 0 owns the listener; connections are
        // classified by their first bytes — binary-magic connections
        // stay on the reactors, anything else gets the classic
        // thread-per-connection JSONL loop (see [`crate::reactor`]).
        let plans = Arc::new(PlanCache::default());
        let reactor_pool = {
            let ctx = Arc::new(ConnCtx {
                shard_txs: shard_txs.clone(),
                router,
                ack_table,
                coord: coord.clone(),
                backpressure,
                durable_acks,
                max_frame_bytes,
                metrics: metrics.clone(),
                obs: obs.clone(),
                plans: plans.clone(),
                repl: repl.clone(),
                shutdown: shutdown.clone(),
            });
            crate::reactor::start(listener, ctx, crate::reactor::auto_reactors(reactors))?
        };

        // Prometheus exposition listener: plain HTTP, one thread,
        // served from atomics — a scrape can never block or slow the
        // ingest path.
        let metrics_thread = match metrics_listener {
            Some(l) => {
                let metrics = metrics.clone();
                let obs = obs.clone();
                let plans = plans.clone();
                let stop = shutdown.clone();
                Some(
                    thread::Builder::new()
                        .name("fenestra-metrics".into())
                        .spawn(move || metrics_loop(l, metrics, obs, plans, stop))?,
                )
            }
            None => None,
        };

        // Replication listener: each accepted follower gets its own
        // shipping session streaming committed segment bytes off disk
        // (see `fenestra_replica::serve_follower`). Shipping never
        // touches the shard threads — it reads what the group commits
        // already made durable.
        let repl_thread = match repl_listener {
            Some(l) => {
                let cfg = LeaderConfig {
                    paths: ReplPaths {
                        wal_base: wal_path.clone().expect("--replicate requires --wal"),
                        snapshot: snapshot_path.clone(),
                        shards,
                    },
                    epoch: epoch.clone(),
                    obs: obs.repl.clone(),
                    shutdown: shutdown.clone(),
                    poll: std::time::Duration::from_millis(20),
                    heartbeat: std::time::Duration::from_millis(HEARTBEAT_MS),
                    acks: ack_tracker.clone(),
                };
                let stop = shutdown.clone();
                Some(
                    thread::Builder::new()
                        .name("fenestra-repl".into())
                        .spawn(move || {
                            for stream in l.incoming() {
                                if stop.load(Ordering::SeqCst) {
                                    break;
                                }
                                let Ok(stream) = stream else { continue };
                                let cfg = cfg.clone();
                                let _ = thread::Builder::new().name("fenestra-ship".into()).spawn(
                                    move || {
                                        if let Err(e) = serve_follower(stream, cfg) {
                                            eprintln!("fenestrad: replication session ended: {e}");
                                        }
                                    },
                                );
                            }
                        })?,
                )
            }
            None => None,
        };

        // Follower loop: connect to the leader, stream frames into the
        // shard threads, reconnect (with resume positions) on any
        // session failure, and handle promotion.
        let follower_thread = match &follow {
            Some(leader) => {
                let rt = FollowerRuntime {
                    leader: leader.clone(),
                    shards,
                    shard_txs: shard_txs.clone(),
                    repl: repl.clone().expect("--follow implies replication state"),
                    obs: obs.clone(),
                    shutdown: shutdown.clone(),
                    wal_base: wal_path.clone().expect("--follow requires --wal"),
                    promote_after,
                };
                Some(
                    thread::Builder::new()
                        .name("fenestra-follow".into())
                        .spawn(move || follower_loop(rt))?,
                )
            }
            None => None,
        };

        // Snapshot/GC cadence: the snapshot tick also runs GC when a
        // horizon is configured; a horizon without periodic snapshots
        // gets its own ticker at the horizon interval.
        let tick = match (snapshot_every, gc_horizon) {
            (Some(every), _) => Some((every, true)),
            (None, Some(horizon)) => Some((horizon, false)),
            (None, None) => None,
        };
        if let Some((every, with_snapshot)) = tick {
            let txs = shard_txs;
            let stop = shutdown.clone();
            let gc = gc_horizon.is_some();
            thread::Builder::new()
                .name("fenestra-snapshot".into())
                .spawn(move || loop {
                    thread::sleep(std::time::Duration::from_millis(every.as_millis().max(1)));
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    for tx in &txs {
                        if with_snapshot && tx.send(ShardCmd::Snapshot).is_err() {
                            return;
                        }
                        if gc && tx.send(ShardCmd::Gc).is_err() {
                            return;
                        }
                    }
                })?;
        }

        Ok(ServerHandle {
            addr,
            metrics_addr,
            replicate_addr,
            metrics,
            obs,
            shutdown,
            coord,
            shard_threads,
            reactor_threads: reactor_pool.threads,
            metrics_thread,
            repl_thread,
            follower_thread,
            sync_thread,
        })
    }
}

impl ServerHandle {
    /// The bound listen address (resolves port `0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus listener address, when
    /// [`crate::ServerConfig::metrics_addr`] was configured (resolves
    /// port `0` to the real port).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The bound replication listener address, when
    /// [`crate::ServerConfig::replicate_addr`] was configured (resolves
    /// port `0` to the real port). Followers point `--follow` here.
    pub fn replicate_addr(&self) -> Option<SocketAddr> {
        self.replicate_addr
    }

    /// Live server counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Live pipeline instrumentation: stage histograms and per-shard
    /// gauges. Reads are relaxed atomic loads — cheap enough for a
    /// benchmark to snapshot mid-run.
    pub fn pipeline_obs(&self) -> &Arc<PipelineObs> {
        &self.obs
    }

    /// True once the shard threads have drained (e.g. a client issued
    /// the wire-level `shutdown` command).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: drain every shard queue, flush the engines,
    /// write the snapshots (if configured), resolve every held ack,
    /// stop the threads. Same path as the wire-level `shutdown`
    /// command. Idempotent.
    pub fn shutdown(&mut self) {
        self.coord.trigger();
        self.join();
    }

    /// Wait for the shard and reactor threads to exit (e.g. after a
    /// client issued the `shutdown` command).
    pub fn join(&mut self) {
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.reactor_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(t) = self.metrics_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.repl_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.follower_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.sync_thread.take() {
            let _ = t.join();
        }
    }
}

// ----- shard threads --------------------------------------------------------

/// A shard thread's durable-log state: the open segment writer plus
/// everything the snapshot-coordinated rotation needs. With one shard
/// total, file names are the legacy `base.gen` / bare snapshot path;
/// with N, `base-{shard}-{gen}.seg` / `snapshot.shard{i}`, and the
/// snapshot header carries the shard identity recovery validates.
struct Durability {
    writer: WalWriter,
    /// Segment base path.
    base: PathBuf,
    gen: u64,
    snapshot_path: Option<PathBuf>,
    metrics: Arc<ServerMetrics>,
    /// This shard's instrumentation: the WAL writer feeds
    /// `wal_append_us`/`fsync_us` into `obs.wal`, and every
    /// `publish_stats` refreshes the `wal_segment_bytes` gauge.
    obs: Arc<ShardObs>,
    /// Counters accumulated by writers of already-rotated segments
    /// (each `WalWriter` counts from zero).
    rotated_stats: WalWriterStats,
    /// Totals already folded into the shared metrics. N shards share
    /// the counters, so publication adds deltas instead of storing.
    published: WalWriterStats,
    /// Whether boot recovery replayed anything — if so, the loop
    /// checkpoints immediately so the next boot starts from a snapshot
    /// instead of re-replaying the same tail.
    boot_resumed: bool,
    shard: u32,
    shards_total: u32,
    /// The node's fencing epoch, stamped into every checkpoint snapshot
    /// so recovery can restore it even if the sidecar file is lost.
    epoch: Arc<AtomicU64>,
}

impl Durability {
    fn segment(&self, gen: u64) -> PathBuf {
        if self.shards_total == 1 {
            segment_path(&self.base, gen)
        } else {
            shard_segment_path(&self.base, self.shard, gen)
        }
    }

    /// This shard's snapshot file, honoring the legacy single-shard
    /// layout (bare path, no `.shard{i}` suffix).
    fn snapshot_file(&self) -> Option<PathBuf> {
        let snap = self.snapshot_path.as_ref()?;
        Some(if self.shards_total == 1 {
            snap.clone()
        } else {
            shard_snapshot_path(snap, self.shard)
        })
    }

    /// Refresh the segment-inventory gauges from the directory listing:
    /// current generation, oldest retained generation, and how many
    /// segment files this shard still holds on disk.
    fn refresh_wal_inventory(&self) {
        let shard = (self.shards_total > 1).then_some(self.shard);
        let gens = list_segment_gens(&self.base, shard);
        self.obs.wal_gen.store(self.gen, Ordering::Relaxed);
        self.obs
            .wal_oldest_gen
            .store(gens.first().copied().unwrap_or(self.gen), Ordering::Relaxed);
        self.obs
            .wal_segments
            .store((gens.len() as u64).max(1), Ordering::Relaxed);
    }

    /// Fold this writer's counter growth into the shared metrics.
    fn publish_stats(&mut self) {
        let s = self.writer.stats();
        let total = WalWriterStats {
            appends: self.rotated_stats.appends + s.appends,
            bytes: self.rotated_stats.bytes + s.bytes,
            fsyncs: self.rotated_stats.fsyncs + s.fsyncs,
        };
        let m = &self.metrics;
        m.wal_appends
            .fetch_add(total.appends - self.published.appends, Ordering::Relaxed);
        m.wal_bytes
            .fetch_add(total.bytes - self.published.bytes, Ordering::Relaxed);
        m.fsyncs
            .fetch_add(total.fsyncs - self.published.fsyncs, Ordering::Relaxed);
        self.published = total;
        self.obs
            .wal_segment_bytes
            .store(self.writer.segment_len(), Ordering::Relaxed);
    }

    /// Append the ops the engine applied since the last drain — the
    /// **group commit**: one frame (and, under `always`, one fsync) for
    /// however many events the batch covered. Returns `Some(ops)` on
    /// success (0 when the journal was empty), `None` if the append
    /// failed — held acks must then report the failure, not ack.
    fn drain(&mut self, engine: &mut Engine) -> Option<usize> {
        let ops = engine.take_journal();
        let mut appended = Some(ops.len());
        if !ops.is_empty() {
            if let Err(e) = self.writer.append(&ops) {
                eprintln!(
                    "fenestrad: WAL append to {} failed: {e}",
                    self.writer.path().display()
                );
                appended = None;
            }
        }
        self.publish_stats();
        appended
    }

    /// Drain, make the open segment durable, and — when a snapshot path
    /// is configured — rotate: start segment `gen+1` empty, write a
    /// compact snapshot stamped `wal_gen = gen+1` (and, sharded, with
    /// this shard's identity), then delete segment `gen`. Every crash
    /// window recovers. Returns whether the drain and sync both
    /// succeeded (the durability outcome held acks depend on; rotation
    /// failures only delay compaction, never durability).
    fn checkpoint(&mut self, engine: &mut Engine) -> bool {
        let committed = self.drain(engine).is_some();
        if let Err(e) = self.writer.sync() {
            eprintln!(
                "fenestrad: WAL sync of {} failed: {e}",
                self.writer.path().display()
            );
            self.publish_stats();
            return false;
        }
        self.publish_stats();
        let Some(snap) = self.snapshot_path.clone() else {
            return committed; // Nothing to rotate against; the segment just grows.
        };
        let next_gen = self.gen + 1;
        let next_path = self.segment(next_gen);
        let next_writer = match WalWriter::create(&next_path, self.writer.policy()) {
            Ok(mut w) => {
                // Rotation replaces the writer; the stage histograms
                // must keep accumulating across segments.
                w.set_obs(self.obs.wal.clone());
                w
            }
            Err(e) => {
                eprintln!(
                    "fenestrad: starting WAL segment {} failed: {e}",
                    next_path.display()
                );
                return committed;
            }
        };
        let saved = fenestra_temporal::persist::save_compact_stamped(
            &engine.store(),
            if self.shards_total == 1 {
                snap.clone()
            } else {
                shard_snapshot_path(&snap, self.shard)
            },
            next_gen,
            (self.shards_total > 1).then_some((self.shard, self.shards_total)),
            self.epoch.load(Ordering::SeqCst),
        );
        if let Err(e) = saved {
            // The snapshot still names the old generation; keep
            // appending to the old segment and retry next checkpoint.
            eprintln!("fenestrad: snapshot to {} failed: {e}", snap.display());
            return committed;
        }
        let old_path = self.segment(self.gen);
        self.rotated_stats.appends += self.writer.stats().appends;
        self.rotated_stats.bytes += self.writer.stats().bytes;
        self.rotated_stats.fsyncs += self.writer.stats().fsyncs;
        self.writer = next_writer;
        self.gen = next_gen;
        if let Err(e) = std::fs::remove_file(&old_path) {
            eprintln!(
                "fenestrad: removing rotated WAL segment {} failed: {e}",
                old_path.display()
            );
        }
        self.refresh_wal_inventory();
        committed
    }
}

/// Everything one shard thread owns.
struct ShardCtx {
    id: u32,
    shards_total: u32,
    engine: Engine,
    rx: Receiver<ShardCmd>,
    snapshot_path: Option<PathBuf>,
    durability: Option<Durability>,
    batch_max: usize,
    gc_horizon: Option<Duration>,
    metrics: Arc<ServerMetrics>,
    obs: Arc<ShardObs>,
    slow_ms: Option<u64>,
    ack_table: Arc<AckTable>,
    /// Replication role, when replication is configured at all. While
    /// `repl.is_following()` the shard is a mirror: its WAL and
    /// snapshots are driven by shipped leader frames, so local drains,
    /// checkpoints, and GC are suppressed.
    repl: Option<Arc<ReplState>>,
    /// `--sync-replicas` gate: locally-covered ack parts are handed
    /// here (with the WAL position the covering commit reached) instead
    /// of being voted directly.
    sync_tx: Option<Sender<GateMsg>>,
}

fn shard_loop(ctx: ShardCtx) {
    let ShardCtx {
        id,
        shards_total,
        mut engine,
        rx,
        snapshot_path,
        mut durability,
        batch_max,
        gc_horizon,
        metrics,
        obs,
        slow_ms,
        ack_table,
        repl,
        sync_tx,
    } = ctx;
    let is_following = || repl.as_ref().is_some_and(|r| r.is_following());
    if let Some(d) = durability.as_mut() {
        if is_following() {
            // A follower's WAL is a byte mirror of the leader's: the
            // local journal from `setup`/recovery is discarded (the
            // shipped stream is the only writer), and no checkpoint is
            // taken — rotating locally would fork the generation
            // lineage the leader's `Rotate` frames advance.
            let _ = engine.take_journal();
            d.refresh_wal_inventory();
        } else if d.boot_resumed {
            // Fold the replayed tail into a fresh snapshot so the next
            // boot recovers from there, not from the same tail again.
            let _ = d.checkpoint(&mut engine);
            d.refresh_wal_inventory();
        } else {
            // First boot: persist whatever `setup` journaled (schema,
            // rule side effects) before the first event.
            let _ = d.drain(&mut engine);
            d.refresh_wal_inventory();
        }
    }
    let mut watches: Vec<(Watch, Sender<String>)> = Vec::new();
    // Durable-mode ack parts held until this shard's events are
    // actually covered by a fsynced WAL frame, in admission order.
    let mut pending: VecDeque<AckPart> = VecDeque::new();
    // Highest event timestamp applied on this shard (the GC horizon's
    // reference point).
    let mut last_ts: u64 = 0;
    // A non-ingest command pulled off the queue while coalescing an
    // ingest batch; handled on the next iteration (FIFO preserved).
    let mut deferred_cmd: Option<ShardCmd> = None;
    loop {
        let cmd = match deferred_cmd.take() {
            Some(cmd) => cmd,
            None => match rx.recv() {
                Ok(cmd) => cmd,
                Err(_) => break,
            },
        };
        let mut quit = false;
        // Whether this command may have changed queryable state. Pure
        // reads (`Query*`, `Stats*`) and checkpoints leave it false, so
        // standing watches are not re-polled on their account.
        let mut poll = false;
        match cmd {
            ShardCmd::Ingest {
                evs,
                acks: ack,
                enqueued,
            } => {
                let dequeued = Instant::now();
                obs.queue_wait_us
                    .record(dequeued.saturating_duration_since(enqueued).as_micros() as u64);
                // Group commit: greedily drain the queue into one event
                // batch (up to `batch_max` events), apply it in one
                // engine pass, append ONE WAL frame, fsync once, and
                // poll watches once — instead of once per part.
                let mut batch = evs;
                let mut acks: VecDeque<AckPart> = ack.into_iter().collect();
                while batch.len() < batch_max {
                    match rx.try_recv() {
                        Ok(ShardCmd::Ingest {
                            evs,
                            acks: ack,
                            enqueued,
                        }) => {
                            obs.queue_wait_us.record(
                                dequeued.saturating_duration_since(enqueued).as_micros() as u64,
                            );
                            batch.extend(evs);
                            acks.extend(ack);
                        }
                        Ok(other) => {
                            deferred_cmd = Some(other);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                let n = batch.len() as u64;
                last_ts = last_ts.max(batch.iter().map(|e| e.ts.millis()).max().unwrap_or(0));
                let late = engine.push_batch(batch);
                let applied = Instant::now();
                if late > 0 {
                    // Deferred or not, the ack means "accepted", not
                    // "applied": events beyond the lateness bound are
                    // discarded and become visible here.
                    metrics.late_dropped.fetch_add(late, Ordering::Relaxed);
                }
                if n > 0 {
                    metrics.observe_ingest_batch(n);
                }
                let committed = match durability.as_mut() {
                    Some(d) => match d.drain(&mut engine) {
                        Some(ops) => {
                            if ops > 0 && n > 1 {
                                metrics.group_commits.fetch_add(1, Ordering::Relaxed);
                            }
                            true
                        }
                        None => false,
                    },
                    None => true,
                };
                // Durable-ack mode: the group fsync covers exactly the
                // events that have drained out of the reorder buffer —
                // vote every held part whose events all have. Parts
                // still (partly) in the buffer stay held until a later
                // batch advances this shard's watermark past them. On
                // append failure, report instead of lying about
                // durability.
                if committed {
                    pending.extend(acks);
                    let sync = sync_target(&sync_tx, id, durability.as_ref());
                    release_covered(&mut pending, &engine, &ack_table, &obs, sync.as_ref());
                } else {
                    for p in pending.drain(..).chain(acks) {
                        ack_table.vote(&p.frame, false);
                    }
                }
                obs.held_acks.store(pending.len() as u64, Ordering::Relaxed);
                obs.observe_queue_depth(rx.len() as u64);
                obs.state_facts
                    .store(engine.store().open_fact_count() as u64, Ordering::Relaxed);
                if let Some(ms) = slow_ms {
                    let done = Instant::now();
                    let total_us = done.saturating_duration_since(dequeued).as_micros() as u64;
                    if total_us >= ms.saturating_mul(1000) {
                        let mut o = Map::new();
                        o.insert("slow_op".into(), Json::from("ingest"));
                        o.insert("shard".into(), Json::from(id));
                        o.insert("events".into(), Json::from(n));
                        o.insert("late".into(), Json::from(late));
                        o.insert(
                            "apply_us".into(),
                            Json::from(
                                applied.saturating_duration_since(dequeued).as_micros() as u64
                            ),
                        );
                        o.insert(
                            "commit_us".into(),
                            Json::from(done.saturating_duration_since(applied).as_micros() as u64),
                        );
                        o.insert("total_us".into(), Json::from(total_us));
                        o.insert("held_acks".into(), Json::from(pending.len() as u64));
                        eprintln!("{}", Json::Object(o));
                    }
                }
                poll = n > late;
            }
            ShardCmd::QueryPlan { plan, reply } => {
                let line = match engine.execute_plan(&plan, QueryOptions::default()) {
                    Ok(res) => proto::query_reply(&res, Some(&engine.store())),
                    Err(e) => proto::error(&e.to_string()),
                };
                let _ = reply.send(line);
            }
            ShardCmd::QueryRows { q, reply } => {
                let res = partial_select(&engine.store(), &q, QueryOptions::default())
                    .map_err(|e| e.to_string());
                let _ = reply.send(res);
            }
            ShardCmd::QueryFacts { w, reply } => {
                let res = w.collect_facts(&engine.store()).map_err(|e| e.to_string());
                let _ = reply.send(res);
            }
            ShardCmd::QueryHistory {
                entity,
                attr,
                reply,
            } => {
                let store = engine.store();
                let spans = store.lookup_entity(entity).map(|e| {
                    store
                        .history(e, attr)
                        .into_iter()
                        .map(|(iv, v, prov)| {
                            let v = match v {
                                Value::Id(id) => store
                                    .entity_name(id)
                                    .map(Value::Str)
                                    .unwrap_or(Value::Id(id)),
                                other => other,
                            };
                            (iv, v, prov)
                        })
                        .collect::<Vec<_>>()
                });
                let _ = reply.send(spans);
            }
            ShardCmd::Watch { name, plan, sink } => {
                watches.push((Watch::from_plan(name.as_str(), plan), sink));
                // Poll so the new watch delivers its initial rows.
                poll = true;
            }
            ShardCmd::Sync { done } => {
                // FIFO queue: everything admitted before this command
                // has been applied (and, durable, drained to the WAL)
                // by the time we reply.
                let _ = done.send(());
            }
            ShardCmd::Snapshot => {
                if is_following() {
                    // A follower's snapshots/rotations are driven by the
                    // leader's `Rotate` frames; a locally-initiated
                    // checkpoint would fork the generation lineage.
                } else {
                    match durability.as_mut() {
                        Some(d) => {
                            if d.checkpoint(&mut engine) {
                                let sync = sync_target(&sync_tx, id, Some(&*d));
                                release_covered(
                                    &mut pending,
                                    &engine,
                                    &ack_table,
                                    &obs,
                                    sync.as_ref(),
                                );
                            } else {
                                for p in pending.drain(..) {
                                    ack_table.vote(&p.frame, false);
                                }
                            }
                        }
                        None => snapshot(&engine, &snapshot_path, id, shards_total),
                    }
                }
            }
            ShardCmd::Gc => {
                if let Some(horizon) = gc_horizon {
                    if !is_following() && last_ts > horizon.as_millis() {
                        let removed = engine.gc(Timestamp::new(last_ts - horizon.as_millis()));
                        if removed > 0 {
                            metrics
                                .gc_removed
                                .fetch_add(removed as u64, Ordering::Relaxed);
                        }
                    }
                }
            }
            ShardCmd::ReplicaApply {
                gen,
                offset,
                bytes,
                reply,
            } => {
                let res = replica_apply(&mut engine, durability.as_mut(), gen, offset, &bytes);
                if matches!(&res, Ok((_, _, ops, _)) if *ops > 0) {
                    poll = true;
                    obs.state_facts
                        .store(engine.store().open_fact_count() as u64, Ordering::Relaxed);
                }
                let _ = reply.send(res);
            }
            ShardCmd::ReplicaBootstrap { gen, bytes, reply } => {
                let res = replica_bootstrap(&mut engine, durability.as_mut(), gen, &bytes);
                if res.is_ok() {
                    poll = true;
                    obs.state_facts
                        .store(engine.store().open_fact_count() as u64, Ordering::Relaxed);
                }
                let _ = reply.send(res);
            }
            ShardCmd::ReplicaRotate { new_gen, reply } => {
                let _ = reply.send(replica_rotate(&mut engine, durability.as_mut(), new_gen));
            }
            ShardCmd::ReplicaPosition { reply } => {
                let pos = durability
                    .as_ref()
                    .map_or((0, 0), |d| (d.gen, d.writer.segment_len()));
                let _ = reply.send(pos);
            }
            ShardCmd::Shutdown { done } => {
                // FIFO queue: every part admitted before this command
                // has already been applied. Flush and persist —
                // `finish` drains the reorder buffer, so every still-
                // held ack part is coverable by the final checkpoint.
                engine.finish();
                let committed = if is_following() {
                    // Mirror discipline holds through shutdown: sync the
                    // shipped bytes, but take no checkpoint — a snapshot
                    // stamped mid-segment would double-replay the
                    // shipped frames (they recover from offset 0).
                    let _ = engine.take_journal();
                    match durability.as_mut() {
                        Some(d) => d.writer.sync().is_ok(),
                        None => true,
                    }
                } else {
                    match durability.as_mut() {
                        Some(d) => d.checkpoint(&mut engine),
                        None => {
                            snapshot(&engine, &snapshot_path, id, shards_total);
                            true
                        }
                    }
                };
                if committed {
                    let sync = sync_target(&sync_tx, id, durability.as_ref());
                    release_covered(&mut pending, &engine, &ack_table, &obs, sync.as_ref());
                }
                obs.held_acks.store(0, Ordering::Relaxed);
                // After `finish` the buffer is empty, so a successful
                // checkpoint covered everything; anything left (only on
                // failure) is voted down — no ack is left hanging.
                for p in pending.drain(..) {
                    ack_table.vote(&p.frame, false);
                }
                // finish() may have drained buffered events into state.
                poll = true;
                quit = true;
                let _ = done.send(());
            }
        }
        // Push view updates for whatever the command changed; drop
        // watches whose connection has gone away. Skipped entirely when
        // no state-mutating command ran since the last poll.
        if poll && !watches.is_empty() {
            let store = engine.store();
            watches.retain_mut(|(w, sink)| {
                w.poll(&store)
                    .iter()
                    .all(|d| sink.send(proto::delta_line(d, Some(&store))).is_ok())
            });
        }
        if quit {
            break;
        }
    }
}

/// The sync gate hand-off target for a shard's release pass: the WAL
/// position its covering group commit just reached (current generation,
/// committed byte length). `None` when the gate is off — startup
/// validation guarantees a WAL exists whenever it is on.
fn sync_target(
    sync_tx: &Option<Sender<GateMsg>>,
    shard: u32,
    durability: Option<&Durability>,
) -> Option<(Sender<GateMsg>, u32, u64, u64)> {
    let tx = sync_tx.as_ref()?;
    let d = durability?;
    Some((tx.clone(), shard, d.gen, d.writer.segment_len()))
}

/// Release every held part whose events have all drained out of this
/// shard's reorder buffer (and were hence covered by the WAL commit
/// that just succeeded) — including parts dropped entirely as late,
/// which left nothing behind to persist. Without a sync target the
/// release is a success vote right here; with one (`--sync-replicas`),
/// the locally-covered parts are parked at the gate until enough
/// follower sessions durably cover `(gen, offset)`. Votes can complete
/// in any order; the [`AckTable`] serializes each connection's ack
/// lines into admission order. With `max_lateness == 0` the buffer is
/// always empty after a push, so every held part releases immediately.
fn release_covered(
    pending: &mut VecDeque<AckPart>,
    engine: &Engine,
    table: &AckTable,
    obs: &ShardObs,
    sync: Option<&(Sender<GateMsg>, u32, u64, u64)>,
) {
    if pending.is_empty() {
        return;
    }
    let low = engine.buffered_low_ts();
    let now = Instant::now();
    let mut covered_parts = Vec::new();
    let mut keep = VecDeque::new();
    for p in pending.drain(..) {
        let covered = match (p.max_ts, low) {
            (None, _) | (_, None) => true,
            (Some(max_ts), Some(low)) => max_ts < low,
        };
        if covered {
            covered_parts.push(p);
        } else {
            keep.push_back(p);
        }
    }
    *pending = keep;
    if covered_parts.is_empty() {
        return;
    }
    if let Some((tx, shard, gen, offset)) = sync {
        let wait = SyncWait {
            shard: *shard,
            gen: *gen,
            offset: *offset,
            parts: covered_parts,
            since: now,
        };
        match tx.send(GateMsg::Wait(wait)) {
            Ok(()) => return,
            Err(e) => {
                // The gate is gone (shutdown already flushed it):
                // degrade to the local release rather than hanging the
                // connection's ack queue.
                let GateMsg::Wait(w) = e.0 else {
                    return;
                };
                covered_parts = w.parts;
            }
        }
    }
    for p in covered_parts {
        obs.ack_hold_us
            .record(now.saturating_duration_since(p.admitted).as_micros() as u64);
        table.vote(&p.frame, true);
    }
}

// ----- follower apply path --------------------------------------------------
//
// The follower's WAL is a *byte mirror* of the leader's: shipped raw
// frames are the only thing ever appended, at exactly the offset the
// leader said they sit at. Any mismatch (gen skew, offset skew, failed
// op) is returned as an error; the follower loop then tears the
// session down and reconnects with fresh resume positions — the leader
// re-bootstraps whatever cannot be resumed, so every failure mode
// self-heals at the cost of a snapshot ship.

/// Append a run of leader-shipped raw WAL frames and apply the decoded
/// ops. Returns `(new_offset, frames, ops, synced)` for the resume
/// position, the replication counters, and the durable-coverage claim
/// (`synced` is true only under `--fsync always`, where `append_raw`
/// fsyncs before returning).
fn replica_apply(
    engine: &mut Engine,
    durability: Option<&mut Durability>,
    gen: u64,
    offset: u64,
    bytes: &[u8],
) -> Result<(u64, u64, u64, bool)> {
    let d = durability.ok_or_else(|| Error::Invalid("replica apply needs a WAL".into()))?;
    if gen != d.gen {
        return Err(Error::Invalid(format!(
            "shipped frames for gen {gen} but the local segment is gen {}",
            d.gen
        )));
    }
    let local = d.writer.segment_len();
    if offset != local {
        return Err(Error::Invalid(format!(
            "shipped frames at offset {offset} but the local segment holds {local} bytes"
        )));
    }
    // `append_raw` refuses anything that is not a clean run of
    // CRC-valid frames, fsyncs per policy, and hands back the decoded
    // ops — the disk write and the apply see the same bytes.
    let tail = d.writer.append_raw(bytes)?;
    let apply_res = {
        let store = engine.shared_store();
        let mut guard = store.write().expect("store lock");
        tail.ops.iter().try_for_each(|op| guard.apply(op))
    };
    // `apply` re-journals every op (it drives the same mutations ingest
    // does); the shipped bytes are already in the local segment, so the
    // journal copy is discarded to keep the byte mirror exact.
    let _ = engine.take_journal();
    apply_res?;
    d.publish_stats();
    let synced = d.writer.policy() == FsyncPolicy::Always;
    Ok((
        d.writer.segment_len(),
        tail.frames,
        tail.ops.len() as u64,
        synced,
    ))
}

/// Wholesale re-bootstrap from a leader snapshot: mirror the snapshot
/// bytes (empty = start this shard empty), install the state, and
/// restart the local WAL with a fresh, empty segment at `gen`.
fn replica_bootstrap(
    engine: &mut Engine,
    durability: Option<&mut Durability>,
    gen: u64,
    bytes: &[u8],
) -> Result<()> {
    let d = durability.ok_or_else(|| Error::Invalid("replica bootstrap needs a WAL".into()))?;
    let snap = d.snapshot_file();
    let store = if bytes.is_empty() {
        if let Some(p) = &snap {
            let _ = std::fs::remove_file(p);
        }
        TemporalStore::new()
    } else {
        let p = snap
            .as_ref()
            .ok_or_else(|| Error::Invalid("bootstrap snapshot needs --snapshot".into()))?;
        // Keep the leader's serialization verbatim on disk, then load
        // it — a crash right after this point recovers exactly like the
        // leader would.
        fenestra_temporal::persist::write_atomic(p, bytes)?;
        let text = std::str::from_utf8(bytes)
            .map_err(|_| Error::Corrupt("bootstrap snapshot is not UTF-8".into()))?;
        fenestra_temporal::persist::from_json_with_meta(text)?.store
    };
    engine.restore_state(store)?;
    let _ = engine.take_journal();
    // Replace the local segment lineage with the leader's: every local
    // segment goes, and a fresh one starts at the shipped generation.
    let shard = (d.shards_total > 1).then_some(d.shard);
    for old_gen in list_segment_gens(&d.base, shard) {
        let _ = std::fs::remove_file(d.segment(old_gen));
    }
    let path = d.segment(gen);
    let mut writer = WalWriter::create(&path, d.writer.policy())?;
    writer.set_obs(d.obs.wal.clone());
    // Fold the replaced writer's counters into the rotated totals so
    // `publish_stats`' delta subtraction never underflows.
    let s = d.writer.stats();
    d.rotated_stats.appends += s.appends;
    d.rotated_stats.bytes += s.bytes;
    d.rotated_stats.fsyncs += s.fsyncs;
    d.writer = writer;
    d.gen = gen;
    d.publish_stats();
    d.refresh_wal_inventory();
    Ok(())
}

/// Mirror the leader's segment rotation: sync the finished segment,
/// start the successor, write a local checkpoint snapshot stamped with
/// the new generation (the follower's own serialization — semantically
/// equal to the leader's), and delete the finished segment.
fn replica_rotate(
    engine: &mut Engine,
    durability: Option<&mut Durability>,
    new_gen: u64,
) -> Result<()> {
    let d = durability.ok_or_else(|| Error::Invalid("replica rotate needs a WAL".into()))?;
    if new_gen != d.gen + 1 {
        return Err(Error::Invalid(format!(
            "rotation to gen {new_gen} but the local segment is gen {} (want its successor)",
            d.gen
        )));
    }
    let _ = engine.take_journal();
    d.writer.sync()?;
    let next_path = d.segment(new_gen);
    let mut next_writer = WalWriter::create(&next_path, d.writer.policy())?;
    next_writer.set_obs(d.obs.wal.clone());
    if let Some(p) = d.snapshot_file() {
        fenestra_temporal::persist::save_compact_stamped(
            &engine.store(),
            p,
            new_gen,
            (d.shards_total > 1).then_some((d.shard, d.shards_total)),
            d.epoch.load(Ordering::SeqCst),
        )?;
    }
    let old_path = d.segment(d.gen);
    let s = d.writer.stats();
    d.rotated_stats.appends += s.appends;
    d.rotated_stats.bytes += s.bytes;
    d.rotated_stats.fsyncs += s.fsyncs;
    d.writer = next_writer;
    d.gen = new_gen;
    let _ = std::fs::remove_file(&old_path);
    d.publish_stats();
    d.refresh_wal_inventory();
    Ok(())
}

// ----- follower loop --------------------------------------------------------

/// Everything the follower thread owns: the leader address, the shard
/// queues it feeds shipped frames into, and the shared role state.
struct FollowerRuntime {
    leader: String,
    shards: u32,
    shard_txs: Vec<Sender<ShardCmd>>,
    repl: Arc<ReplState>,
    obs: Arc<PipelineObs>,
    shutdown: Arc<AtomicBool>,
    wal_base: PathBuf,
    promote_after: Option<Duration>,
}

/// Each shard's durable position (current generation, segment length),
/// fresh from the shard threads — the resume positions a reconnect
/// offers the leader. `None` when a shard thread is gone (shutdown).
fn shard_positions(rt: &FollowerRuntime) -> Option<Vec<ShardPosition>> {
    let mut rxs = Vec::with_capacity(rt.shard_txs.len());
    for tx in &rt.shard_txs {
        let (reply, rx) = channel::bounded(1);
        if tx.send(ShardCmd::ReplicaPosition { reply }).is_err() {
            return None;
        }
        rxs.push(rx);
    }
    let mut out = Vec::with_capacity(rxs.len());
    for (i, rx) in rxs.into_iter().enumerate() {
        let (gen, offset) = rx.recv().ok()?;
        out.push(ShardPosition {
            shard: i as u32,
            gen,
            offset,
        });
    }
    Some(out)
}

/// The follower thread: connect to the leader, dispatch shipped frames
/// to the shard threads, ack applied-and-durable positions, and
/// reconnect with fresh resume positions on any session failure. Exits
/// for good at shutdown or promotion.
fn follower_loop(rt: FollowerRuntime) {
    let robs = rt.obs.repl.clone();
    // Auto-promotion (`--promote-after-ms`) arms only once the leader
    // has been heard from: promoting a follower that never synced would
    // serve whatever partial state it booted with.
    let mut last_contact: Option<Instant> = None;
    let mut backoff_ms = 50u64;
    while !rt.shutdown.load(Ordering::SeqCst) {
        if rt.repl.promote.load(Ordering::SeqCst) {
            if promote(&rt) {
                return;
            }
            // Plain sleep: `sleep_checked` returns immediately while
            // the promote latch is set, and the retry cadence must not
            // be a hot loop.
            thread::sleep(std::time::Duration::from_millis(200));
            continue;
        }
        if let (Some(after), Some(t)) = (rt.promote_after, last_contact) {
            if t.elapsed() >= std::time::Duration::from_millis(after.as_millis()) {
                eprintln!(
                    "fenestrad: no leader contact for {}ms; promoting",
                    after.as_millis()
                );
                if promote(&rt) {
                    return;
                }
                thread::sleep(std::time::Duration::from_millis(200));
                continue;
            }
        }
        let Some(resume) = shard_positions(&rt) else {
            return;
        };
        let my_epoch = rt.repl.epoch.load(Ordering::SeqCst);
        let mut client = match FollowerClient::connect(
            &rt.leader,
            my_epoch,
            rt.shards,
            resume,
            std::time::Duration::from_millis(100),
        ) {
            Ok(c) => c,
            Err(e) => {
                eprintln!(
                    "fenestrad: connecting to leader {} failed: {e} (retrying in {backoff_ms}ms)",
                    rt.leader
                );
                sleep_checked(&rt, backoff_ms);
                backoff_ms = (backoff_ms * 2).min(2000);
                continue;
            }
        };
        // The handshake guarantees the leader's epoch is ≥ ours; adopt
        // (and persist) a higher one so our next Hello survives a
        // leader restart.
        if client.epoch > my_epoch {
            if let Err(e) = store_epoch(&rt.wal_base, client.epoch) {
                eprintln!(
                    "fenestrad: persisting adopted epoch {} failed: {e}",
                    client.epoch
                );
            }
            rt.repl.epoch.store(client.epoch, Ordering::SeqCst);
            robs.epoch.store(client.epoch, Ordering::Relaxed);
        }
        let Ok(mut acks) = client.ack_sender() else {
            robs.reconnects.fetch_add(1, Ordering::Relaxed);
            continue;
        };
        last_contact = Some(Instant::now());
        backoff_ms = 50;
        // Liveness deadline for the session itself: the leader
        // heartbeats every `HEARTBEAT_MS` even when idle, so a socket
        // this quiet for several intervals is half-open (leader power
        // loss, a dropped route — nothing that produces a FIN). Tear it
        // down and reconnect rather than trusting a dead TCP session.
        let dead_after =
            std::time::Duration::from_millis(HEARTBEAT_MS.saturating_mul(DEAD_SESSION_HEARTBEATS));
        let mut last_frame = Instant::now();
        // One session: frames dispatch to shard threads in arrival
        // order; any error breaks out and reconnects.
        loop {
            if rt.shutdown.load(Ordering::SeqCst) {
                client.shutdown();
                return;
            }
            if rt.repl.promote.load(Ordering::SeqCst) {
                client.shutdown();
                if promote(&rt) {
                    return;
                }
                // Retry from the outer loop (its promote-latch check
                // runs first and paces the retries).
                break;
            }
            if let (Some(after), Some(t)) = (rt.promote_after, last_contact) {
                if t.elapsed() >= std::time::Duration::from_millis(after.as_millis()) {
                    client.shutdown();
                    eprintln!(
                        "fenestrad: no leader contact for {}ms; promoting",
                        after.as_millis()
                    );
                    if promote(&rt) {
                        return;
                    }
                    break;
                }
            }
            let frame = match client.recv() {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    // Quiet tick: re-check the flags, and give up on a
                    // session that has out-quieted the heartbeat
                    // cadence — it is half-open, not idle.
                    if last_frame.elapsed() >= dead_after {
                        eprintln!(
                            "fenestrad: no leader traffic for {}ms (heartbeat every {}ms); \
                             reconnecting",
                            dead_after.as_millis(),
                            HEARTBEAT_MS
                        );
                        client.shutdown();
                        break;
                    }
                    continue;
                }
                Err(e) => {
                    eprintln!("fenestrad: replication session to {} ended: {e}", rt.leader);
                    break;
                }
            };
            last_frame = Instant::now();
            last_contact = Some(Instant::now());
            robs.last_leader_contact_ms
                .store(now_us() / 1000, Ordering::Relaxed);
            match frame {
                ReplFrame::Frames {
                    shard,
                    gen,
                    offset,
                    epoch: _,
                    sent_at_us,
                    bytes,
                } => {
                    let t0 = Instant::now();
                    let nbytes = bytes.len() as u64;
                    let (reply, rx) = channel::bounded(1);
                    let sent = rt.shard_txs.get(shard as usize).is_some_and(|tx| {
                        tx.send(ShardCmd::ReplicaApply {
                            gen,
                            offset,
                            bytes,
                            reply,
                        })
                        .is_ok()
                    });
                    if !sent {
                        return; // shard threads are gone: shutdown
                    }
                    match rx.recv() {
                        Ok(Ok((new_offset, frames, ops, synced))) => {
                            robs.applied_frames.fetch_add(frames, Ordering::Relaxed);
                            robs.applied_ops.fetch_add(ops, Ordering::Relaxed);
                            robs.applied_bytes.fetch_add(nbytes, Ordering::Relaxed);
                            robs.apply_us.record(t0.elapsed().as_micros() as u64);
                            let pos = ShardPosition {
                                shard,
                                gen,
                                offset: new_offset,
                            };
                            if acks.send(pos, sent_at_us).is_err() {
                                break;
                            }
                            // The coverage claim the leader's sync gate
                            // votes on — only when the local append was
                            // actually fsynced.
                            if synced && acks.send_covered(pos, sent_at_us).is_err() {
                                break;
                            }
                        }
                        Ok(Err(e)) => {
                            // Position skew or a failed op: resync via
                            // reconnect (the leader re-bootstraps what
                            // cannot resume).
                            eprintln!("fenestrad: replica apply failed: {e}; resyncing");
                            break;
                        }
                        Err(_) => return,
                    }
                }
                ReplFrame::Snapshot {
                    shard,
                    gen,
                    epoch: _,
                    bytes,
                } => {
                    let (reply, rx) = channel::bounded(1);
                    let sent = rt.shard_txs.get(shard as usize).is_some_and(|tx| {
                        tx.send(ShardCmd::ReplicaBootstrap { gen, bytes, reply })
                            .is_ok()
                    });
                    if !sent {
                        return;
                    }
                    match rx.recv() {
                        Ok(Ok(())) => {
                            let pos = ShardPosition {
                                shard,
                                gen,
                                offset: 0,
                            };
                            // Durable by construction: the snapshot was
                            // written atomically (file fsynced) and the
                            // fresh segment is empty.
                            if acks.send(pos, 0).is_err() || acks.send_covered(pos, 0).is_err() {
                                break;
                            }
                        }
                        Ok(Err(e)) => {
                            eprintln!("fenestrad: replica bootstrap failed: {e}; resyncing");
                            break;
                        }
                        Err(_) => return,
                    }
                }
                ReplFrame::Rotate {
                    shard,
                    new_gen,
                    epoch: _,
                } => {
                    let (reply, rx) = channel::bounded(1);
                    let sent = rt.shard_txs.get(shard as usize).is_some_and(|tx| {
                        tx.send(ShardCmd::ReplicaRotate { new_gen, reply }).is_ok()
                    });
                    if !sent {
                        return;
                    }
                    match rx.recv() {
                        Ok(Ok(())) => {
                            let pos = ShardPosition {
                                shard,
                                gen: new_gen,
                                offset: 0,
                            };
                            // Durable by construction: rotation synced
                            // the finished segment and checkpointed
                            // before replying.
                            if acks.send(pos, 0).is_err() || acks.send_covered(pos, 0).is_err() {
                                break;
                            }
                        }
                        Ok(Err(e)) => {
                            eprintln!("fenestrad: replica rotation failed: {e}; resyncing");
                            break;
                        }
                        Err(_) => return,
                    }
                }
                ReplFrame::Heartbeat {
                    epoch: _,
                    positions,
                } => {
                    // The leader's write positions against ours: the
                    // per-shard byte-lag gauges. Cross-generation lag
                    // approximates to the leader's in-segment offset
                    // (the old segment's residue ships imminently).
                    let Some(local) = shard_positions(&rt) else {
                        return;
                    };
                    for p in positions {
                        let Some(l) = local.get(p.shard as usize) else {
                            continue;
                        };
                        let lag = if p.gen == l.gen {
                            p.offset.saturating_sub(l.offset)
                        } else {
                            p.offset
                        };
                        if let Some(s) = rt.obs.shards.get(p.shard as usize) {
                            s.repl_lag_bytes.store(lag, Ordering::Relaxed);
                        }
                    }
                }
                other => {
                    eprintln!("fenestrad: unexpected replication frame: {other:?}");
                    break;
                }
            }
        }
        robs.reconnects.fetch_add(1, Ordering::Relaxed);
        sleep_checked(&rt, backoff_ms);
        backoff_ms = (backoff_ms * 2).min(2000);
    }
}

/// Sleep `ms`, waking early at shutdown or promotion.
fn sleep_checked(rt: &FollowerRuntime, ms: u64) {
    let deadline = Instant::now() + std::time::Duration::from_millis(ms);
    while Instant::now() < deadline {
        if rt.shutdown.load(Ordering::SeqCst) || rt.repl.promote.load(Ordering::SeqCst) {
            return;
        }
        thread::sleep(std::time::Duration::from_millis(5));
    }
}

/// Fenced failover. Ordering is the point:
///
/// 1. **Persist the bumped epoch** (the sidecar write — atomic rename
///    plus parent-directory fsync — is the durable fence: after it, a
///    restart of this node still outranks the old leader). If this
///    fails, promotion **aborts with no role change**: flipping to
///    leader on an epoch that could evaporate at the next power cut
///    would let a rebooted pair resurrect the old epoch and un-fence
///    the demoted leader. Returns `false`; the caller retries.
/// 2. Publish it in memory.
/// 3. **Leave follower mode** — the shard threads' checkpoint arms are
///    gated on `is_following`, so this must precede step 4.
/// 4. Checkpoint every shard: each snapshot is stamped with the new
///    epoch and rotation starts a fresh generation — a new lineage the
///    demoted leader's frames can never splice into.
fn promote(rt: &FollowerRuntime) -> bool {
    let robs = rt.obs.repl.clone();
    let new_epoch = rt.repl.epoch.load(Ordering::SeqCst) + 1;
    if let Err(e) = store_epoch(&rt.wal_base, new_epoch) {
        eprintln!(
            "fenestrad: persisting promotion epoch {new_epoch} failed: {e}; \
             promotion aborted, still following (will retry)"
        );
        return false;
    }
    rt.repl.epoch.store(new_epoch, Ordering::SeqCst);
    robs.epoch.store(new_epoch, Ordering::Relaxed);
    rt.repl.following.store(false, Ordering::SeqCst);
    robs.following.store(0, Ordering::Relaxed);
    for tx in &rt.shard_txs {
        let _ = tx.send(ShardCmd::Snapshot);
    }
    // Barrier: promotion reports complete only once every shard has
    // checkpointed under the new epoch.
    let mut dones = Vec::new();
    for tx in &rt.shard_txs {
        let (done, rx) = channel::bounded(1);
        if tx.send(ShardCmd::Sync { done }).is_ok() {
            dones.push(rx);
        }
    }
    for rx in dones {
        let _ = rx.recv();
    }
    rt.repl.promoted.store(true, Ordering::SeqCst);
    eprintln!("fenestrad: promoted to leader at epoch {new_epoch}");
    true
}

/// Non-durable snapshot write: the legacy single file with one shard,
/// shard-stamped `path.shard{i}` files with N.
fn snapshot(engine: &Engine, path: &Option<PathBuf>, shard: u32, shards_total: u32) {
    let Some(p) = path else { return };
    let res = if shards_total == 1 {
        engine.save_state(p)
    } else {
        fenestra_temporal::persist::save_compact_sharded(
            &engine.store(),
            shard_snapshot_path(p, shard),
            0,
            shard,
            shards_total,
        )
    };
    if let Err(e) = res {
        eprintln!("fenestrad: snapshot to {} failed: {e}", p.display());
    }
}

// ----- connection threads ---------------------------------------------------

/// Outcome of one capped line read.
enum LineRead {
    /// Clean end of stream (a trailing unterminated line is yielded
    /// first, matching `BufRead::lines`).
    Eof,
    /// One line is in the buffer (terminator stripped).
    Line,
    /// The line exceeded `--max-frame-bytes`; it was consumed and
    /// discarded through its terminator, so the stream stays in sync.
    TooLong,
}

/// Read one `\n`-terminated line into `out` without ever buffering
/// more than `cap` bytes of it — the JSONL half of the
/// `--max-frame-bytes` guard. Unlike the binary plane (where an
/// oversize declared length poisons the framing), a too-long line has
/// a self-evident resynchronization point: the next newline.
fn read_line_capped<R: BufRead>(
    r: &mut R,
    out: &mut Vec<u8>,
    cap: usize,
) -> std::io::Result<LineRead> {
    out.clear();
    loop {
        let (found, used) = {
            let buf = r.fill_buf()?;
            if buf.is_empty() {
                return Ok(if out.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                });
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if out.len() + pos > cap {
                        (Some(LineRead::TooLong), pos + 1)
                    } else {
                        out.extend_from_slice(&buf[..pos]);
                        (Some(LineRead::Line), pos + 1)
                    }
                }
                None => {
                    if out.len() + buf.len() > cap {
                        out.clear();
                        // Oversize: skip the rest of the line.
                        let skipped = skip_to_newline(r)?;
                        return Ok(if skipped {
                            LineRead::TooLong
                        } else {
                            LineRead::Eof
                        });
                    }
                    out.extend_from_slice(buf);
                    (None, buf.len())
                }
            }
        };
        r.consume(used);
        if let Some(res) = found {
            return Ok(res);
        }
    }
}

/// Discard bytes through the next `\n`. Returns false on EOF.
fn skip_to_newline<R: BufRead>(r: &mut R) -> std::io::Result<bool> {
    loop {
        let (end, used) = {
            let buf = r.fill_buf()?;
            if buf.is_empty() {
                return Ok(false);
            }
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => (true, pos + 1),
                None => (false, buf.len()),
            }
        };
        r.consume(used);
        if end {
            return Ok(true);
        }
    }
}

/// The classic JSONL connection loop, fed by the reactor once a
/// connection's first bytes rule out the binary magic. `prefix` is
/// whatever the reactor already read during detection; it is replayed
/// ahead of the socket so no byte is lost.
pub(crate) fn handle_conn(stream: TcpStream, ctx: Arc<ConnCtx>, conn_id: u64, prefix: Vec<u8>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // All outbound lines — acks, replies, watch deltas — funnel
    // through one channel so a single writer owns the socket and the
    // per-connection ordering is explicit. The writer coalesces: one
    // blocking recv, then a greedy sweep of whatever else is queued,
    // one write + flush for the lot — under held-ack bursts (a group
    // commit releasing dozens of acks at once) that is one syscall
    // pair instead of one per line.
    let (out_tx, out_rx) = channel::unbounded::<String>();
    let writer = {
        let metrics = ctx.metrics.clone();
        thread::spawn(move || {
            let mut w = BufWriter::new(write_half);
            let mut batch = String::new();
            while let Ok(first) = out_rx.recv() {
                batch.clear();
                batch.push_str(&first);
                batch.push('\n');
                while batch.len() < 1 << 20 {
                    match out_rx.try_recv() {
                        Ok(line) => {
                            batch.push_str(&line);
                            batch.push('\n');
                        }
                        Err(_) => break,
                    }
                }
                metrics
                    .bytes_out
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                if w.write_all(batch.as_bytes())
                    .and_then(|()| w.flush())
                    .is_err()
                {
                    break;
                }
            }
        })
    };

    let mut reader = BufReader::new(std::io::Cursor::new(prefix).chain(stream));
    let mut raw = Vec::new();
    let mut seq = 0u64;
    loop {
        let line = match read_line_capped(&mut reader, &mut raw, ctx.max_frame_bytes) {
            Ok(LineRead::Eof) => break,
            Ok(LineRead::TooLong) => {
                let _ = out_tx.send(proto::error(&format!(
                    "frame too large: line exceeds max-frame-bytes {}; line discarded",
                    ctx.max_frame_bytes
                )));
                continue;
            }
            Ok(LineRead::Line) => match std::str::from_utf8(&raw) {
                Ok(s) => s,
                Err(_) => break,
            },
            Err(_) => break,
        };
        ctx.metrics
            .bytes_in
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let req = match proto::parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                // Unknown `cmd`/`op` values get the structured reply
                // (error + `supported` list); everything else the
                // plain error line.
                let reply =
                    proto::unknown_reply(line).unwrap_or_else(|| proto::error(&e.to_string()));
                let _ = out_tx.send(reply);
                continue;
            }
        };
        // A follower is read-only: ingest is redirected to the leader
        // (queries, watches, and stats all serve locally). Checked per
        // line, not per connection — the answer flips at promotion.
        if matches!(req, Request::Event(_) | Request::Batch(_)) {
            if let Some(r) = ctx.repl.as_ref().filter(|r| r.is_following()) {
                let leader = r.leader.as_deref().unwrap_or("");
                let _ = out_tx.send(redirect_line(leader).trim_end().to_string());
                continue;
            }
        }
        match req {
            Request::Event(ev) => {
                seq += 1;
                if !ingest(&ctx, &out_tx, conn_id, Frame::One(ev), seq) {
                    break;
                }
            }
            Request::Batch(evs) => {
                if evs.is_empty() && !ctx.durable_acks {
                    // Nothing to admit; ack the frame without a shard
                    // round-trip. In durable-ack mode even empty frames
                    // register in the ack table so their ack cannot
                    // overtake a held ack for an earlier frame on the
                    // same connection.
                    let _ = out_tx.send(proto::ack_batch(seq, 0));
                } else {
                    seq += evs.len() as u64;
                    if !ingest(&ctx, &out_tx, conn_id, Frame::Many(evs), seq) {
                        break;
                    }
                }
            }
            Request::Query { text } => {
                ctx.metrics.queries.fetch_add(1, Ordering::Relaxed);
                handle_query(&ctx, &out_tx, &text);
            }
            Request::Stats => {
                // Lock-light: built here, on the connection thread,
                // from published atomics. No shard round-trip — a
                // stats poller can never slow or stall ingest.
                let _ = out_tx.send(build_stats(&ctx));
            }
            Request::Sync => {
                fan_out_sync(&ctx, &out_tx);
            }
            Request::Watch { name, text } => match compile_cached(&ctx, &text) {
                Ok(plan) if !plan.is_watchable() => {
                    let _ = out_tx.send(proto::error(
                        "history queries cannot be watched; watch a select query",
                    ));
                }
                Ok(plan) => {
                    ctx.metrics.watches.fetch_add(1, Ordering::Relaxed);
                    let _ = out_tx.send(proto::watch_ack(&name));
                    for tx in &ctx.shard_txs {
                        let cmd = ShardCmd::Watch {
                            name: name.clone(),
                            plan: plan.clone(),
                            sink: out_tx.clone(),
                        };
                        if tx.send(cmd).is_err() {
                            let _ = out_tx.send(proto::error("server shutting down"));
                            break;
                        }
                    }
                }
                Err(e) => {
                    let _ = out_tx.send(proto::error(&e.to_string()));
                }
            },
            Request::Promote => {
                let line = match &ctx.repl {
                    None => proto::error("not a follower: replication is not configured"),
                    Some(r) if !r.is_following() => {
                        proto::error("not a follower: this node is already the leader")
                    }
                    Some(r) => {
                        // Latch the request; the follower thread
                        // observes it within one tick and runs the
                        // fenced promotion sequence.
                        r.promote.store(true, Ordering::SeqCst);
                        let deadline = Instant::now() + std::time::Duration::from_secs(30);
                        loop {
                            if r.promoted.load(Ordering::SeqCst) {
                                let mut m = Map::new();
                                m.insert("ok".into(), Json::Bool(true));
                                m.insert("promoted".into(), Json::Bool(true));
                                m.insert(
                                    "epoch".into(),
                                    Json::from(r.epoch.load(Ordering::SeqCst)),
                                );
                                break Json::Object(m).to_string();
                            }
                            if Instant::now() >= deadline || ctx.shutdown.load(Ordering::SeqCst) {
                                break proto::error("promotion did not complete");
                            }
                            thread::sleep(std::time::Duration::from_millis(2));
                        }
                    }
                };
                let _ = out_tx.send(line);
            }
            Request::Shutdown => {
                // Drains every shard (all parts admitted before this
                // line on this connection are covered by FIFO shard
                // queues), resolves every held ack, then confirms.
                ctx.coord.trigger();
                let _ = out_tx.send(proto::bye());
                break;
            }
        }
    }
    drop(out_tx);
    let _ = writer.join();
}

/// Compile `text` through the shared plan cache, recording compile
/// latency into the plan histograms on a miss.
fn compile_cached(ctx: &ConnCtx, text: &str) -> Result<Arc<CachedPlan>> {
    let (plan, hit) = ctx.plans.get_or_compile(text)?;
    if !hit {
        ctx.obs.plan.compile_us.record(plan.compile_us);
    }
    Ok(plan)
}

/// One `query` request end to end: strip the `EXPLAIN` prefix, compile
/// through the shared plan cache (the cache key is the inner
/// statement, so explaining a query warms its plan), then either
/// render the plan trees or execute — a single shard through the
/// byte-identical legacy path, N shards by physical-operator fan-out.
fn handle_query(ctx: &ConnCtx, out_tx: &Sender<String>, text: &str) {
    let (explain, stmt) = fenestra_query::strip_explain(text);
    let plan = match compile_cached(ctx, stmt) {
        Ok(plan) => plan,
        Err(e) => {
            let _ = out_tx.send(proto::error(&e.to_string()));
            return;
        }
    };
    let line = if explain {
        let (logical, physical) = fenestra_query::render_explain(&plan, ctx.shard_txs.len());
        proto::explain_reply(plan.dialect, &logical, &physical, &plan.rules)
    } else {
        let t0 = Instant::now();
        let line = dispatch_plan(ctx, &plan);
        ctx.obs.plan.exec_us.record(t0.elapsed().as_micros() as u64);
        line
    };
    let _ = out_tx.send(line);
}

/// Execute a compiled plan and build the reply line. One shard uses
/// the legacy in-shard path (byte-identical to the unsharded server);
/// N shards fan out by the plan's physical operator.
fn dispatch_plan(ctx: &ConnCtx, plan: &Arc<CachedPlan>) -> String {
    if ctx.shard_txs.len() == 1 {
        let (rtx, rrx) = channel::bounded(1);
        if ctx.shard_txs[0]
            .send(ShardCmd::QueryPlan {
                plan: plan.clone(),
                reply: rtx,
            })
            .is_err()
        {
            return proto::error("server shutting down");
        }
        return rrx
            .recv()
            .unwrap_or_else(|_| proto::error("server shutting down"));
    }
    match &plan.physical {
        PhysicalPlan::Select { query } => fan_out_rows(ctx, query),
        PhysicalPlan::History { entity, attr } => fan_out_history(ctx, *entity, *attr),
        PhysicalPlan::WindowAgg(w) => fan_out_window(ctx, w),
    }
}

/// Fan a select out to every shard and merge via [`merge_rows`].
fn fan_out_rows(ctx: &ConnCtx, q: &Arc<Query>) -> String {
    let mut replies = Vec::with_capacity(ctx.shard_txs.len());
    for tx in &ctx.shard_txs {
        let (rtx, rrx) = channel::bounded(1);
        if tx
            .send(ShardCmd::QueryRows {
                q: q.clone(),
                reply: rtx,
            })
            .is_err()
        {
            return proto::error("server shutting down");
        }
        replies.push(rrx);
    }
    let mut parts = Vec::with_capacity(replies.len());
    for rrx in replies {
        match rrx.recv() {
            Ok(Ok(rows)) => parts.push(rows),
            Ok(Err(msg)) => return proto::error(&msg),
            Err(_) => return proto::error("server shutting down"),
        }
    }
    let rows = merge_rows(q, parts);
    proto::query_reply(&QueryResult::Rows(rows), None)
}

/// Fan a history query out to every shard and merge every timeline
/// that knows the entity, ordered by span start with ties broken by
/// shard id then in-shard order (see
/// [`fenestra_core::shard::merge_history`]).
fn fan_out_history(ctx: &ConnCtx, entity: Symbol, attr: Symbol) -> String {
    let mut replies = Vec::with_capacity(ctx.shard_txs.len());
    for tx in &ctx.shard_txs {
        let (rtx, rrx) = channel::bounded(1);
        if tx
            .send(ShardCmd::QueryHistory {
                entity,
                attr,
                reply: rtx,
            })
            .is_err()
        {
            return proto::error("server shutting down");
        }
        replies.push(rrx);
    }
    let mut parts: Vec<HistorySpans> = Vec::new();
    let mut known = false;
    for rrx in replies {
        match rrx.recv() {
            Ok(Some(spans)) => {
                known = true;
                parts.push(spans);
            }
            Ok(None) => {}
            Err(_) => return proto::error("server shutting down"),
        }
    }
    if !known {
        return proto::error(&Error::Invalid(format!("unknown entity `{entity}`")).to_string());
    }
    // Ids were resolved shard-side; no store needed here.
    let spans = fenestra_core::shard::merge_history(parts);
    proto::query_reply(&QueryResult::History(spans), None)
}

/// Fan a windowed aggregation out: every shard scans its slice of the
/// fact stream (ts-ordered), the slices merge into one ordered stream
/// (shard id then in-shard order break ts ties), and the window
/// operator runs once over the merged stream.
fn fan_out_window(ctx: &ConnCtx, w: &Arc<WindowPhys>) -> String {
    let mut replies = Vec::with_capacity(ctx.shard_txs.len());
    for tx in &ctx.shard_txs {
        let (rtx, rrx) = channel::bounded(1);
        if tx
            .send(ShardCmd::QueryFacts {
                w: w.clone(),
                reply: rtx,
            })
            .is_err()
        {
            return proto::error("server shutting down");
        }
        replies.push(rrx);
    }
    let mut batches = Vec::with_capacity(replies.len());
    for rrx in replies {
        match rrx.recv() {
            Ok(Ok(evs)) => batches.push(evs),
            Ok(Err(msg)) => return proto::error(&msg),
            Err(_) => return proto::error("server shutting down"),
        }
    }
    match w.aggregate(WindowPhys::merge_fact_batches(batches)) {
        Ok(rows) => proto::query_reply(&QueryResult::Rows(rows), None),
        Err(e) => proto::error(&e.to_string()),
    }
}

/// Engine counters as published into the per-shard gauges, in
/// [`EngineMetrics`] shape so the wire schema is unchanged.
pub(crate) fn counters_to_metrics(c: &EngineCounters) -> EngineMetrics {
    EngineMetrics {
        events: c.events,
        late_dropped: c.late_dropped,
        rule_fired: c.rule_fired,
        transitions: c.transitions,
        guard_blocked: c.guard_blocked,
        rule_errors: c.rule_errors,
        reason_asserted: c.reason_asserted,
        reason_retracted: c.reason_retracted,
        reason_syncs: c.reason_syncs,
        ttl_expired: c.ttl_expired,
    }
}

/// Build the `stats` reply from published atomics only — engine
/// counters merged across shards, the shared server counters, merged
/// stage-latency histograms, and a per-shard breakdown (counters,
/// gauges, stages). No locks beyond relaxed loads, no shard
/// round-trip; see `fenestra-wire`'s stats schema docs.
fn build_stats(ctx: &ConnCtx) -> String {
    let mut merged = EngineMetrics::default();
    let mut per_shard = Vec::with_capacity(ctx.obs.shards.len());
    for (i, sh) in ctx.obs.shards.iter().enumerate() {
        let em = counters_to_metrics(&sh.engine.load());
        merged.merge(&em);
        let mut obj = Map::new();
        obj.insert("shard".into(), Json::from(i as u32));
        obj.insert(
            "engine".into(),
            fenestra_wire::metrics::metrics_json_value(&em),
        );
        obj.insert(
            "held_acks".into(),
            Json::from(sh.held_acks.load(Ordering::Relaxed)),
        );
        obj.insert("gauges".into(), sh.gauges_json());
        obj.insert("stages".into(), sh.stages_json());
        per_shard.push(Json::Object(obj));
    }
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(true));
    obj.insert(
        "engine".into(),
        fenestra_wire::metrics::metrics_json_value(&merged),
    );
    obj.insert("server".into(), ctx.metrics.json_value());
    obj.insert("stages".into(), ctx.obs.merged_stages_json());
    obj.insert("plans".into(), plans_json(ctx));
    obj.insert("shards".into(), Json::Array(per_shard));
    // Present only when replication is configured, so a plain server's
    // stats schema is unchanged.
    if ctx.repl.is_some() {
        obj.insert("replication".into(), ctx.obs.repl.json());
    }
    Json::Object(obj).to_string()
}

/// The `plans` stats section: plan-cache counters plus compile/exec
/// latency summaries —
/// `{"cache":{"hits":…,"misses":…,"entries":…},"compile_us":{…},"exec_us":{…}}`.
fn plans_json(ctx: &ConnCtx) -> Json {
    let cs = ctx.plans.stats();
    let mut cache = Map::new();
    cache.insert("hits".into(), Json::from(cs.hits));
    cache.insert("misses".into(), Json::from(cs.misses));
    cache.insert("entries".into(), Json::from(cs.entries));
    let mut obj = Map::new();
    obj.insert("cache".into(), Json::Object(cache));
    if let Json::Object(hists) = ctx.obs.plan.json() {
        for (k, v) in hists {
            obj.insert(k, v);
        }
    }
    Json::Object(obj)
}

/// Fan the `sync` barrier out to every shard and confirm once each has
/// replied — proving every command admitted before the barrier (on any
/// shard, by FIFO queues) has been applied.
fn fan_out_sync(ctx: &ConnCtx, out_tx: &Sender<String>) {
    let mut dones = Vec::with_capacity(ctx.shard_txs.len());
    for tx in &ctx.shard_txs {
        let (dtx, drx) = channel::bounded(1);
        if tx.send(ShardCmd::Sync { done: dtx }).is_err() {
            let _ = out_tx.send(proto::error("server shutting down"));
            return;
        }
        dones.push(drx);
    }
    for drx in dones {
        if drx.recv().is_err() {
            let _ = out_tx.send(proto::error("server shutting down"));
            return;
        }
    }
    let _ = out_tx.send(proto::synced());
}

/// One ingest frame off the wire: a plain event line, or a
/// client-batched `{"op":"ingest","events":[…]}` frame.
enum Frame {
    One(Event),
    Many(Vec<Event>),
}

/// Admit one ingest frame: split it by route, enqueue each part on its
/// shard under the configured backpressure policy, and arrange the
/// ack. A frame is admitted (or shed) atomically: under `Shed`, a
/// frame touching several shards is shed whole if any target queue is
/// full at admission time (the check-then-send window makes this best
/// effort — a frame may block briefly instead of shedding — but a
/// frame is never half-shed). Under durable acks the ack is released
/// by the last touched shard's covering group commit (see
/// [`AckTable`]); otherwise it is sent here, at admit time. Returns
/// `false` when the server is shutting down.
fn ingest(
    ctx: &ConnCtx,
    out_tx: &Sender<String>,
    conn_id: u64,
    frame: Frame,
    last_seq: u64,
) -> bool {
    // One clock read covers the whole admission: the enqueue stamp for
    // `queue_wait_us`, the hold start for `ack_hold_us`, and the
    // front-door `admit_us` sample at the end.
    let t_admit = Instant::now();
    let (evs, ack_line) = match frame {
        Frame::One(ev) => (vec![ev], proto::ack(last_seq)),
        Frame::Many(evs) => {
            let n = evs.len() as u64;
            (evs, proto::ack_batch(last_seq, n))
        }
    };
    let count = evs.len() as u64;
    // Split by route, preserving arrival order within each shard.
    let shards = ctx.shard_txs.len();
    let mut parts: Vec<Vec<Event>> = vec![Vec::new(); shards];
    if shards == 1 {
        parts[0] = evs;
    } else {
        for ev in evs {
            parts[ctx.router.route(&ev) as usize].push(ev);
        }
    }
    let targets: Vec<usize> = (0..shards).filter(|&i| !parts[i].is_empty()).collect();

    let frame_ack = if ctx.durable_acks {
        let f = Arc::new(FrameAck::new(
            conn_id,
            AckSink::Line {
                tx: out_tx.clone(),
                line: ack_line.clone(),
            },
            targets.len(),
        ));
        // Register before any part can be voted on; an empty frame
        // completes immediately (but still queues behind earlier
        // frames' acks).
        ctx.ack_table.register(f.clone());
        Some(f)
    } else {
        None
    };

    // Admission. Single-target frames use an atomic try_send under
    // `Shed` (exactly the unsharded semantics); multi-target frames
    // pre-check fullness so the frame sheds whole or not at all.
    let admitted = if targets.is_empty() {
        true // Empty durable frame: registered above, nothing to send.
    } else {
        let shed_now = ctx.backpressure == Backpressure::Shed
            && targets.len() > 1
            && targets.iter().any(|&i| {
                let tx = &ctx.shard_txs[i];
                tx.capacity().is_some_and(|cap| tx.len() >= cap)
            });
        if shed_now {
            false
        } else {
            let mut ok = true;
            for &i in &targets {
                let part = std::mem::take(&mut parts[i]);
                let max_ts = part.iter().map(|e| e.ts).max();
                let ack = frame_ack.as_ref().map(|f| AckPart {
                    frame: f.clone(),
                    max_ts,
                    admitted: t_admit,
                });
                let cmd = ShardCmd::Ingest {
                    evs: part,
                    acks: ack.into_iter().collect(),
                    enqueued: t_admit,
                };
                let sent = match ctx.backpressure {
                    Backpressure::Shed if targets.len() == 1 => {
                        match ctx.shard_txs[i].try_send(cmd) {
                            Ok(()) => true,
                            Err(TrySendError::Full(_)) => {
                                ok = false;
                                false
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                if let Some(f) = &frame_ack {
                                    ctx.ack_table.unregister_last(f);
                                }
                                let _ = out_tx.send(proto::error("server shutting down"));
                                return false;
                            }
                        }
                    }
                    _ => {
                        if ctx.shard_txs[i].send(cmd).is_err() {
                            if let Some(f) = &frame_ack {
                                ctx.ack_table.unregister_last(f);
                            }
                            let _ = out_tx.send(proto::error("server shutting down"));
                            return false;
                        }
                        true
                    }
                };
                if sent {
                    let depth = ctx.shard_txs[i].len() as u64;
                    // Server-level HWM (max across shards) and this
                    // shard's own depth/HWM (`gauges.queue_hwm`).
                    ctx.metrics.observe_queue_depth(depth);
                    ctx.obs.shards[i].observe_queue_depth(depth);
                }
            }
            ok
        }
    };

    if admitted {
        ctx.metrics.events.fetch_add(count, Ordering::Relaxed);
        if ctx.durable_acks {
            // Counted only once the frame actually entered the queues —
            // a shed frame's ack was never deferred, it never existed.
            ctx.metrics.acks_deferred.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = out_tx.send(ack_line);
        }
    } else {
        // Shed the whole frame (only reachable under `Shed`, and only
        // before any part was sent — single-target try_send, or the
        // multi-target pre-check).
        if let Some(f) = &frame_ack {
            ctx.ack_table.unregister_last(f);
        }
        ctx.metrics.shed.fetch_add(count, Ordering::Relaxed);
        let _ = out_tx.send(proto::shed(last_seq, count));
    }
    ctx.obs
        .admit_us
        .record(t_admit.elapsed().as_micros() as u64);
    true
}

// ----- Prometheus listener --------------------------------------------------

/// Accept loop for the `--metrics-addr` listener. Scrapes are served
/// serially on this one thread: each render is a pass over atomics, so
/// there is nothing worth parallelizing, and a scraper can never
/// amplify into many engine-side threads.
fn metrics_loop(
    listener: TcpListener,
    metrics: Arc<ServerMetrics>,
    obs: Arc<PipelineObs>,
    plans: Arc<PlanCache>,
    shutdown: Arc<AtomicBool>,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        serve_metrics_conn(stream, &metrics, &obs, &plans.stats());
    }
}

/// One minimal HTTP exchange: `GET /metrics` returns the Prometheus
/// text exposition, anything else a 404. Hand-rolled on purpose — no
/// HTTP dependency for one GET route. A read timeout bounds how long a
/// wedged scraper can hold the (single) metrics thread.
fn serve_metrics_conn(
    stream: TcpStream,
    metrics: &ServerMetrics,
    obs: &PipelineObs,
    plans: &CacheStats,
) {
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the headers; the reply does not depend on any of them.
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut w = BufWriter::new(stream);
    if method == "GET" && path.trim_end_matches('/') == "/metrics" {
        let body = crate::prom::render_prometheus(metrics, obs, plans);
        let _ = write!(
            w,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
    } else {
        let body = "not found; try GET /metrics\n";
        let _ = write!(
            w,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
    }
    let _ = w.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(stream: &TcpStream) -> impl Iterator<Item = String> + '_ {
        BufReader::new(stream.try_clone().unwrap())
            .lines()
            .map_while(|l| l.ok())
    }

    #[test]
    fn stats_shutdown_round_trip() {
        let mut handle = Server::start(ServerConfig::new("127.0.0.1:0")).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);

        writeln!(input, r#"{{"stream":"s","ts":1,"x":2}}"#).unwrap();
        let ack = rx.next().unwrap();
        assert!(ack.contains(r#""seq":1"#), "got: {ack}");

        writeln!(input, r#"{{"cmd":"stats"}}"#).unwrap();
        let stats = rx.next().unwrap();
        let v: serde_json::Value = serde_json::from_str(&stats).unwrap();
        assert!(v.get("engine").is_some() && v.get("server").is_some());

        writeln!(input, r#"{{"cmd":"shutdown"}}"#).unwrap();
        let bye = rx.next().unwrap();
        assert!(bye.contains("bye"), "got: {bye}");
        handle.join();
    }

    #[test]
    fn wal_restart_recovers_state_and_rotates_segments() {
        let dir = std::env::temp_dir().join(format!("fenestra-srv-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("state.json");
        let wal = dir.join("log");
        let config = || {
            ServerConfig::new("127.0.0.1:0")
                .snapshot_path(&snap)
                .wal_path(&wal)
                .setup(|engine| {
                    engine.declare_attr("room", fenestra_temporal::AttrSchema::one());
                    engine
                        .add_rules_text("rule mv:\n on s\n replace $(visitor).room = room")
                        .unwrap();
                })
        };

        let mut handle = Server::start(config()).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);
        for ts in 1..=5 {
            writeln!(
                input,
                r#"{{"stream":"s","ts":{ts},"visitor":"v{ts}","room":"lab"}}"#
            )
            .unwrap();
            assert!(rx.next().unwrap().contains(r#""ok":true"#));
        }
        writeln!(input, r#"{{"cmd":"shutdown"}}"#).unwrap();
        rx.next().unwrap();
        handle.join();
        // Shutdown checkpointed: snapshot exists, gen 0 rotated away.
        assert!(snap.exists());
        assert!(!segment_path(&wal, 0).exists());

        // Restart over the same state directory and query it.
        let mut handle = Server::start(config()).unwrap();
        assert!(
            handle.metrics().recovered_ops.load(Ordering::Relaxed) > 0,
            "restart must replay the snapshot"
        );
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);
        writeln!(
            input,
            r#"{{"cmd":"query","q":"select ?v where {{ ?v room \"lab\" }}"}}"#
        )
        .unwrap();
        let reply = rx.next().unwrap();
        for v in ["v1", "v2", "v3", "v4", "v5"] {
            assert!(reply.contains(v), "missing {v} in: {reply}");
        }
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_lines_get_errors_not_disconnects() {
        let mut handle = Server::start(ServerConfig::new("127.0.0.1:0")).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);

        writeln!(input, "this is not json").unwrap();
        assert!(rx.next().unwrap().contains(r#""ok":false"#));
        writeln!(input, r#"{{"cmd":"nope"}}"#).unwrap();
        assert!(rx.next().unwrap().contains("unknown command"));
        // Connection still works afterwards.
        writeln!(input, r#"{{"stream":"s","ts":1}}"#).unwrap();
        assert!(rx.next().unwrap().contains(r#""ok":true"#));

        handle.shutdown();
    }

    #[test]
    fn sharded_server_spreads_events_and_merges_queries() {
        let dir = std::env::temp_dir().join(format!("fenestra-srv-shards-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("state.json");
        let wal = dir.join("log");
        let config = || {
            ServerConfig::new("127.0.0.1:0")
                .shards(4)
                .snapshot_path(&snap)
                .wal_path(&wal)
                .setup(|engine| {
                    engine
                        .add_rules_text("rule mv:\n on s\n replace $(visitor).room = room")
                        .unwrap();
                })
        };

        let mut handle = Server::start(config()).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);
        for ts in 1..=16 {
            writeln!(
                input,
                r#"{{"stream":"s","ts":{ts},"visitor":"v{ts}","room":"lab"}}"#
            )
            .unwrap();
            assert!(rx.next().unwrap().contains(r#""ok":true"#));
        }
        // Fan-out select sees every entity regardless of its shard.
        writeln!(
            input,
            r#"{{"cmd":"query","q":"select ?v where {{ ?v room \"lab\" }}"}}"#
        )
        .unwrap();
        let reply = rx.next().unwrap();
        for v in (1..=16).map(|i| format!("v{i}")) {
            assert!(reply.contains(&v), "missing {v} in: {reply}");
        }
        // Count merges globally, not per shard.
        writeln!(
            input,
            r#"{{"cmd":"query","q":"select count ?v where {{ ?v room \"lab\" }}"}}"#
        )
        .unwrap();
        let reply = rx.next().unwrap();
        assert!(reply.contains(r#""count":16"#), "got: {reply}");
        // Stats aggregate across shards and break them out.
        writeln!(input, r#"{{"cmd":"stats"}}"#).unwrap();
        let stats = rx.next().unwrap();
        let v: serde_json::Value = serde_json::from_str(&stats).unwrap();
        let shard_events = |s: &Json| {
            s.get("engine")
                .and_then(|e| e.get("events"))
                .and_then(Json::as_u64)
        };
        assert_eq!(shard_events(&v), Some(16), "got: {stats}");
        let shards = v.get("shards").and_then(Json::as_array).unwrap();
        assert_eq!(shards.len(), 4);
        let spread: u64 = shards.iter().map(|s| shard_events(s).unwrap()).sum();
        assert_eq!(spread, 16);
        assert!(
            shards.iter().filter(|s| shard_events(s) > Some(0)).count() > 1,
            "16 distinct keys should span more than one shard: {stats}"
        );

        writeln!(input, r#"{{"cmd":"shutdown"}}"#).unwrap();
        assert!(rx.next().unwrap().contains("bye"));
        handle.join();
        // Shard-addressed on-disk layout, one snapshot per shard.
        for i in 0..4 {
            assert!(
                shard_snapshot_path(&snap, i).exists(),
                "missing shard {i} snapshot"
            );
        }
        assert!(!snap.exists(), "no legacy snapshot in sharded mode");

        // Restarting with a contradicting shard count is refused.
        let err = Server::start(
            ServerConfig::new("127.0.0.1:0")
                .shards(2)
                .snapshot_path(&snap)
                .wal_path(&wal),
        );
        assert!(err.is_err(), "shard-count mismatch must be rejected");

        // Restarting with the matching count recovers everything.
        let mut handle = Server::start(config()).unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);
        writeln!(
            input,
            r#"{{"cmd":"query","q":"select count ?v where {{ ?v room \"lab\" }}"}}"#
        )
        .unwrap();
        assert!(rx.next().unwrap().contains(r#""count":16"#));
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cross_entity_rules_are_rejected_at_startup_when_sharded() {
        let err = Server::start(ServerConfig::new("127.0.0.1:0").shards(4).setup(|engine| {
            engine
                .add_rules_text("rule pin:\n on s\n replace @global.last = visitor")
                .unwrap();
        }));
        let msg = match err {
            Err(e) => e.to_string(),
            Ok(_) => panic!("fixed-entity rule must be rejected with --shards 4"),
        };
        assert!(msg.contains("--shards 1"), "no remedy in: {msg}");
    }

    #[test]
    fn shutdown_mid_batch_leaves_no_ack_hanging() {
        // Satellite: deterministic drain under sharding. Durable acks
        // (`--fsync always` + WAL) with a lateness bound hold acks in
        // the reorder buffer; a shutdown arriving mid-stream must
        // release every one of them (covered by the final checkpoint)
        // before the bye — none hanging, per-connection order intact.
        let dir = std::env::temp_dir().join(format!("fenestra-srv-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let engine_cfg = fenestra_core::EngineConfig {
            max_lateness: Duration::millis(60_000),
            ..Default::default()
        };
        let mut handle = Server::start(
            ServerConfig::new("127.0.0.1:0")
                .shards(4)
                .engine(engine_cfg)
                .snapshot_path(dir.join("state.json"))
                .wal_path(dir.join("log"))
                .setup(|engine| {
                    engine
                        .add_rules_text("rule mv:\n on s\n replace $(visitor).room = room")
                        .unwrap();
                }),
        )
        .unwrap();
        let stream = TcpStream::connect(handle.local_addr()).unwrap();
        let mut input = stream.try_clone().unwrap();
        let mut rx = lines(&stream);
        // A multi-shard batch frame plus single events, all of which
        // sit in reorder buffers (lateness 60s, no watermark advance):
        // every ack is held when the shutdown arrives.
        writeln!(
            input,
            r#"{{"op":"ingest","events":[{{"stream":"s","ts":1000,"visitor":"a","room":"r"}},{{"stream":"s","ts":1001,"visitor":"b","room":"r"}},{{"stream":"s","ts":1002,"visitor":"c","room":"r"}},{{"stream":"s","ts":1003,"visitor":"d","room":"r"}}]}}"#
        )
        .unwrap();
        for ts in 2000..2006 {
            writeln!(
                input,
                r#"{{"stream":"s","ts":{ts},"visitor":"v{ts}","room":"r"}}"#
            )
            .unwrap();
        }
        writeln!(input, r#"{{"cmd":"shutdown"}}"#).unwrap();
        // Exactly 7 acks (batch + 6 singles), in admission order, all
        // before the bye.
        let batch_ack = rx.next().unwrap();
        assert!(
            batch_ack.contains(r#""seq":4"#) && batch_ack.contains(r#""count":4"#),
            "got: {batch_ack}"
        );
        for seq in 5..=10 {
            let ack = rx.next().unwrap();
            assert!(
                ack.contains(r#""ok":true"#) && ack.contains(&format!(r#""seq":{seq}"#)),
                "seq {seq} got: {ack}"
            );
        }
        let bye = rx.next().unwrap();
        assert!(bye.contains("bye"), "got: {bye}");
        assert!(rx.next().is_none(), "no lines after bye");
        handle.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
