//! Server configuration.

use fenestra_base::time::Duration;
use fenestra_core::{Engine, EngineConfig};
use fenestra_temporal::FsyncPolicy;
use std::path::PathBuf;

/// Engine initialization hook (see [`ServerConfig::setup`]). Runs once
/// per shard engine, so it must be `Fn`, not `FnOnce`: every shard
/// needs the same attributes, rules, and watches.
pub type SetupFn = Box<dyn Fn(&mut Engine) + Send + Sync>;

/// What to do when the ingest queue is full and a connection keeps
/// sending events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Block the sending connection until the engine catches up
    /// (lossless; slow consumers slow their producers).
    #[default]
    Block,
    /// Drop the event, count it, and tell the client
    /// (`{"ok":false,"seq":N,"error":"shed: …"}`).
    Shed,
}

/// Configuration for [`crate::Server::start`].
pub struct ServerConfig {
    /// Listen address, e.g. `"127.0.0.1:7878"`. Use port `0` for an
    /// ephemeral port (tests); the bound address is available from
    /// [`crate::ServerHandle::local_addr`].
    pub addr: String,
    /// Ingest command queue capacity (events admitted but not yet
    /// applied by the engine thread).
    pub queue_capacity: usize,
    /// Policy when the ingest queue is full.
    pub backpressure: Backpressure,
    /// Ingest group-commit cap: after taking one ingest command off the
    /// queue, the engine thread greedily drains up to this many events
    /// into one batch — applied together, appended to the WAL as one
    /// frame, fsynced once, watches polled once. A batch *frame* larger
    /// than the cap is still applied whole (frames are atomic); the cap
    /// bounds coalescing across commands.
    pub batch_max: usize,
    /// If set, the engine state is persisted here (JSON snapshot via
    /// `fenestra_temporal::persist`) on graceful shutdown and, when
    /// [`ServerConfig::snapshot_every`] is also set, periodically.
    pub snapshot_path: Option<PathBuf>,
    /// Periodic snapshot interval (requires `snapshot_path`).
    pub snapshot_every: Option<Duration>,
    /// Engine configuration (semantics, lateness bound, retention…).
    pub engine: EngineConfig,
    /// One-shot hook run against the engine before the listener opens:
    /// declare attributes, load rules, pre-register watches.
    pub setup: Option<SetupFn>,
    /// If set, every applied op batch is appended to a durable
    /// write-ahead log rooted at this path (segments are
    /// `<path>.<generation>`). On boot the server recovers from the
    /// latest snapshot plus the WAL tail; on snapshot the log rotates.
    pub wal_path: Option<PathBuf>,
    /// Fsync policy for the durable WAL (ignored without
    /// [`ServerConfig::wal_path`]). `Always` is the only policy under
    /// which an ack implies the transition survives a crash.
    pub fsync: FsyncPolicy,
    /// Number of keyed engine shards. Events route to a shard by a
    /// deterministic hash of their entity key (the field the stream's
    /// rules name entities by); each shard runs on its own thread with
    /// its own state partition and — with [`ServerConfig::wal_path`] —
    /// its own WAL segments and snapshot file. `1` (the default) is
    /// byte-identical to the unsharded server, including the on-disk
    /// layout; restarting with a different count than the on-disk
    /// state was written with is rejected at startup.
    pub shards: u32,
    /// If set, closed history older than this horizon behind each
    /// shard's latest applied event is garbage-collected on the
    /// snapshot thread's cadence (or, without
    /// [`ServerConfig::snapshot_every`], on its own ticker at this
    /// interval). Reclaimed facts are counted in the `gc_removed`
    /// server stat.
    pub gc_horizon: Option<Duration>,
    /// If set, a second listener serves Prometheus text exposition at
    /// `GET /metrics` on this address (e.g. `"127.0.0.1:9100"`).
    /// Scrapes read atomics only — they never enqueue through the
    /// ingest path. Port `0` binds an ephemeral port (tests); the
    /// bound address is [`crate::ServerHandle::metrics_addr`].
    pub metrics_addr: Option<String>,
    /// If set, any shard ingest command whose apply + WAL commit takes
    /// at least this many milliseconds is logged as one structured
    /// JSONL line on stderr (`{"slow_op":…}`), for tail-latency
    /// forensics without a debugger attached.
    pub slow_ms: Option<u64>,
    /// If set, a replication listener on this address streams committed
    /// WAL segments (and bootstrap snapshots) to warm followers.
    /// Requires [`ServerConfig::wal_path`]: followers tail the on-disk
    /// segments, so there must be some.
    pub replicate_addr: Option<String>,
    /// If set, this server boots as a warm follower of the leader at
    /// this address (`HOST:PORT` of the leader's
    /// [`ServerConfig::replicate_addr`] listener). Followers serve
    /// queries and watches but reject ingest with a redirect error;
    /// promotion (`{"cmd":"promote"}` or
    /// [`ServerConfig::promote_after`]) turns one into a leader.
    /// Requires both [`ServerConfig::wal_path`] and
    /// [`ServerConfig::snapshot_path`].
    pub follow: Option<String>,
    /// If set on a follower, losing contact with the leader for this
    /// long triggers automatic promotion (fenced failover). Off by
    /// default: unattended promotion can split-brain a partitioned
    /// leader, so it is strictly opt-in.
    pub promote_after: Option<Duration>,
    /// Synchronous ack mode: a held durable ack is released only after
    /// the local group-commit fsync **and** at least this many
    /// followers have acked (applied + fsynced) the covering per-shard
    /// WAL bytes. `0` (the default) is today's asynchronous behavior —
    /// an ack means "fsynced on the leader". Requires
    /// [`ServerConfig::replicate_addr`], [`ServerConfig::wal_path`],
    /// and `--fsync always` (durable acks must be on for there to be a
    /// held ack to gate).
    pub sync_replicas: u32,
    /// How long a sync-mode ack may wait for replica coverage before
    /// degrading (see [`ServerConfig::sync_fallback`]).
    pub sync_timeout: Duration,
    /// What a sync-mode ack does when [`ServerConfig::sync_timeout`]
    /// expires without coverage: `false` (default) fails the ack with a
    /// distinct error (the events are durable locally but the client
    /// knows replication did not confirm), `true` releases it on local
    /// durability alone and counts the degradation in
    /// `sync_acks_fallback`.
    pub sync_fallback: bool,
    /// Upper bound on a single wire frame (`--max-frame-bytes`,
    /// default 8 MiB): the payload of a binary frame, or the length of
    /// a JSONL request line. An oversized frame gets a structured wire
    /// error instead of unbounded buffer growth — the binary plane
    /// closes the connection (framing is lost past a refused length
    /// prefix), the JSONL plane skips to the next newline and keeps
    /// serving.
    pub max_frame_bytes: usize,
    /// Reactor (event-loop) threads multiplexing the accept path and
    /// every binary-plane connection. `0` (default) auto-sizes to
    /// `min(4, available cores)`. JSONL connections still get their
    /// own thread after plane detection.
    pub reactors: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            queue_capacity: 1024,
            backpressure: Backpressure::default(),
            batch_max: 512,
            snapshot_path: None,
            snapshot_every: None,
            engine: EngineConfig::default(),
            setup: None,
            wal_path: None,
            fsync: FsyncPolicy::Always,
            shards: 1,
            gc_horizon: None,
            metrics_addr: None,
            slow_ms: None,
            replicate_addr: None,
            follow: None,
            promote_after: None,
            sync_replicas: 0,
            sync_timeout: Duration::millis(1000),
            sync_fallback: false,
            max_frame_bytes: fenestra_wire::binary::DEFAULT_MAX_FRAME,
            reactors: 0,
        }
    }
}

impl ServerConfig {
    /// Config listening on `addr` with defaults elsewhere.
    pub fn new(addr: impl Into<String>) -> ServerConfig {
        ServerConfig {
            addr: addr.into(),
            ..ServerConfig::default()
        }
    }

    /// Set the ingest queue capacity.
    pub fn queue_capacity(mut self, cap: usize) -> ServerConfig {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Set the backpressure policy.
    pub fn backpressure(mut self, bp: Backpressure) -> ServerConfig {
        self.backpressure = bp;
        self
    }

    /// Cap the number of events coalesced into one ingest group commit.
    pub fn batch_max(mut self, cap: usize) -> ServerConfig {
        self.batch_max = cap.max(1);
        self
    }

    /// Persist state to `path` on shutdown (and periodically, if
    /// [`ServerConfig::snapshot_every`] is set).
    pub fn snapshot_path(mut self, path: impl Into<PathBuf>) -> ServerConfig {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Snapshot every `every` (wall-clock), in addition to at shutdown.
    pub fn snapshot_every(mut self, every: Duration) -> ServerConfig {
        self.snapshot_every = Some(every);
        self
    }

    /// Set the engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> ServerConfig {
        self.engine = engine;
        self
    }

    /// Run `f` against every shard engine before the listener opens.
    pub fn setup(mut self, f: impl Fn(&mut Engine) + Send + Sync + 'static) -> ServerConfig {
        self.setup = Some(Box::new(f));
        self
    }

    /// Partition the engine into `n` keyed shards (clamped to ≥ 1).
    pub fn shards(mut self, n: u32) -> ServerConfig {
        self.shards = n.max(1);
        self
    }

    /// GC closed history older than `horizon` behind each shard's
    /// latest applied event.
    pub fn gc_horizon(mut self, horizon: Duration) -> ServerConfig {
        self.gc_horizon = Some(horizon);
        self
    }

    /// Append applied ops to a durable WAL rooted at `path` and recover
    /// from it on boot.
    pub fn wal_path(mut self, path: impl Into<PathBuf>) -> ServerConfig {
        self.wal_path = Some(path.into());
        self
    }

    /// Set the WAL fsync policy (requires [`ServerConfig::wal_path`]).
    pub fn fsync(mut self, policy: FsyncPolicy) -> ServerConfig {
        self.fsync = policy;
        self
    }

    /// Serve Prometheus text exposition at `GET /metrics` on `addr`.
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Log shard ingest commands slower than `ms` milliseconds
    /// (apply + WAL commit) as JSONL on stderr.
    pub fn slow_ms(mut self, ms: u64) -> ServerConfig {
        self.slow_ms = Some(ms);
        self
    }

    /// Stream committed WAL segments to followers connecting on `addr`
    /// (requires [`ServerConfig::wal_path`]).
    pub fn replicate_addr(mut self, addr: impl Into<String>) -> ServerConfig {
        self.replicate_addr = Some(addr.into());
        self
    }

    /// Boot as a warm follower of the leader replicating on `addr`
    /// (requires [`ServerConfig::wal_path`] and
    /// [`ServerConfig::snapshot_path`]).
    pub fn follow(mut self, addr: impl Into<String>) -> ServerConfig {
        self.follow = Some(addr.into());
        self
    }

    /// Auto-promote a follower after `timeout` without leader contact.
    pub fn promote_after(mut self, timeout: Duration) -> ServerConfig {
        self.promote_after = Some(timeout);
        self
    }

    /// Hold durable acks until `n` followers have acked the covering
    /// WAL bytes (requires [`ServerConfig::replicate_addr`], a WAL,
    /// and `--fsync always`).
    pub fn sync_replicas(mut self, n: u32) -> ServerConfig {
        self.sync_replicas = n;
        self
    }

    /// Bound how long a sync-mode ack waits for replica coverage.
    pub fn sync_timeout(mut self, timeout: Duration) -> ServerConfig {
        self.sync_timeout = timeout;
        self
    }

    /// On sync timeout, release the ack on local durability alone
    /// (counted) instead of failing it.
    pub fn sync_fallback(mut self) -> ServerConfig {
        self.sync_fallback = true;
        self
    }

    /// Cap a single wire frame (binary payload or JSONL line) at
    /// `bytes` (clamped to ≥ 1 KiB so replies still fit).
    pub fn max_frame_bytes(mut self, bytes: usize) -> ServerConfig {
        self.max_frame_bytes = bytes.max(1024);
        self
    }

    /// Use `n` reactor threads for the accept path and binary
    /// connections (`0` = auto-size).
    pub fn reactors(mut self, n: usize) -> ServerConfig {
        self.reactors = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = ServerConfig::new("127.0.0.1:0")
            .queue_capacity(0)
            .batch_max(0)
            .backpressure(Backpressure::Shed)
            .snapshot_path("/tmp/x.json")
            .snapshot_every(Duration::secs(30))
            .wal_path("/tmp/x.wal")
            .fsync(FsyncPolicy::EveryN(8))
            .shards(0)
            .gc_horizon(Duration::secs(60))
            .metrics_addr("127.0.0.1:0")
            .slow_ms(25)
            .replicate_addr("127.0.0.1:0")
            .follow("127.0.0.1:9999")
            .promote_after(Duration::secs(5))
            .sync_replicas(2)
            .sync_timeout(Duration::millis(250))
            .sync_fallback()
            .max_frame_bytes(0)
            .reactors(2);
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.max_frame_bytes, 1024, "frame cap clamps to 1 KiB");
        assert_eq!(cfg.reactors, 2);
        assert_eq!(cfg.sync_replicas, 2);
        assert_eq!(cfg.sync_timeout, Duration::millis(250));
        assert!(cfg.sync_fallback);
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.slow_ms, Some(25));
        assert_eq!(cfg.replicate_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(cfg.follow.as_deref(), Some("127.0.0.1:9999"));
        assert_eq!(cfg.promote_after, Some(Duration::secs(5)));
        assert_eq!(cfg.shards, 1, "shard count clamps to at least 1");
        assert_eq!(cfg.gc_horizon, Some(Duration::secs(60)));
        assert_eq!(cfg.queue_capacity, 1, "capacity clamps to at least 1");
        assert_eq!(cfg.batch_max, 1, "batch cap clamps to at least 1");
        assert_eq!(cfg.backpressure, Backpressure::Shed);
        assert!(cfg.snapshot_path.is_some() && cfg.snapshot_every.is_some());
        assert!(cfg.wal_path.is_some());
        assert_eq!(cfg.fsync, FsyncPolicy::EveryN(8));
    }

    #[test]
    fn wal_defaults_off_but_fsync_always() {
        let cfg = ServerConfig::default();
        assert!(cfg.wal_path.is_none(), "durable WAL is opt-in");
        assert_eq!(cfg.shards, 1, "sharding is opt-in (legacy layout)");
        assert!(cfg.gc_horizon.is_none(), "GC is opt-in");
        assert!(cfg.metrics_addr.is_none(), "metrics endpoint is opt-in");
        assert!(cfg.slow_ms.is_none(), "slow-op log is opt-in");
        assert!(cfg.replicate_addr.is_none(), "replication is opt-in");
        assert!(cfg.follow.is_none(), "follower mode is opt-in");
        assert!(cfg.promote_after.is_none(), "auto-promotion is opt-in");
        assert_eq!(cfg.sync_replicas, 0, "sync acks are opt-in (async default)");
        assert_eq!(cfg.sync_timeout, Duration::millis(1000));
        assert!(!cfg.sync_fallback, "sync timeout fails the ack by default");
        assert_eq!(cfg.batch_max, 512, "group commit is on by default");
        assert_eq!(cfg.max_frame_bytes, 8 * 1024 * 1024, "8 MiB frame cap");
        assert_eq!(cfg.reactors, 0, "reactor pool auto-sizes by default");
        assert_eq!(
            cfg.fsync,
            FsyncPolicy::Always,
            "when the WAL is enabled, durability defaults to strict"
        );
    }
}
