//! The epoll front door: a small pool of event-loop threads that owns
//! the listener and every binary-plane connection.
//!
//! # Why an event loop
//!
//! The original front door spawned two threads per connection — one
//! reader, one writer. At a handful of clients that is fine; at hundreds the
//! box spends its time context-switching instead of ingesting —
//! especially on small machines, where scheduler churn shows up
//! directly as `queue_wait_us`. The reactor replaces the per-connection
//! *reader* threads for the binary plane with `--reactors` event-loop
//! threads (default: `min(4, cores)`), each running one `epoll(7)`
//! instance over nonblocking sockets. Acks, errors, and sync replies
//! are written from the same loop through per-connection buffers, so a
//! binary connection costs two buffers and a table entry instead of
//! two stacks.
//!
//! # Plane detection
//!
//! Every accepted socket starts in the *detect* state. The reactor
//! buffers bytes until it can classify the first four: exactly
//! [`binary::MAGIC`] selects the binary plane (framed record batches,
//! decoded zero-copy out of the connection's read buffer); anything
//! else — JSONL requests always start with `{` — hands the socket,
//! buffered bytes included, to a classic per-connection thread running
//! the unchanged JSONL loop. Existing clients never notice the
//! reactor exists.
//!
//! # Invariants
//!
//! The reactor threads never block: socket IO is nonblocking, shard
//! hand-off uses `try_send` (a full queue under
//! [`Backpressure::Block`] *parks* the remaining parts on the
//! connection and retries on a short tick, with read interest dropped
//! so the client is backpressured through TCP), and the sync barrier
//! is awaited on an ephemeral helper thread. Ack ordering rules are
//! identical to the JSONL plane: held acks release in per-connection
//! FIFO order via the shared [`AckTable`](crate::server); a frame is
//! never half-shed.

use crate::config::Backpressure;
use crate::server::{AckPart, AckSink, ConnCtx, FrameAck, ShardCmd};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use fenestra_base::error::{Error, Result};
use fenestra_base::record::Event;
use fenestra_base::time::Timestamp;
use fenestra_wire::binary::{self, Frame, FrameStatus, HEADER_LEN, MAGIC};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

// ----- raw epoll / eventfd --------------------------------------------------

/// Hand-rolled bindings for the five syscalls the reactor needs. The
/// workspace is hermetic (no `libc` crate), but std already links
/// libc; declaring the symbols directly is the same trick the daemon
/// uses for signal handling.
mod sys {
    /// Mirror of `struct epoll_event`. The kernel ABI packs it on
    /// x86_64 only.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;
}

/// An `eventfd(2)` used to pull a reactor out of `epoll_wait` when
/// another thread queued outbound bytes (held acks resolve on shard
/// threads) or handed it a fresh connection.
pub(crate) struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    fn new() -> Result<WakeFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_NONBLOCK | sys::EFD_CLOEXEC) };
        if fd < 0 {
            return Err(Error::Io(format!(
                "eventfd: {}",
                std::io::Error::last_os_error()
            )));
        }
        Ok(WakeFd { fd })
    }

    /// Nudge the owning reactor. Never blocks; a saturated counter
    /// still reads as ready.
    pub(crate) fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        unsafe {
            let _ = sys::write(self.fd, one.as_ptr(), one.len());
        }
    }

    /// Reset the counter so the next `epoll_wait` sleeps again.
    fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            let _ = sys::read(self.fd, buf.as_mut_ptr(), buf.len());
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// Thin RAII wrapper over one epoll instance.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(Error::Io(format!(
                "epoll_create1: {}",
                std::io::Error::last_os_error()
            )));
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, events: u32) {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        unsafe {
            let _ = sys::epoll_ctl(self.fd, op, fd, &mut ev);
        }
    }

    fn add(&self, fd: RawFd, token: u64, events: u32) {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, events);
    }

    fn modify(&self, fd: RawFd, token: u64, events: u32) {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, events);
    }

    fn del(&self, fd: RawFd) {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait up to `timeout_ms` (-1 = forever) and fill `out`. EINTR
    /// reads as an empty wakeup.
    fn wait(&self, out: &mut [sys::EpollEvent], timeout_ms: i32) -> usize {
        let n = unsafe { sys::epoll_wait(self.fd, out.as_mut_ptr(), out.len() as i32, timeout_ms) };
        if n < 0 {
            0
        } else {
            n as usize
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

// ----- outbound hand-off ----------------------------------------------------

/// Address of one reactor-owned connection, cloneable into
/// [`AckSink::Bin`] and the sync helper thread: bytes sent here are
/// queued on the connection's write buffer the next time its reactor
/// spins (the eventfd makes that immediate).
#[derive(Clone)]
pub(crate) struct OutHandle {
    tx: Sender<(u64, Vec<u8>)>,
    wake: Arc<WakeFd>,
    token: u64,
}

impl OutHandle {
    /// Queue `bytes` for this connection and wake its reactor.
    pub(crate) fn send(&self, bytes: Vec<u8>) {
        if self.tx.send((self.token, bytes)).is_ok() {
            self.wake.wake();
        }
    }
}

// ----- the pool -------------------------------------------------------------

/// Epoll data tokens reserved for non-connection fds. Connection ids
/// count up from zero and can never collide.
const TOKEN_WAKE: u64 = u64::MAX;
const TOKEN_LISTEN: u64 = u64::MAX - 1;

/// How much to read per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;

/// One reactor's hand-off lanes, held by the accepting reactor.
struct PeerLane {
    conn_tx: Sender<(TcpStream, u64)>,
    wake: Arc<WakeFd>,
}

/// The running reactor pool; joined by
/// [`ServerHandle::join`](crate::ServerHandle::join).
pub(crate) struct ReactorPool {
    pub(crate) threads: Vec<JoinHandle<()>>,
}

/// Resolve `--reactors 0` to the auto default.
pub(crate) fn auto_reactors(configured: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4)
}

/// Start `n` reactors; reactor 0 owns `listener` and deals accepted
/// connections round-robin across the pool.
pub(crate) fn start(listener: TcpListener, ctx: Arc<ConnCtx>, n: usize) -> Result<ReactorPool> {
    let n = n.max(1);
    listener.set_nonblocking(true)?;
    let mut wakes = Vec::with_capacity(n);
    let mut conn_lanes = Vec::with_capacity(n);
    for _ in 0..n {
        wakes.push(Arc::new(WakeFd::new()?));
        conn_lanes.push(channel::unbounded::<(TcpStream, u64)>());
    }
    let peers: Vec<PeerLane> = conn_lanes
        .iter()
        .zip(&wakes)
        .map(|((tx, _), wake)| PeerLane {
            conn_tx: tx.clone(),
            wake: wake.clone(),
        })
        .collect();
    let mut threads = Vec::with_capacity(n);
    let mut listener = Some(listener);
    let mut peers = Some(peers);
    for (id, (_, conn_rx)) in conn_lanes.into_iter().enumerate() {
        let (out_tx, out_rx) = channel::unbounded::<(u64, Vec<u8>)>();
        let epoll = Epoll::new()?;
        let wake = wakes[id].clone();
        epoll.add(wake.fd, TOKEN_WAKE, sys::EPOLLIN);
        let r = Reactor {
            epoll,
            ctx: ctx.clone(),
            wake,
            out_tx,
            out_rx,
            conn_rx,
            listener: if id == 0 { listener.take() } else { None },
            peers: if id == 0 {
                peers.take().unwrap_or_default()
            } else {
                Vec::new()
            },
            conns: HashMap::new(),
            rr: 0,
        };
        if let Some(l) = &r.listener {
            r.epoll.add(l.as_raw_fd(), TOKEN_LISTEN, sys::EPOLLIN);
        }
        threads.push(
            thread::Builder::new()
                .name(format!("fenestra-reactor-{id}"))
                .spawn(move || run(r))?,
        );
    }
    Ok(ReactorPool { threads })
}

// ----- per-connection state -------------------------------------------------

/// Which protocol the connection speaks (or that we do not know yet).
enum Plane {
    /// First bytes not yet classified.
    Detect,
    /// Negotiated binary: frames decode straight out of `rbuf`.
    Binary,
}

/// One or more ingest frames whose shard hand-off hit a full queue:
/// the unsent parts wait here and retry on the reactor's short tick,
/// with the connection's read interest dropped so no later frame can
/// overtake. Completion bookkeeping mirrors [`Stage`].
struct Parked {
    cmds: VecDeque<(usize, ShardCmd)>,
    /// Total events across the parked frames.
    events: u64,
    /// Immediate (non-durable) acks to emit on completion, in frame
    /// order.
    pending: Vec<(u64, u64)>,
    /// How many durable frames the parked hand-off carries.
    deferred: u64,
    /// Sequence of the last parked frame (for shutdown errors).
    last_seq: u64,
    t_admit: Instant,
}

/// Per-shard staging for one `process_buffer` pass: every `Batch`
/// frame decoded from the read buffer routes into `parts`, and the
/// whole stage flushes as ONE `ShardCmd` per touched shard — at a
/// barrier (a `Sync` frame) or at the end of the pass. Compared to a
/// send per (frame, shard), the shards see the same events arrive in
/// far fewer, far larger parts, so a group commit covers more events
/// at the same queue depth — which is what keeps the fsync count down
/// when the reactor is outnumbered by shard threads. Per-frame ack
/// identity survives coalescing: each frame still registers its own
/// [`FrameAck`] and contributes one [`AckPart`] per shard it touched.
struct Stage {
    parts: Vec<Vec<Event>>,
    acks: Vec<Vec<AckPart>>,
    pending: Vec<(u64, u64)>,
    deferred: u64,
    events: u64,
    last_seq: u64,
    /// When the first frame of the pass was decoded (the `admit_us`
    /// stage spans staging + flush).
    t_first: Option<Instant>,
}

impl Stage {
    fn new(shards: usize) -> Stage {
        Stage {
            parts: vec![Vec::new(); shards],
            acks: (0..shards).map(|_| Vec::new()).collect(),
            pending: Vec::new(),
            deferred: 0,
            events: 0,
            last_seq: 0,
            t_first: None,
        }
    }

    fn is_empty(&self) -> bool {
        self.events == 0 && self.deferred == 0 && self.pending.is_empty()
    }
}

/// One reactor-owned connection.
struct Conn {
    stream: TcpStream,
    token: u64,
    plane: Plane,
    /// Unconsumed inbound bytes; frames decode from the front.
    rbuf: Vec<u8>,
    /// Outbound bytes not yet accepted by the kernel.
    wbuf: Vec<u8>,
    /// Running per-connection event sequence (mirrors the JSONL
    /// plane's `seq`): the ack for a batch carries the sequence
    /// number of its last event.
    seq: u64,
    parked: Option<Parked>,
    /// Read returned EOF; the connection lingers until its write
    /// buffer and held acks drain.
    peer_closed: bool,
    /// Protocol violation (lost framing): stop reading, flush what is
    /// queued, then drop.
    closing: bool,
    /// Interest mask currently registered with epoll.
    armed: u32,
}

impl Conn {
    fn wants_read(&self) -> bool {
        !self.peer_closed && !self.closing && self.parked.is_none()
    }
}

struct Reactor {
    epoll: Epoll,
    ctx: Arc<ConnCtx>,
    wake: Arc<WakeFd>,
    out_tx: Sender<(u64, Vec<u8>)>,
    out_rx: Receiver<(u64, Vec<u8>)>,
    conn_rx: Receiver<(TcpStream, u64)>,
    /// Reactor 0 only.
    listener: Option<TcpListener>,
    /// Reactor 0 only: hand-off lanes to every reactor (index 0 =
    /// itself, unused).
    peers: Vec<PeerLane>,
    conns: HashMap<u64, Conn>,
    /// Round-robin cursor for dealing connections to the pool.
    rr: usize,
}

/// What to do with a connection after processing its buffer.
enum After {
    Keep,
    /// Framing lost or shard channels gone: flush, then drop.
    Close,
    /// First bytes are not the binary magic: replay them into a
    /// classic JSONL connection thread.
    Handoff,
}

fn run(mut r: Reactor) {
    let mut evbuf = vec![sys::EpollEvent { events: 0, data: 0 }; 128];
    loop {
        let any_parked = r.conns.values().any(|c| c.parked.is_some());
        // Parked frames retry on a 1ms tick; otherwise the 200ms tick
        // only backstops a lost wakeup.
        let timeout = if any_parked { 1 } else { 200 };
        let n = r.epoll.wait(&mut evbuf, timeout);
        for ev in evbuf.iter().take(n).copied() {
            let (bits, token) = (ev.events, ev.data);
            match token {
                TOKEN_WAKE => r.wake.drain(),
                TOKEN_LISTEN => accept_ready(&mut r),
                token => conn_ready(&mut r, token, bits),
            }
        }
        drain_new_conns(&mut r);
        drain_outbound(&mut r);
        retry_parked(&mut r);
        if r.ctx.shutdown.load(Ordering::SeqCst) {
            shutdown_reactor(&mut r);
            return;
        }
    }
}

/// Accept until the listener would block, dealing connections across
/// the pool.
fn accept_ready(r: &mut Reactor) {
    loop {
        let Some(listener) = &r.listener else { return };
        match listener.accept() {
            Ok((stream, _)) => {
                if r.ctx.shutdown.load(Ordering::SeqCst) {
                    continue; // Drop it; we are exiting this iteration.
                }
                // The connection counter doubles as the connection id
                // held acks are keyed by (see `FrameAck::conn`).
                let token = r.ctx.metrics.connections.fetch_add(1, Ordering::Relaxed);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                r.ctx.metrics.conns_open.fetch_add(1, Ordering::Relaxed);
                let dest = r.rr % r.peers.len().max(1);
                r.rr += 1;
                if dest == 0 {
                    register_conn(r, stream, token);
                } else {
                    let lane = &r.peers[dest];
                    if lane.conn_tx.send((stream, token)).is_ok() {
                        lane.wake.wake();
                    } else {
                        r.ctx.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

fn register_conn(r: &mut Reactor, stream: TcpStream, token: u64) {
    let fd = stream.as_raw_fd();
    let armed = sys::EPOLLIN | sys::EPOLLRDHUP;
    r.epoll.add(fd, token, armed);
    r.conns.insert(
        token,
        Conn {
            stream,
            token,
            plane: Plane::Detect,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            seq: 0,
            parked: None,
            peer_closed: false,
            closing: false,
            armed,
        },
    );
}

fn drain_new_conns(r: &mut Reactor) {
    while let Ok((stream, token)) = r.conn_rx.try_recv() {
        register_conn(r, stream, token);
    }
}

/// Deliver queued outbound bytes (held acks, sync replies) to their
/// connections. Bytes for a connection that already died are dropped —
/// exactly what happens to a JSONL writer whose socket is gone.
fn drain_outbound(r: &mut Reactor) {
    let mut touched = Vec::new();
    while let Ok((token, bytes)) = r.out_rx.try_recv() {
        if let Some(conn) = r.conns.get_mut(&token) {
            conn.wbuf.extend_from_slice(&bytes);
            if !touched.contains(&token) {
                touched.push(token);
            }
        }
    }
    for token in touched {
        finish_conn_pass(r, token, After::Keep);
    }
}

fn conn_ready(r: &mut Reactor, token: u64, bits: u32) {
    let Some(conn) = r.conns.get_mut(&token) else {
        return;
    };
    if bits & sys::EPOLLERR != 0 {
        close_conn(r, token);
        return;
    }
    let mut after = After::Keep;
    if bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0 && conn.wants_read() {
        after = read_ready(r, token);
    }
    finish_conn_pass(r, token, after);
}

/// Read until the socket would block, processing complete frames as
/// they land. Returns the connection's fate.
fn read_ready(r: &mut Reactor, token: u64) -> After {
    let t0 = Instant::now();
    let ctx = r.ctx.clone();
    let out_tx = r.out_tx.clone();
    let wake = r.wake.clone();
    let Some(conn) = r.conns.get_mut(&token) else {
        return After::Keep;
    };
    let mut after = After::Keep;
    loop {
        let old = conn.rbuf.len();
        conn.rbuf.resize(old + READ_CHUNK, 0);
        let n = match conn.stream.read(&mut conn.rbuf[old..]) {
            Ok(0) => {
                conn.rbuf.truncate(old);
                conn.peer_closed = true;
                0
            }
            Ok(n) => {
                conn.rbuf.truncate(old + n);
                n
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                conn.rbuf.truncate(old);
                break;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {
                conn.rbuf.truncate(old);
                continue;
            }
            Err(_) => {
                conn.rbuf.truncate(old);
                after = After::Close;
                break;
            }
        };
        ctx.metrics.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        after = process_buffer(&ctx, &out_tx, &wake, conn);
        if !matches!(after, After::Keep) || conn.parked.is_some() || conn.peer_closed {
            break;
        }
    }
    // A connection that dies during plane detection still goes through
    // the JSONL thread: it replays the sniffed prefix and reports the
    // same parse error / EOF the old front door would have.
    if conn.peer_closed && matches!(conn.plane, Plane::Detect) && matches!(after, After::Keep) {
        after = After::Handoff;
    }
    ctx.obs
        .reactor_dispatch_us
        .record(t0.elapsed().as_micros() as u64);
    after
}

/// Classify and/or decode whatever `rbuf` holds right now.
fn process_buffer(
    ctx: &Arc<ConnCtx>,
    out_tx: &Sender<(u64, Vec<u8>)>,
    wake: &Arc<WakeFd>,
    conn: &mut Conn,
) -> After {
    if matches!(conn.plane, Plane::Detect) {
        let k = conn.rbuf.len().min(MAGIC.len());
        if conn.rbuf[..k] != MAGIC[..k] {
            return After::Handoff;
        }
        if k < MAGIC.len() {
            return After::Keep; // Strict magic prefix: wait for byte 4.
        }
        conn.plane = Plane::Binary;
        ctx.metrics.conns_binary.fetch_add(1, Ordering::Relaxed);
        conn.rbuf.drain(..MAGIC.len());
    }
    let mut stage = Stage::new(ctx.shard_txs.len());
    let mut consumed = 0;
    let mut after = loop {
        let buf = &conn.rbuf[consumed..];
        if buf.is_empty() {
            break After::Keep;
        }
        match binary::check_frame(buf, ctx.max_frame_bytes) {
            Ok(FrameStatus::NeedMore { .. }) => break After::Keep,
            Ok(FrameStatus::Ready { end }) => {
                let t = Instant::now();
                let frame = binary::decode_payload(&buf[HEADER_LEN..end]);
                ctx.obs.decode_us.record(t.elapsed().as_micros() as u64);
                match frame {
                    Ok(Frame::Batch { events, .. }) => {
                        consumed += end;
                        if ctx.backpressure == Backpressure::Shed {
                            // Shed is all-or-nothing per frame, so shed
                            // frames skip the stage and admit alone.
                            match admit(ctx, out_tx, wake, conn, events) {
                                Admit::Done => {}
                                Admit::Parked => break After::Keep,
                                Admit::Down => break After::Close,
                            }
                        } else {
                            stage_frame(ctx, out_tx, wake, conn, &mut stage, events);
                        }
                    }
                    Ok(Frame::Sync) => {
                        // Barrier: staged frames must reach the shards
                        // before the sync fans out, or the barrier
                        // could overtake them. A parked flush leaves
                        // the sync frame unconsumed; the retry tick
                        // re-decodes it once the parts are through.
                        match flush_stage(ctx, conn, &mut stage) {
                            Admit::Done => {}
                            Admit::Parked => break After::Keep,
                            Admit::Down => break After::Close,
                        }
                        consumed += end;
                        let out = OutHandle {
                            tx: out_tx.clone(),
                            wake: wake.clone(),
                            token: conn.token,
                        };
                        spawn_sync(ctx.clone(), out);
                    }
                    Ok(_) => {
                        // Ack / Err / Synced are server → client only.
                        consumed += end;
                        conn.wbuf.extend_from_slice(&binary::encode_err(
                            0,
                            "client sent a server-only frame kind",
                        ));
                    }
                    Err(e) => {
                        // The frame was CRC-valid, so framing holds:
                        // report and keep serving the connection.
                        consumed += end;
                        conn.wbuf
                            .extend_from_slice(&binary::encode_err(0, &e.to_string()));
                    }
                }
            }
            Err(e) => {
                // Oversize or CRC mismatch: the byte stream can no
                // longer be trusted to re-synchronize.
                conn.wbuf
                    .extend_from_slice(&binary::encode_err(0, &e.to_string()));
                break After::Close;
            }
        }
    };
    conn.rbuf.drain(..consumed);
    // Frames staged before a break (clean end of buffer OR a later
    // poison frame — they themselves were valid) still go out.
    match flush_stage(ctx, conn, &mut stage) {
        Admit::Done | Admit::Parked => {}
        Admit::Down => after = After::Close,
    }
    after
}

/// Route one decoded batch into the pass's stage. Never blocks and
/// never fails: shard hand-off happens at [`flush_stage`]. Durable
/// frames register with the ack table here, in decode order, so held
/// acks keep their per-connection FIFO guarantee across coalescing.
fn stage_frame(
    ctx: &Arc<ConnCtx>,
    out_tx: &Sender<(u64, Vec<u8>)>,
    wake: &Arc<WakeFd>,
    conn: &mut Conn,
    stage: &mut Stage,
    events: Vec<Event>,
) {
    let now = Instant::now();
    stage.t_first.get_or_insert(now);
    let count = events.len() as u64;
    conn.seq += count;
    let seq = conn.seq;
    stage.last_seq = seq;
    stage.events += count;
    let shards = ctx.shard_txs.len();
    // This frame's max event timestamp per shard — the ack-part
    // watermark each shard must pass before voting the frame covered.
    let mut frame_max: Vec<Option<Timestamp>> = vec![None; shards];
    for ev in events {
        let i = if shards == 1 {
            0
        } else {
            ctx.router.route(&ev) as usize
        };
        frame_max[i] = Some(match frame_max[i] {
            Some(m) => m.max(ev.ts),
            None => ev.ts,
        });
        stage.parts[i].push(ev);
    }
    if ctx.durable_acks {
        let targets = frame_max.iter().filter(|m| m.is_some()).count();
        let f = Arc::new(FrameAck::new(
            conn.token,
            AckSink::Bin {
                out: OutHandle {
                    tx: out_tx.clone(),
                    wake: wake.clone(),
                    token: conn.token,
                },
                seq,
                count,
            },
            targets,
        ));
        // An empty frame registers with zero parts and completes
        // immediately — but still queues behind earlier frames' acks.
        ctx.ack_table.register(f.clone());
        stage.deferred += 1;
        for (i, max_ts) in frame_max.into_iter().enumerate() {
            if max_ts.is_some() {
                stage.acks[i].push(AckPart {
                    frame: f.clone(),
                    max_ts,
                    admitted: now,
                });
            }
        }
    } else {
        stage.pending.push((seq, count));
    }
}

/// Hand the stage to the shards: one `try_send` per touched shard. On
/// a full queue the unsent tail parks (Block semantics without
/// blocking the loop) and the stage resets either way.
fn flush_stage(ctx: &Arc<ConnCtx>, conn: &mut Conn, stage: &mut Stage) -> Admit {
    if stage.is_empty() {
        return Admit::Done;
    }
    let t_admit = stage.t_first.take().unwrap_or_else(Instant::now);
    let enqueued = Instant::now();
    let mut cmds: VecDeque<(usize, ShardCmd)> = VecDeque::new();
    for i in 0..stage.parts.len() {
        if stage.parts[i].is_empty() && stage.acks[i].is_empty() {
            continue;
        }
        cmds.push_back((
            i,
            ShardCmd::Ingest {
                evs: std::mem::take(&mut stage.parts[i]),
                acks: std::mem::take(&mut stage.acks[i]),
                enqueued,
            },
        ));
    }
    let events = std::mem::take(&mut stage.events);
    let pending = std::mem::take(&mut stage.pending);
    let deferred = std::mem::take(&mut stage.deferred);
    let last_seq = stage.last_seq;
    while let Some((i, cmd)) = cmds.pop_front() {
        match ctx.shard_txs[i].try_send(cmd) {
            Ok(()) => {
                let depth = ctx.shard_txs[i].len() as u64;
                ctx.metrics.observe_queue_depth(depth);
                ctx.obs.shards[i].observe_queue_depth(depth);
            }
            Err(TrySendError::Full(cmd)) => {
                cmds.push_front((i, cmd));
                conn.parked = Some(Parked {
                    cmds,
                    events,
                    pending,
                    deferred,
                    last_seq,
                    t_admit,
                });
                return Admit::Parked;
            }
            Err(TrySendError::Disconnected(_)) => {
                // Shutdown: the coordinator's fail-all sweep resolves
                // whatever durable acks already registered.
                conn.wbuf
                    .extend_from_slice(&binary::encode_err(last_seq, "server shutting down"));
                return Admit::Down;
            }
        }
    }
    complete_flush(ctx, conn, events, &pending, deferred, t_admit);
    Admit::Done
}

/// Outcome of one batch admission.
enum Admit {
    Done,
    /// Some parts hit a full shard queue and wait on the retry tick.
    Parked,
    /// Shard channels disconnected: the server is shutting down.
    Down,
}

/// Admit one decoded batch under [`Backpressure::Shed`]: split by
/// route, `try_send` each part, ack per the same rules as the JSONL
/// plane's `ingest` (durable acks register before any part is
/// enqueued; shed is all-or-nothing). Block-mode batches never come
/// here — they coalesce through [`stage_frame`] / [`flush_stage`].
fn admit(
    ctx: &Arc<ConnCtx>,
    out_tx: &Sender<(u64, Vec<u8>)>,
    wake: &Arc<WakeFd>,
    conn: &mut Conn,
    events: Vec<Event>,
) -> Admit {
    let t_admit = Instant::now();
    let count = events.len() as u64;
    conn.seq += count;
    let seq = conn.seq;
    let shards = ctx.shard_txs.len();
    let mut parts: Vec<Vec<Event>> = vec![Vec::new(); shards];
    if shards == 1 {
        parts[0] = events;
    } else {
        for ev in events {
            parts[ctx.router.route(&ev) as usize].push(ev);
        }
    }
    let targets: Vec<usize> = (0..shards).filter(|&i| !parts[i].is_empty()).collect();

    let frame_ack = if ctx.durable_acks {
        let sink = AckSink::Bin {
            out: OutHandle {
                tx: out_tx.clone(),
                wake: wake.clone(),
                token: conn.token,
            },
            seq,
            count,
        };
        let f = Arc::new(FrameAck::new(conn.token, sink, targets.len()));
        ctx.ack_table.register(f.clone());
        Some(f)
    } else {
        None
    };

    let shed = |conn: &mut Conn| {
        ctx.metrics.shed.fetch_add(count, Ordering::Relaxed);
        conn.wbuf
            .extend_from_slice(&binary::encode_err(seq, "shed: ingest queue full"));
    };

    if targets.is_empty() {
        // Empty batch: nothing to enqueue, but in durable mode it
        // registered above so its ack queues behind earlier frames.
        let durable = frame_ack.is_some();
        let pending = if durable { vec![] } else { vec![(seq, count)] };
        complete_flush(ctx, conn, count, &pending, durable as u64, t_admit);
        return Admit::Done;
    }
    if ctx.backpressure == Backpressure::Shed && targets.len() > 1 {
        let full = targets.iter().any(|&i| {
            let tx = &ctx.shard_txs[i];
            tx.capacity().is_some_and(|cap| tx.len() >= cap)
        });
        if full {
            if let Some(f) = &frame_ack {
                ctx.ack_table.unregister_last(f);
            }
            shed(conn);
            ctx.obs
                .admit_us
                .record(t_admit.elapsed().as_micros() as u64);
            return Admit::Done;
        }
    }
    let single_shed = ctx.backpressure == Backpressure::Shed && targets.len() == 1;
    let mut cmds: VecDeque<(usize, ShardCmd)> = VecDeque::with_capacity(targets.len());
    for &i in &targets {
        let part = std::mem::take(&mut parts[i]);
        let max_ts = part.iter().map(|e| e.ts).max();
        let ack = frame_ack.as_ref().map(|f| AckPart {
            frame: f.clone(),
            max_ts,
            admitted: t_admit,
        });
        cmds.push_back((
            i,
            ShardCmd::Ingest {
                evs: part,
                acks: ack.into_iter().collect(),
                enqueued: t_admit,
            },
        ));
    }
    while let Some((i, cmd)) = cmds.pop_front() {
        match ctx.shard_txs[i].try_send(cmd) {
            Ok(()) => {
                let depth = ctx.shard_txs[i].len() as u64;
                ctx.metrics.observe_queue_depth(depth);
                ctx.obs.shards[i].observe_queue_depth(depth);
            }
            Err(TrySendError::Full(cmd)) => {
                if single_shed {
                    if let Some(f) = &frame_ack {
                        ctx.ack_table.unregister_last(f);
                    }
                    shed(conn);
                    ctx.obs
                        .admit_us
                        .record(t_admit.elapsed().as_micros() as u64);
                    return Admit::Done;
                }
                // The multi-target Shed race lands here — after the
                // pre-check passed, a frame may block briefly on the
                // retry tick, but it is never half-shed.
                cmds.push_front((i, cmd));
                let durable = frame_ack.is_some();
                conn.parked = Some(Parked {
                    cmds,
                    events: count,
                    pending: if durable {
                        Vec::new()
                    } else {
                        vec![(seq, count)]
                    },
                    deferred: durable as u64,
                    last_seq: seq,
                    t_admit,
                });
                return Admit::Parked;
            }
            Err(TrySendError::Disconnected(_)) => {
                if let Some(f) = &frame_ack {
                    ctx.ack_table.unregister_last(f);
                }
                conn.wbuf
                    .extend_from_slice(&binary::encode_err(seq, "server shutting down"));
                return Admit::Down;
            }
        }
    }
    let durable = frame_ack.is_some();
    let pending = if durable { vec![] } else { vec![(seq, count)] };
    complete_flush(ctx, conn, count, &pending, durable as u64, t_admit);
    Admit::Done
}

/// Every part is enqueued (or the frames were empty): count the
/// events and emit the immediate acks, frame by frame in order,
/// unless durable ones are pending in the table.
fn complete_flush(
    ctx: &ConnCtx,
    conn: &mut Conn,
    events: u64,
    pending: &[(u64, u64)],
    deferred: u64,
    t_admit: Instant,
) {
    ctx.metrics.events.fetch_add(events, Ordering::Relaxed);
    if deferred > 0 {
        ctx.metrics
            .acks_deferred
            .fetch_add(deferred, Ordering::Relaxed);
    }
    for &(seq, count) in pending {
        conn.wbuf.extend_from_slice(&binary::encode_ack(seq, count));
    }
    ctx.obs
        .admit_us
        .record(t_admit.elapsed().as_micros() as u64);
}

/// Give every parked connection another shot at its shard queues.
fn retry_parked(r: &mut Reactor) {
    let tokens: Vec<u64> = r
        .conns
        .iter()
        .filter(|(_, c)| c.parked.is_some())
        .map(|(t, _)| *t)
        .collect();
    for token in tokens {
        let ctx = r.ctx.clone();
        let out_tx = r.out_tx.clone();
        let wake = r.wake.clone();
        let Some(conn) = r.conns.get_mut(&token) else {
            continue;
        };
        let Some(mut p) = conn.parked.take() else {
            continue;
        };
        let mut dead = false;
        while let Some((i, cmd)) = p.cmds.pop_front() {
            match ctx.shard_txs[i].try_send(cmd) {
                Ok(()) => {
                    let depth = ctx.shard_txs[i].len() as u64;
                    ctx.metrics.observe_queue_depth(depth);
                    ctx.obs.shards[i].observe_queue_depth(depth);
                }
                Err(TrySendError::Full(cmd)) => {
                    p.cmds.push_front((i, cmd));
                    break;
                }
                Err(TrySendError::Disconnected(_)) => {
                    // Shutdown mid-frame: the registered acks are
                    // resolved by the coordinator's fail-all sweep.
                    conn.wbuf
                        .extend_from_slice(&binary::encode_err(p.last_seq, "server shutting down"));
                    dead = true;
                    break;
                }
            }
        }
        let after = if dead {
            After::Close
        } else if p.cmds.is_empty() {
            complete_flush(&ctx, conn, p.events, &p.pending, p.deferred, p.t_admit);
            if conn.closing {
                // A poison frame followed the parked one: nothing left
                // in the buffer is trustworthy, just settle the close.
                After::Keep
            } else {
                // The read buffer may hold frames decoded behind the
                // one that parked; resume processing before re-arming
                // reads.
                process_buffer(&ctx, &out_tx, &wake, conn)
            }
        } else {
            conn.parked = Some(p);
            After::Keep
        };
        finish_conn_pass(r, token, after);
    }
}

/// The sync barrier blocks on every shard's reply; that wait happens
/// on a throwaway thread so the reactor never stalls. Replies are not
/// ordered with respect to held acks — same as the JSONL plane, where
/// sync replies are never watermark-held.
fn spawn_sync(ctx: Arc<ConnCtx>, out: OutHandle) {
    let _ = thread::Builder::new()
        .name("fenestra-bsync".into())
        .spawn(move || {
            let mut dones = Vec::with_capacity(ctx.shard_txs.len());
            for tx in &ctx.shard_txs {
                let (dtx, drx) = channel::bounded(1);
                if tx.send(ShardCmd::Sync { done: dtx }).is_err() {
                    out.send(binary::encode_err(0, "server shutting down"));
                    return;
                }
                dones.push(drx);
            }
            for drx in dones {
                if drx.recv().is_err() {
                    out.send(binary::encode_err(0, "server shutting down"));
                    return;
                }
            }
            out.send(binary::encode_synced());
        });
}

/// Flush, settle epoll interest, and apply the connection's fate.
fn finish_conn_pass(r: &mut Reactor, token: u64, after: After) {
    match after {
        After::Handoff => {
            handoff_jsonl(r, token);
            return;
        }
        After::Close => {
            if let Some(conn) = r.conns.get_mut(&token) {
                conn.closing = true;
            }
        }
        After::Keep => {}
    }
    let Some(conn) = r.conns.get_mut(&token) else {
        return;
    };
    if flush_writes(&r.ctx, conn).is_err() {
        close_conn(r, token);
        return;
    }
    // Linger rules: a closing/EOF connection survives until its
    // write buffer is out the door — and, after a clean client EOF,
    // until the ack table owes it nothing more.
    let drained = conn.wbuf.is_empty() && conn.parked.is_none();
    if drained && conn.closing {
        close_conn(r, token);
        return;
    }
    if drained && conn.peer_closed && !r.ctx.ack_table.has_conn(token) {
        close_conn(r, token);
        return;
    }
    sync_interest(&r.epoll, conn);
}

/// Write as much of `wbuf` as the kernel will take.
fn flush_writes(ctx: &ConnCtx, conn: &mut Conn) -> std::io::Result<()> {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => {
                ctx.metrics.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                conn.wbuf.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Re-register the connection's epoll interest to match its state:
/// reads while it may make progress, writes only while bytes wait.
fn sync_interest(epoll: &Epoll, conn: &mut Conn) {
    let mut want = 0;
    if conn.wants_read() {
        want |= sys::EPOLLIN | sys::EPOLLRDHUP;
    }
    if !conn.wbuf.is_empty() {
        want |= sys::EPOLLOUT;
    }
    if want != conn.armed {
        epoll.modify(conn.stream.as_raw_fd(), conn.token, want);
        conn.armed = want;
    }
}

fn close_conn(r: &mut Reactor, token: u64) {
    let Some(conn) = r.conns.remove(&token) else {
        return;
    };
    r.epoll.del(conn.stream.as_raw_fd());
    r.ctx.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
    if matches!(conn.plane, Plane::Binary) {
        r.ctx.metrics.conns_binary.fetch_sub(1, Ordering::Relaxed);
    }
}

/// First bytes are not the binary magic: give the socket (blocking
/// again) to a classic JSONL connection thread, replaying the sniffed
/// prefix so no byte is lost.
fn handoff_jsonl(r: &mut Reactor, token: u64) {
    let Some(conn) = r.conns.remove(&token) else {
        return;
    };
    r.epoll.del(conn.stream.as_raw_fd());
    if conn.stream.set_nonblocking(false).is_err() {
        r.ctx.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
        return;
    }
    let ctx = r.ctx.clone();
    let prefix = conn.rbuf;
    let stream = conn.stream;
    let _ = thread::Builder::new()
        .name("fenestra-conn".into())
        .spawn(move || {
            crate::server::handle_conn(stream, ctx.clone(), token, prefix);
            ctx.metrics.conns_open.fetch_sub(1, Ordering::Relaxed);
        });
}

/// Shutdown: the coordinator has already failed every registered ack
/// (those bytes are drained above, before the flag check), so one
/// last best-effort flush per connection is all that is owed.
fn shutdown_reactor(r: &mut Reactor) {
    for lane in &r.peers {
        lane.wake.wake();
    }
    let tokens: Vec<u64> = r.conns.keys().copied().collect();
    for token in tokens {
        if let Some(conn) = r.conns.get_mut(&token) {
            let _ = flush_writes(&r.ctx, conn);
        }
        close_conn(r, token);
    }
}
