//! `fenestrad` — run the Fenestra engine as a long-lived network
//! service. See `fenestra-server`'s crate docs for the wire protocol.

use fenestra_base::time::Duration;
use fenestra_core::Semantics;
use fenestra_server::{Backpressure, Server, ServerConfig};
use fenestra_temporal::FsyncPolicy;
use std::process::ExitCode;

const USAGE: &str = "\
fenestrad — Fenestra network server (ingest / query / watch over TCP)

USAGE:
    fenestrad [OPTIONS]

OPTIONS:
    --addr HOST:PORT        listen address           [default: 127.0.0.1:7878]
    --shards N              keyed engine shards, each with its own
                            thread, state partition, and (with --wal)
                            WAL segments + snapshot; events route by a
                            hash of their entity key. Must match the
                            on-disk layout across restarts.
                            [default: min(cores, 8)]
    --queue N               ingest queue capacity, split across shards
                            [default: 1024]
    --shed                  shed events when the queue is full
                            (default: block the sending connection)
    --batch-max N           group-commit cap: max events coalesced into
                            one apply+WAL+fsync pass  [default: 512]
    --snapshot PATH         persist state to PATH on shutdown
    --snapshot-every-ms N   also snapshot every N ms (needs --snapshot)
    --wal PATH              durable write-ahead log rooted at PATH
                            (segments PATH.<gen>); recover on boot, and
                            rotate at snapshot time when --snapshot is
                            also set
    --fsync POLICY          WAL fsync policy: always | every-N |
                            on-snapshot              [default: always]
                            (only `always` makes an ack crash-durable)
    --rules FILE            load a rules file at startup
    --max-lateness-ms N     out-of-orderness bound   [default: 0]
    --retention-ms N        GC closed history older than N ms behind
                            the watermark            [default: keep forever]
    --gc-horizon-ms N       also GC closed history older than N ms
                            behind each shard's latest event, on the
                            snapshot cadence (or its own N ms ticker
                            without --snapshot-every-ms); reclaimed
                            facts are counted in stats `gc_removed`
    --semantics MODE        state-first | stream-first | snapshot
    --metrics-addr HOST:PORT  serve Prometheus text exposition on a
                            second listener (plain HTTP GET /metrics);
                            scrapes read atomics only and never touch
                            the ingest path    [default: off]
    --replicate HOST:PORT   serve committed WAL segments to followers
                            on a second listener (needs --wal); each
                            follower streams frames as group commits
                            land                [default: off]
    --follow HOST:PORT      run as a warm follower of the leader's
                            --replicate listener (needs --wal and
                            --snapshot): mirror its WAL, serve queries
                            and watches, redirect ingest. Promote with
                            {\"cmd\":\"promote\"} or --promote-after-ms.
    --promote-after-ms N    with --follow: self-promote after N ms of
                            leader silence (once synced at least once).
                            Opt-in — without an external fencing story
                            a network partition can yield two leaders.
    --sync-replicas N       hold each durable ack until N followers
                            confirm they have applied AND fsynced the
                            covering WAL bytes (needs --replicate and
                            --fsync always). 0 = async: acks release
                            after the local fsync only  [default: 0]
    --sync-timeout-ms N     with --sync-replicas: max time an ack waits
                            for follower coverage before it fails (or
                            falls back, see --sync-fallback)
                            [default: 1000]
    --sync-fallback         with --sync-replicas: on coverage timeout,
                            release the ack anyway (async durability)
                            and count it in `sync_acks_fallback`
                            instead of failing the batch
    --slow-ms N             log any shard ingest command slower than
                            N ms (apply + WAL commit) as one JSON line
                            on stderr          [default: off]
    --max-frame-bytes N     reject any wire frame (one JSONL line, or
                            one binary frame) larger than N bytes
                            [default: 8388608]
    --reactors N            event-loop threads for the binary ingest
                            plane (0 = min(cores, 4)) [default: 0]
    -h, --help              print this help

PROTOCOL (line-delimited JSON on one socket):
    {\"stream\":\"s\",\"ts\":10,\"k\":\"v\"}     ingest one event -> {\"ok\":true,\"seq\":1}
    {\"op\":\"ingest\",\"events\":[...]}      ingest a batch -> {\"ok\":true,\"seq\":N,\"count\":K}
    {\"cmd\":\"query\",\"q\":\"select ...\"}   run a query
    {\"cmd\":\"watch\",\"name\":\"w\",\"q\":\"select ...\"}   push view diffs
    {\"cmd\":\"stats\"}                    counters, gauges, stage histograms
    {\"cmd\":\"sync\"}                     processing barrier -> {\"ok\":true,\"synced\":true}
    {\"cmd\":\"promote\"}                  follower only: fence the old leader and
                                        take writes -> {\"ok\":true,\"epoch\":N}
    {\"cmd\":\"shutdown\"}                 drain, snapshot, exit

A connection whose first four bytes are `FNB1` speaks the binary batch
plane instead (length-prefixed CRC-framed record batches; see the
fenestra-wire crate docs). Both planes share this one listener.
";

fn main() -> ExitCode {
    let mut config = ServerConfig::default().shards(fenestra_core::default_shards());
    let mut rules_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed = match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--shards" => {
                parse_num(value("--shards"), "--shards").map(|n| config.shards = (n as u32).max(1))
            }
            "--gc-horizon-ms" => parse_num(value("--gc-horizon-ms"), "--gc-horizon-ms")
                .map(|n| config.gc_horizon = Some(Duration::millis(n))),
            "--queue" => parse_num(value("--queue"), "--queue")
                .map(|n| config.queue_capacity = (n as usize).max(1)),
            "--shed" => {
                config.backpressure = Backpressure::Shed;
                Ok(())
            }
            "--batch-max" => parse_num(value("--batch-max"), "--batch-max")
                .map(|n| config.batch_max = (n as usize).max(1)),
            "--snapshot" => value("--snapshot").map(|v| config.snapshot_path = Some(v.into())),
            "--wal" => value("--wal").map(|v| config.wal_path = Some(v.into())),
            "--fsync" => value("--fsync").and_then(|v| {
                v.parse::<FsyncPolicy>()
                    .map(|p| config.fsync = p)
                    .map_err(|e| e.to_string())
            }),
            "--snapshot-every-ms" => parse_num(value("--snapshot-every-ms"), "--snapshot-every-ms")
                .map(|n| config.snapshot_every = Some(Duration::millis(n))),
            "--rules" => value("--rules").map(|v| rules_file = Some(v)),
            "--max-lateness-ms" => parse_num(value("--max-lateness-ms"), "--max-lateness-ms")
                .map(|n| config.engine.max_lateness = Duration::millis(n)),
            "--retention-ms" => parse_num(value("--retention-ms"), "--retention-ms")
                .map(|n| config.engine.retention = Some(Duration::millis(n))),
            "--semantics" => value("--semantics").and_then(|v| match v.as_str() {
                "state-first" => {
                    config.engine.semantics = Semantics::StateFirst;
                    Ok(())
                }
                "stream-first" => {
                    config.engine.semantics = Semantics::StreamFirst;
                    Ok(())
                }
                "snapshot" => {
                    config.engine.semantics = Semantics::Snapshot;
                    Ok(())
                }
                other => Err(format!("unknown semantics `{other}`")),
            }),
            "--metrics-addr" => value("--metrics-addr").map(|v| config.metrics_addr = Some(v)),
            "--replicate" => value("--replicate").map(|v| config.replicate_addr = Some(v)),
            "--follow" => value("--follow").map(|v| config.follow = Some(v)),
            "--promote-after-ms" => parse_num(value("--promote-after-ms"), "--promote-after-ms")
                .map(|n| config.promote_after = Some(Duration::millis(n))),
            "--sync-replicas" => parse_num(value("--sync-replicas"), "--sync-replicas")
                .map(|n| config.sync_replicas = n as u32),
            "--sync-timeout-ms" => parse_num(value("--sync-timeout-ms"), "--sync-timeout-ms")
                .map(|n| config.sync_timeout = Duration::millis(n)),
            "--sync-fallback" => {
                config.sync_fallback = true;
                Ok(())
            }
            "--slow-ms" => {
                parse_num(value("--slow-ms"), "--slow-ms").map(|n| config.slow_ms = Some(n))
            }
            "--max-frame-bytes" => parse_num(value("--max-frame-bytes"), "--max-frame-bytes")
                .map(|n| config.max_frame_bytes = (n as usize).max(1024)),
            "--reactors" => {
                parse_num(value("--reactors"), "--reactors").map(|n| config.reactors = n as usize)
            }
            other => Err(format!("unknown option `{other}` (try --help)")),
        };
        if let Err(e) = parsed {
            eprintln!("fenestrad: {e}");
            return ExitCode::from(2);
        }
    }

    if let Some(path) = rules_file {
        let src = match std::fs::read_to_string(&path) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("fenestrad: cannot read rules file {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let path_for_msg = path.clone();
        config = config.setup(move |engine| match engine.add_rules_text(&src) {
            Ok(n) => eprintln!("fenestrad: loaded {n} rule(s) from {path_for_msg}"),
            Err(e) => eprintln!("fenestrad: rules file {path_for_msg} rejected: {e}"),
        });
    }

    sig::install();
    let following = config.follow.clone();
    let mut handle = match Server::start(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fenestrad: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("fenestrad: listening on {}", handle.local_addr());
    if let Some(maddr) = handle.metrics_addr() {
        eprintln!("fenestrad: serving Prometheus metrics on http://{maddr}/metrics");
    }
    if let Some(raddr) = handle.replicate_addr() {
        eprintln!("fenestrad: serving replication to followers on {raddr}");
    }
    if let Some(leader) = following {
        eprintln!("fenestrad: following leader at {leader} (read-only until promoted)");
    }

    loop {
        std::thread::sleep(std::time::Duration::from_millis(100));
        if sig::termed() {
            eprintln!("fenestrad: signal received, draining and shutting down");
            handle.shutdown();
            break;
        }
        if handle.is_shutting_down() {
            handle.join();
            eprintln!("fenestrad: shutdown requested over the wire, bye");
            break;
        }
    }
    ExitCode::SUCCESS
}

fn parse_num(v: Result<String, String>, flag: &str) -> Result<u64, String> {
    v.and_then(|s| {
        s.parse::<u64>()
            .map_err(|_| format!("{flag} needs a non-negative integer, got `{s}`"))
    })
}

#[cfg(unix)]
mod sig {
    //! SIGTERM/SIGINT → graceful drain, via a raw `signal(2)` binding
    //! (std links libc already; no crate dependency needed).
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_sig: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_term);
            signal(SIGTERM, on_term);
        }
    }

    pub fn termed() -> bool {
        TERM.load(Ordering::SeqCst)
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn termed() -> bool {
        false
    }
}
