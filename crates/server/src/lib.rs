#![warn(missing_docs)]
//! # fenestra-server
//!
//! `fenestrad`: a long-running network front end for the Fenestra
//! engine. The paper's pitch — state as an explicit, *queryable*,
//! *subscribable* object rather than transient window contents — only
//! pays off operationally if the state outlives a single process
//! invocation and is reachable while ingest continues. This crate
//! provides exactly that:
//!
//! * **ingest** — clients stream JSONL events (the `fenestra-wire`
//!   format) over TCP; each accepted line is acknowledged with a
//!   per-connection sequence number;
//! * **query** — `select … asof …` queries run against the live state
//!   repository while events keep flowing;
//! * **watch** — standing queries push row-level view differences to
//!   the subscribed connection as they happen;
//! * **stats / shutdown** — observability counters and graceful drain
//!   (flush + snapshot) over the same protocol.
//!
//! ## Architecture
//!
//! One engine-writer thread owns the [`fenestra_core::Engine`] and
//! consumes a bounded MPSC command queue. Connection threads translate
//! socket lines into commands; replies travel back over per-request
//! channels, and watch deltas over a per-connection outbound channel
//! drained by a dedicated writer thread. Backpressure on the ingest
//! queue is configurable: block the producing connection, or shed the
//! event and report it (see [`config::Backpressure`]).
//!
//! ## Wire protocol
//!
//! Line-delimited JSON, one object per line, on a single listener.
//! Objects with a `"cmd"` key are commands (`query`, `watch`,
//! `stats`, `shutdown`); anything else must be an event:
//!
//! ```text
//! → {"stream":"sensors","ts":10,"visitor":"alice","room":"lobby"}
//! ← {"ok":true,"seq":1}
//! → {"cmd":"query","q":"select ?v where { ?v room \"lobby\" } asof 15"}
//! ← {"ok":true,"rows":[{"v":"#0"}]}
//! → {"cmd":"watch","name":"lab","q":"select ?v where { ?v room \"lab\" }"}
//! ← {"ok":true,"watch":"lab"}
//! ← {"watch":"lab","sign":1,"row":{"v":"#0"}}
//! → {"cmd":"stats"}
//! ← {"ok":true,"engine":{…},"server":{…}}
//! → {"cmd":"shutdown"}
//! ← {"ok":true,"bye":true}
//! ```
//!
//! ## Ack semantics and durability
//!
//! An ingest ack (`{"ok":true,"seq":N}`) means **admitted**, not
//! *applied*: the event entered the engine's FIFO command queue. An
//! admitted event can still be discarded if it arrives beyond the
//! configured lateness bound — such drops are counted in the `stats`
//! counter `server.late_dropped`. Because the queue is FIFO, a later
//! `stats` or `shutdown` reply on the same connection proves every
//! previously acked event has been *processed* (applied or counted as
//! late).
//!
//! With a durable WAL configured ([`ServerConfig::wal_path`], fsync
//! policy `always`), every state transition is on stable storage
//! before the engine moves to the next command, so the same barrier —
//! an ack followed by a `stats` round-trip — guarantees the transition
//! survives even `kill -9`. Under `every-N` / `on-snapshot` policies a
//! crash may lose the most recent unsynced batches (recovery truncates
//! the torn tail and reports it in `server.wal_discarded_bytes`).

pub mod config;
pub mod metrics;
pub mod proto;
pub mod server;

pub use config::{Backpressure, ServerConfig};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerHandle};
