#![warn(missing_docs)]
//! # fenestra-server
//!
//! `fenestrad`: a long-running network front end for the Fenestra
//! engine. The paper's pitch — state as an explicit, *queryable*,
//! *subscribable* object rather than transient window contents — only
//! pays off operationally if the state outlives a single process
//! invocation and is reachable while ingest continues. This crate
//! provides exactly that:
//!
//! * **ingest** — clients stream JSONL events (the `fenestra-wire`
//!   format) over TCP, one per line or many per line via the batch
//!   frame; each accepted frame is acknowledged with a per-connection
//!   sequence number;
//! * **query** — `select … asof …` queries run against the live state
//!   repository while events keep flowing;
//! * **watch** — standing queries push row-level view differences to
//!   the subscribed connection as they happen;
//! * **stats / sync / shutdown** — observability counters, stage
//!   latency histograms, a processing barrier, and graceful drain
//!   (flush + snapshot) over the same protocol;
//! * **/metrics** — an optional second listener
//!   ([`ServerConfig::metrics_addr`]) serving Prometheus text
//!   exposition, rendered from the same atomics as `stats`.
//!
//! ## Architecture
//!
//! N **shard threads** (one per [`ServerConfig::shards`], default 1)
//! each own one [`fenestra_core::Engine`] partition and consume their
//! own bounded MPSC command queue. Events route to exactly one shard
//! by a deterministic hash of their **entity key** — the event field
//! the stream's rules name entities by (see
//! [`fenestra_core::ShardRouter`]); rules whose matches could span
//! entities (fixed `@entity` targets, computed keys, pattern triggers)
//! are rejected at startup when `shards > 1`. Connection threads
//! translate socket lines into commands, splitting batch frames by
//! route; replies travel back over per-request channels, and watch
//! deltas over a per-connection outbound channel drained by a
//! dedicated writer thread. Queries and watches fan out to every shard
//! (selects merge rows, `count` and `limit` apply globally after the
//! merge). `stats` is served **lock-light** on the connection thread
//! from per-shard atomics ([`fenestra_obs::ShardObs`]) that the shard
//! loops, engines, and WAL writers publish into — engine counters
//! merged across shards, per-shard gauges (queue depth/HWM, reorder
//! depth, watermark lag, held acks, WAL segment bytes, open facts),
//! and per-stage latency histograms for the whole event lifecycle
//! (admission → queue wait → reorder dwell → WAL append → fsync → ack
//! hold, plus a late-margin histogram over dropped events).
//! Backpressure on the shard queues is configurable: block
//! the producing connection, or shed the frame — whole, never in part
//! — and report it (see [`config::Backpressure`]).
//!
//! With one shard (the default) the server is byte-identical to the
//! pre-sharding releases, including the on-disk WAL/snapshot layout;
//! with N, each shard keeps its own WAL segments
//! (`<wal>-<shard>-<gen>.seg`) and snapshot (`<snap>.shard<i>`), boot
//! recovery replays all shards in parallel, and a restart whose
//! `--shards` contradicts the on-disk layout is rejected before
//! anything is written.
//!
//! Each shard thread **group-commits** ingest: after taking one ingest
//! command off its queue it greedily drains whatever ingest commands
//! are already queued — across all connections, up to
//! [`ServerConfig::batch_max`] events — and applies them as one batch:
//! one apply pass, one WAL frame, one fsync (under `always`), one
//! watch poll. Pure reads (`query`, `stats`) never trigger a watch
//! poll. This is what keeps strict durability affordable: the fsync
//! cost is amortized over the whole batch, and under sharding the
//! fsyncs themselves proceed in parallel across shards.
//!
//! ## Wire protocol
//!
//! One listener, two planes, decided by the first four bytes of the
//! connection: exactly [`fenestra_wire::binary::MAGIC`] (`FNB1`)
//! selects the **binary plane** — length-prefixed, CRC-framed record
//! batches served by an epoll reactor pool ([`ServerConfig::reactors`];
//! see `src/reactor.rs`) that decodes frames in place and
//! coalesces each socket drain into one hand-off per touched shard.
//! Anything else is the **JSONL plane** (JSONL requests always start
//! with `{`), handled by a classic per-connection thread. Both planes
//! share the shard queues, the ack table, `--max-frame-bytes`, and the
//! ack/durability semantics below; acks on the binary plane carry the
//! same per-connection `seq`/`count` as the JSONL ack object.
//!
//! The JSONL plane is line-delimited JSON, one object per line.
//! Objects with a `"cmd"` key are commands (`query`, `watch`,
//! `stats`, `shutdown`); objects with `"op":"ingest"` and no
//! `"stream"` key are batch frames; anything else must be an event
//! (events always carry `stream`, so an event field named `op` — even
//! `"ingest"` — is not special):
//!
//! ```text
//! → {"stream":"sensors","ts":10,"visitor":"alice","room":"lobby"}
//! ← {"ok":true,"seq":1}
//! → {"op":"ingest","events":[{"stream":"sensors","ts":11,"visitor":"bob","room":"lab"},
//!                            {"stream":"sensors","ts":12,"visitor":"eve","room":"lab"}]}
//! ← {"ok":true,"seq":3,"count":2}
//! → {"cmd":"query","q":"select ?v where { ?v room \"lobby\" } asof 15"}
//! ← {"ok":true,"rows":[{"v":"#0"}]}
//! → {"cmd":"watch","name":"lab","q":"select ?v where { ?v room \"lab\" }"}
//! ← {"ok":true,"watch":"lab"}
//! ← {"watch":"lab","sign":1,"row":{"v":"#0"}}
//! → {"cmd":"stats"}
//! ← {"ok":true,"engine":{…},"server":{…},"stages":{…},"shards":[{…},…]}
//! → {"cmd":"sync"}
//! ← {"ok":true,"synced":true}
//! → {"cmd":"shutdown"}
//! ← {"ok":true,"bye":true}
//! ```
//!
//! ## Ack semantics and durability
//!
//! What an ingest ack (`{"ok":true,"seq":N}`) promises depends on the
//! durability configuration:
//!
//! * **No WAL, or WAL with `every-N` / `on-snapshot` fsync** — the ack
//!   means **admitted**: the frame entered the engine's FIFO command
//!   queue and is sent back immediately. An admitted event can still
//!   be discarded if it arrives beyond the configured lateness bound
//!   (counted in `server.late_dropped`), and a crash can lose events
//!   that were acked but not yet synced.
//! * **WAL with `always` fsync** — the ack means **durable**: each
//!   shard holds its part of a frame's ack until every event of the
//!   part has been applied and the WAL commit covering it has been
//!   appended *and* fsynced; the ack line is released only when
//!   **every shard the frame touched** has voted its part covered —
//!   in admission order per connection, but one connection's
//!   still-buffered frame never holds up another connection's covered
//!   acks. Once a client reads the ack, the transition survives
//!   `kill -9` on every shard.
//!   With `--max-lateness-ms > 0` this includes the reorder buffer:
//!   an event inside the lateness bound has produced no WAL ops yet,
//!   so its ack is withheld until the watermark passes it — on an
//!   idle stream, until the next event (or shutdown) advances the
//!   watermark. Pair `always` with lateness `0` when per-event ack
//!   latency matters more than reordering. Held acks are counted in
//!   `server.acks_deferred`; commits that covered more than one event
//!   in `server.group_commits`.
//!
//! In every mode the shard queues are FIFO and `sync` / `shutdown`
//! visit every shard, so a later `sync` or `shutdown` reply on the
//! same connection proves every previously acked event has been
//! *processed* (applied or counted as late). `stats` does **not**
//! carry that guarantee: it reads published atomics on the connection
//! thread — deliberately, so metrics pollers never enqueue through
//! the ingest path — and may run slightly behind the shard loops.
//! Under `every-N` / `on-snapshot` policies recovery truncates a torn
//! WAL tail and reports it in `server.wal_discarded_bytes`.
//!
//! ## Replication and failover
//!
//! A leader started with `--replicate HOST:PORT` serves its committed
//! per-shard WAL segments to followers over a second listener; a
//! follower started with `--follow HOST:PORT` (plus `--wal` and
//! `--snapshot`) mirrors them byte-for-byte into its own WAL, applies
//! the ops to its own engine, and serves queries, history, and watches
//! locally while redirecting ingest to the leader
//! (`{"ok":false,"redirect":"host:port",…}`). Shipping reads what the
//! group commits already made durable — it never touches the leader's
//! ingest path. A follower that cannot resume from its current
//! `(generation, offset)` (first contact, missed rotations, position
//! skew) is re-bootstrapped from the leader's snapshot wholesale; every
//! session failure self-heals by reconnecting with fresh resume
//! positions.
//!
//! Failover is **fenced by an epoch**: `{"cmd":"promote"}` on the
//! follower (or `--promote-after-ms` of leader silence, once synced)
//! durably bumps the epoch (a `<wal>.epoch` sidecar, re-stamped into
//! every later snapshot), flips the node to leader, and checkpoints
//! every shard under the new epoch — starting a fresh segment lineage.
//! A demoted ex-leader's replication traffic is refused on epoch
//! mismatch from then on. The guarantee: an event acked durable on the
//! old leader **and shipped+acked by the follower** before the crash is
//! queryable on the promoted follower. The ship ack is asynchronous —
//! a leader crash can lose the last instants of acked-but-unshipped
//! events (bounded by `repl_lag_bytes`), and follower-side crash
//! durability of applied frames still requires the follower to run
//! `--fsync always`. The follower's `setup` hook (`--rules`) must only
//! declare attributes and rules; entity-allocating setups would skew
//! entity-id alignment against the shipped stream.

pub mod config;
pub mod metrics;
pub mod prom;
pub mod proto;
pub(crate) mod reactor;
pub mod server;

pub use config::{Backpressure, ServerConfig};
pub use metrics::ServerMetrics;
pub use server::{Server, ServerHandle};
