//! Prometheus text exposition (format 0.0.4), hand-rolled.
//!
//! One function renders the whole scrape body from published atomics:
//! the server's network counters, per-shard engine counters and
//! pipeline gauges, and every stage-latency histogram with a
//! `shard="N"` label. No HTTP or metrics dependency — the format is a
//! stable line protocol and the server only ever serves one route
//! (`GET /metrics`, see the listener in [`crate::server`]).
//!
//! Histogram buckets follow the log2 layout of
//! [`fenestra_obs::Histogram`]: `le` is each bucket's inclusive upper
//! bound (`2^i - 1`), cumulative as Prometheus requires, truncated at
//! the highest non-empty bucket (the `+Inf` line always closes the
//! series). Scrapes read relaxed atomics only; a scraper can never
//! block ingest.

use crate::metrics::ServerMetrics;
use fenestra_obs::{bucket_upper_bound, HistogramSnapshot, PipelineObs, BUCKETS, STAGES};
use fenestra_query::CacheStats;
use std::fmt::Write;
use std::sync::atomic::{AtomicU64, Ordering};

/// Render the complete `/metrics` body.
pub fn render_prometheus(metrics: &ServerMetrics, obs: &PipelineObs, plans: &CacheStats) -> String {
    let mut out = String::with_capacity(16 * 1024);
    server_metrics(&mut out, metrics);
    shard_gauges(&mut out, obs);
    engine_counters(&mut out, obs);
    repl_metrics(&mut out, obs);
    plan_metrics(&mut out, obs, plans);
    histogram(
        &mut out,
        "fenestra_stage_admit_us",
        "Time to parse, route, and enqueue one ingest frame on the connection thread (microseconds)",
        &[(None, obs.admit_us.snapshot())],
    );
    histogram(
        &mut out,
        "fenestra_stage_decode_us",
        "Time decoding one binary-plane frame out of a connection's read buffer (microseconds)",
        &[(None, obs.decode_us.snapshot())],
    );
    histogram(
        &mut out,
        "fenestra_stage_reactor_dispatch_us",
        "Time one reactor spent servicing a single connection readiness event (microseconds)",
        &[(None, obs.reactor_dispatch_us.snapshot())],
    );
    for stage in STAGES {
        let series: Vec<(Option<usize>, HistogramSnapshot)> = obs
            .shards
            .iter()
            .enumerate()
            .map(|(i, sh)| (Some(i), sh.stage(stage).snapshot()))
            .collect();
        let (name, help) = stage_family(stage);
        histogram(&mut out, name, help, &series);
    }
    out
}

/// Metric family name and help text for one [`STAGES`] entry.
fn stage_family(stage: &str) -> (&'static str, &'static str) {
    match stage {
        "queue_wait_us" => (
            "fenestra_stage_queue_wait_us",
            "Time an ingest command waited in its shard queue before dequeue (microseconds)",
        ),
        "reorder_dwell_us" => (
            "fenestra_stage_reorder_dwell_us",
            "Time an event dwelt in the reorder buffer before the watermark released it (microseconds)",
        ),
        "wal_append_us" => (
            "fenestra_stage_wal_append_us",
            "Time writing one WAL frame, excluding fsync (microseconds)",
        ),
        "fsync_us" => (
            "fenestra_stage_fsync_us",
            "Time in WAL fsync (microseconds)",
        ),
        "ack_hold_us" => (
            "fenestra_stage_ack_hold_us",
            "Time from frame admission to durable-ack release (microseconds)",
        ),
        "late_margin_ms" => (
            "fenestra_late_margin_ms",
            "How far behind the shard watermark each dropped-as-late event arrived (milliseconds)",
        ),
        other => panic!("unknown stage `{other}`"),
    }
}

/// One histogram family: HELP/TYPE once, then the cumulative bucket
/// series, `_sum`, and `_count` per labeled shard (or unlabeled, for
/// the server-level `admit_us`).
fn histogram(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(Option<usize>, HistogramSnapshot)],
) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (shard, snap) in series {
        let label = |le: Option<u64>| -> String {
            let mut parts = Vec::new();
            if let Some(s) = shard {
                parts.push(format!("shard=\"{s}\""));
            }
            match le {
                Some(b) => parts.push(format!("le=\"{b}\"")),
                None => {
                    if parts.is_empty() {
                        return String::new();
                    }
                }
            }
            format!("{{{}}}", parts.join(","))
        };
        let inf_label = {
            let mut parts = Vec::new();
            if let Some(s) = shard {
                parts.push(format!("shard=\"{s}\""));
            }
            parts.push("le=\"+Inf\"".to_string());
            format!("{{{}}}", parts.join(","))
        };
        let mut cum = 0u64;
        // The last bucket's upper bound is u64::MAX; fold it into +Inf
        // rather than printing a 20-digit `le`.
        let hi = snap.highest_bucket().map_or(0, |h| h.min(BUCKETS - 2));
        if snap.count > 0 {
            for (i, &b) in snap.buckets.iter().enumerate().take(hi + 1) {
                cum += b;
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cum}",
                    label(Some(bucket_upper_bound(i)))
                );
            }
        }
        let _ = writeln!(out, "{name}_bucket{inf_label} {}", snap.count);
        let _ = writeln!(out, "{name}_sum{} {}", label(None), snap.sum);
        let _ = writeln!(out, "{name}_count{} {}", label(None), snap.count);
    }
}

/// Plan-cache counters and planner latency histograms: how often
/// query compilation is skipped (`fenestra_plan_cache_*`) and what
/// compiling versus dispatching a plan costs
/// (`fenestra_plan_compile_us` / `fenestra_plan_exec_us`).
fn plan_metrics(out: &mut String, obs: &PipelineObs, plans: &CacheStats) {
    family(
        out,
        "fenestra_plan_cache_hits_total",
        "counter",
        "Query statements served by an already-compiled plan",
        plans.hits,
    );
    family(
        out,
        "fenestra_plan_cache_misses_total",
        "counter",
        "Query statements that ran the planner (parse, rewrite, lower)",
        plans.misses,
    );
    family(
        out,
        "fenestra_plan_cache_entries",
        "gauge",
        "Distinct statements currently held in the plan cache",
        plans.entries,
    );
    histogram(
        out,
        "fenestra_plan_compile_us",
        "Time compiling one statement into a physical plan, recorded on cache misses (microseconds)",
        &[(None, obs.plan.compile_us.snapshot())],
    );
    histogram(
        out,
        "fenestra_plan_exec_us",
        "Time executing one compiled plan end to end, fan-out and merge included (microseconds)",
        &[(None, obs.plan.exec_us.snapshot())],
    );
}

/// One unlabeled counter or gauge family with a single sample.
fn family(out: &mut String, name: &str, kind: &str, help: &str, v: u64) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {v}");
}

/// The server's network-layer counters, names suffixed `_total` for
/// the monotone ones.
fn server_metrics(out: &mut String, m: &ServerMetrics) {
    let c = |out: &mut String, name: &str, help: &str, a: &AtomicU64| {
        family(out, name, "counter", help, a.load(Ordering::Relaxed));
    };
    let g = |out: &mut String, name: &str, help: &str, a: &AtomicU64| {
        family(out, name, "gauge", help, a.load(Ordering::Relaxed));
    };
    c(
        out,
        "fenestra_server_connections_total",
        "Connections accepted",
        &m.connections,
    );
    g(
        out,
        "fenestra_server_conns_open",
        "Connections currently open, either wire plane",
        &m.conns_open,
    );
    g(
        out,
        "fenestra_server_conns_binary",
        "Open connections that negotiated the binary plane",
        &m.conns_binary,
    );
    c(
        out,
        "fenestra_server_bytes_in_total",
        "Bytes read off sockets",
        &m.bytes_in,
    );
    c(
        out,
        "fenestra_server_bytes_out_total",
        "Bytes written to sockets",
        &m.bytes_out,
    );
    g(
        out,
        "fenestra_server_queue_hwm",
        "High-water mark of ingest queue depth across shards",
        &m.queue_hwm,
    );
    c(
        out,
        "fenestra_server_queries_total",
        "Queries served",
        &m.queries,
    );
    c(
        out,
        "fenestra_server_shed_total",
        "Events shed under backpressure",
        &m.shed,
    );
    c(
        out,
        "fenestra_server_events_total",
        "Events admitted into the ingest queues",
        &m.events,
    );
    c(
        out,
        "fenestra_server_watches_total",
        "Watches registered",
        &m.watches,
    );
    c(
        out,
        "fenestra_server_late_dropped_total",
        "Admitted events dropped as beyond the lateness bound",
        &m.late_dropped,
    );
    c(
        out,
        "fenestra_server_ingest_batches_total",
        "Group-commit batches applied",
        &m.ingest_batches,
    );
    c(
        out,
        "fenestra_server_ingest_batched_events_total",
        "Events covered by group-commit batches",
        &m.ingest_batched_events,
    );
    g(
        out,
        "fenestra_server_ingest_batch_max",
        "Largest single ingest batch applied",
        &m.ingest_batch_max,
    );
    c(
        out,
        "fenestra_server_group_commits_total",
        "WAL commits covering more than one event",
        &m.group_commits,
    );
    c(
        out,
        "fenestra_server_acks_deferred_total",
        "Ingest frames admitted with their ack held for durability",
        &m.acks_deferred,
    );
    c(
        out,
        "fenestra_server_acks_released_total",
        "Deferred acks resolved (ack or failure line sent)",
        &m.acks_released,
    );
    c(
        out,
        "fenestra_server_wal_appends_total",
        "WAL op batches appended",
        &m.wal_appends,
    );
    c(
        out,
        "fenestra_server_wal_bytes_total",
        "WAL payload bytes appended",
        &m.wal_bytes,
    );
    c(
        out,
        "fenestra_server_fsyncs_total",
        "WAL fsync calls issued",
        &m.fsyncs,
    );
    g(
        out,
        "fenestra_server_recovered_ops",
        "Ops replayed during boot recovery",
        &m.recovered_ops,
    );
    g(
        out,
        "fenestra_server_recovery_ms",
        "Wall-clock milliseconds spent in boot recovery",
        &m.recovery_ms,
    );
    g(
        out,
        "fenestra_server_wal_discarded_bytes",
        "Torn WAL tail bytes discarded during recovery",
        &m.wal_discarded_bytes,
    );
    g(
        out,
        "fenestra_server_wal_discarded_ops",
        "WAL ops discarded during recovery",
        &m.wal_discarded_ops,
    );
    c(
        out,
        "fenestra_server_gc_removed_total",
        "Closed facts reclaimed by horizon GC",
        &m.gc_removed,
    );
}

/// One per-shard metric family: name, help, and the value reader.
type ShardFamily<T> = (&'static str, &'static str, fn(&T) -> u64);

/// Per-shard pipeline gauges, one family per gauge, `shard` labeled.
fn shard_gauges(out: &mut String, obs: &PipelineObs) {
    let families: [ShardFamily<fenestra_obs::ShardObs>; 11] = [
        (
            "fenestra_shard_queue_depth",
            "Current ingest-queue depth",
            |s| s.queue_depth.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_queue_hwm",
            "High-water mark of this shard's queue depth",
            |s| s.queue_hwm.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_reorder_depth",
            "Events admitted but still in the reorder buffer",
            |s| s.reorder_depth.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_watermark_lag_ms",
            "Max event time seen minus current watermark (ms)",
            |s| s.watermark_lag_ms.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_held_acks",
            "Durable acks held awaiting a covering WAL commit",
            |s| s.held_acks.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_wal_segment_bytes",
            "Bytes in the current (unrotated) WAL segment",
            |s| s.wal_segment_bytes.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_state_facts",
            "Currently-open facts in the shard's store",
            |s| s.state_facts.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_wal_gen",
            "Current WAL segment generation",
            |s| s.wal_gen.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_wal_oldest_gen",
            "Oldest WAL segment generation still on disk",
            |s| s.wal_oldest_gen.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_wal_segments",
            "WAL segment files on disk for this shard",
            |s| s.wal_segments.load(Ordering::Relaxed),
        ),
        (
            "fenestra_shard_repl_lag_bytes",
            "Follower only: bytes behind the leader's write position",
            |s| s.repl_lag_bytes.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, get) in families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} gauge");
        for (i, sh) in obs.shards.iter().enumerate() {
            let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(sh));
        }
    }
}

/// Replication counters and gauges (quiet zeros when not replicating),
/// plus the leader's ack-lag and the follower's apply-latency
/// histograms.
fn repl_metrics(out: &mut String, obs: &PipelineObs) {
    let r = &obs.repl;
    let v = |a: &AtomicU64| a.load(Ordering::Relaxed);
    family(
        out,
        "fenestra_repl_epoch",
        "gauge",
        "Current fencing epoch",
        v(&r.epoch),
    );
    family(
        out,
        "fenestra_repl_following",
        "gauge",
        "1 while this node is a read-only follower, 0 while leading",
        v(&r.following),
    );
    family(
        out,
        "fenestra_repl_followers",
        "gauge",
        "Leader: follower connections currently served",
        v(&r.followers),
    );
    family(
        out,
        "fenestra_repl_ship_frames_total",
        "counter",
        "Leader: WAL frames shipped to followers",
        v(&r.ship_frames),
    );
    family(
        out,
        "fenestra_repl_ship_bytes_total",
        "counter",
        "Leader: WAL segment bytes shipped to followers",
        v(&r.ship_bytes),
    );
    family(
        out,
        "fenestra_repl_snapshots_shipped_total",
        "counter",
        "Leader: bootstrap snapshots shipped to followers",
        v(&r.snapshots_shipped),
    );
    family(
        out,
        "fenestra_repl_fenced_total",
        "counter",
        "Replication messages refused by epoch fencing",
        v(&r.fenced),
    );
    family(
        out,
        "fenestra_repl_applied_frames_total",
        "counter",
        "Follower: shipped WAL frames applied locally",
        v(&r.applied_frames),
    );
    family(
        out,
        "fenestra_repl_applied_ops_total",
        "counter",
        "Follower: ops applied from shipped frames",
        v(&r.applied_ops),
    );
    family(
        out,
        "fenestra_repl_applied_bytes_total",
        "counter",
        "Follower: shipped segment bytes applied locally",
        v(&r.applied_bytes),
    );
    family(
        out,
        "fenestra_repl_reconnects_total",
        "counter",
        "Follower: reconnects to the leader",
        v(&r.reconnects),
    );
    family(
        out,
        "fenestra_repl_last_leader_contact_ms",
        "gauge",
        "Follower: unix millis of the last frame or heartbeat from the leader",
        v(&r.last_leader_contact_ms),
    );
    family(
        out,
        "fenestra_repl_sync_acks_ok_total",
        "counter",
        "Leader: held acks released by follower durable coverage (--sync-replicas)",
        v(&r.sync_acks_ok),
    );
    family(
        out,
        "fenestra_repl_sync_acks_timeout_total",
        "counter",
        "Leader: held acks failed because follower coverage missed --sync-timeout-ms",
        v(&r.sync_acks_timeout),
    );
    family(
        out,
        "fenestra_repl_sync_acks_fallback_total",
        "counter",
        "Leader: held acks released locally-durable-only after a sync timeout (--sync-fallback)",
        v(&r.sync_acks_fallback),
    );
    family(
        out,
        "fenestra_repl_sync_waiting",
        "gauge",
        "Leader: ack parts currently parked awaiting follower coverage",
        v(&r.sync_waiting),
    );
    histogram(
        out,
        "fenestra_repl_sync_wait_us",
        "Leader: time a locally-durable ack waited for follower coverage (microseconds)",
        &[(None, r.sync_wait_us.snapshot())],
    );
    histogram(
        out,
        "fenestra_repl_ack_lag_us",
        "Leader: ship to applied-and-durable-on-follower ack latency (microseconds)",
        &[(None, r.ack_lag_us.snapshot())],
    );
    histogram(
        out,
        "fenestra_repl_apply_us",
        "Follower: time to apply one shipped batch, local WAL append + fsync + store apply (microseconds)",
        &[(None, r.apply_us.snapshot())],
    );
}

/// Per-shard engine counters, `shard` labeled, `_total` suffixed.
fn engine_counters(out: &mut String, obs: &PipelineObs) {
    let counters: Vec<fenestra_obs::EngineCounters> =
        obs.shards.iter().map(|sh| sh.engine.load()).collect();
    let families: [ShardFamily<fenestra_obs::EngineCounters>; 10] = [
        (
            "fenestra_engine_events_total",
            "Events applied by the engine",
            |c| c.events,
        ),
        (
            "fenestra_engine_late_dropped_total",
            "Events dropped as late",
            |c| c.late_dropped,
        ),
        ("fenestra_engine_rule_fired_total", "Rule firings", |c| {
            c.rule_fired
        }),
        (
            "fenestra_engine_transitions_total",
            "State transitions applied",
            |c| c.transitions,
        ),
        (
            "fenestra_engine_guard_blocked_total",
            "Rule firings blocked by guards",
            |c| c.guard_blocked,
        ),
        (
            "fenestra_engine_rule_errors_total",
            "Rule evaluation errors",
            |c| c.rule_errors,
        ),
        (
            "fenestra_engine_reason_asserted_total",
            "Facts asserted by the reasoner",
            |c| c.reason_asserted,
        ),
        (
            "fenestra_engine_reason_retracted_total",
            "Facts retracted by the reasoner",
            |c| c.reason_retracted,
        ),
        (
            "fenestra_engine_reason_syncs_total",
            "Reasoner sync passes",
            |c| c.reason_syncs,
        ),
        (
            "fenestra_engine_ttl_expired_total",
            "Open facts expired by TTL",
            |c| c.ttl_expired,
        ),
    ];
    for (name, help, get) in families {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} counter");
        for (i, c) in counters.iter().enumerate() {
            let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden: exact exposition for one histogram family across two
    /// shards, pinning label syntax, cumulative buckets, log2 `le`
    /// bounds, the empty-series shape, and `_sum`/`_count`.
    #[test]
    fn histogram_exposition_matches_golden() {
        let obs = PipelineObs::new(2);
        // shard 0: values 0, 1, 3 → buckets 0 (le 0), 1 (le 1), 2 (le 3).
        obs.shards[0].queue_wait_us.record(0);
        obs.shards[0].queue_wait_us.record(1);
        obs.shards[0].queue_wait_us.record(3);
        // shard 1: empty.
        let series: Vec<(Option<usize>, HistogramSnapshot)> = obs
            .shards
            .iter()
            .enumerate()
            .map(|(i, sh)| (Some(i), sh.queue_wait_us.snapshot()))
            .collect();
        let mut out = String::new();
        histogram(
            &mut out,
            "fenestra_stage_queue_wait_us",
            "Time an ingest command waited in its shard queue before dequeue (microseconds)",
            &series,
        );
        let golden = "\
# HELP fenestra_stage_queue_wait_us Time an ingest command waited in its shard queue before dequeue (microseconds)
# TYPE fenestra_stage_queue_wait_us histogram
fenestra_stage_queue_wait_us_bucket{shard=\"0\",le=\"0\"} 1
fenestra_stage_queue_wait_us_bucket{shard=\"0\",le=\"1\"} 2
fenestra_stage_queue_wait_us_bucket{shard=\"0\",le=\"3\"} 3
fenestra_stage_queue_wait_us_bucket{shard=\"0\",le=\"+Inf\"} 3
fenestra_stage_queue_wait_us_sum{shard=\"0\"} 4
fenestra_stage_queue_wait_us_count{shard=\"0\"} 3
fenestra_stage_queue_wait_us_bucket{shard=\"1\",le=\"+Inf\"} 0
fenestra_stage_queue_wait_us_sum{shard=\"1\"} 0
fenestra_stage_queue_wait_us_count{shard=\"1\"} 0
";
        assert_eq!(out, golden);
    }

    /// The full render parses line-by-line as Prometheus text: every
    /// non-comment line is `name{labels} value`, every histogram's
    /// `+Inf` bucket equals its `_count`, and every expected family is
    /// present.
    #[test]
    fn full_render_is_parseable_and_consistent() {
        let m = ServerMetrics::default();
        m.events.fetch_add(12, Ordering::Relaxed);
        m.acks_deferred.fetch_add(4, Ordering::Relaxed);
        m.acks_released.fetch_add(4, Ordering::Relaxed);
        let obs = PipelineObs::new(3);
        obs.admit_us.record(7);
        for (i, sh) in obs.shards.iter().enumerate() {
            for stage in STAGES {
                sh.stage(stage).record(1 << i);
            }
            sh.observe_queue_depth(i as u64 + 1);
            // The last bucket folds into +Inf rather than printing
            // le="18446744073709551615".
            sh.wal.fsync_us.record(u64::MAX);
        }
        obs.plan.compile_us.record(40);
        obs.plan.exec_us.record(9);
        let plans = CacheStats {
            hits: 5,
            misses: 2,
            entries: 2,
        };
        let body = render_prometheus(&m, &obs, &plans);
        assert!(!body.contains("18446744073709551615"));
        let mut counts: std::collections::HashMap<String, u64> = Default::default();
        let mut infs: std::collections::HashMap<String, u64> = Default::default();
        for line in body.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            value
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("bad value in: {line}"));
            let name = series.split('{').next().unwrap();
            assert!(
                name.chars()
                    .all(|ch| ch.is_ascii_alphanumeric() || ch == '_'),
                "bad metric name in: {line}"
            );
            if series.contains("le=\"+Inf\"") {
                let base = name
                    .strip_suffix("_bucket")
                    .expect("+Inf outside histogram");
                let key = format!("{base}|{}", series_labels_minus_le(series));
                *infs.entry(key).or_default() = value.parse().unwrap();
            }
            if let Some(base) = name.strip_suffix("_count") {
                let key = format!("{base}|{}", series_labels_minus_le(series));
                *counts.entry(key).or_default() = value.parse().unwrap();
            }
        }
        assert!(!counts.is_empty() && counts.len() == infs.len());
        for (key, n) in &counts {
            assert_eq!(infs.get(key), Some(n), "{key}: +Inf bucket != _count");
        }
        for fam in [
            "fenestra_server_events_total 12",
            "fenestra_server_acks_deferred_total 4",
            "fenestra_server_acks_released_total 4",
            "fenestra_shard_queue_depth{shard=\"2\"} 3",
            "fenestra_shard_queue_hwm{shard=\"1\"} 2",
            "fenestra_engine_events_total{shard=\"0\"} 0",
            "fenestra_stage_admit_us_count 1",
            "fenestra_server_conns_open 0",
            "fenestra_server_conns_binary 0",
            "fenestra_stage_decode_us_count 0",
            "fenestra_stage_reactor_dispatch_us_count 0",
            "fenestra_late_margin_ms_count{shard=\"0\"} 1",
            "fenestra_stage_fsync_us_bucket{shard=\"0\",le=\"+Inf\"} 2",
            "fenestra_plan_cache_hits_total 5",
            "fenestra_plan_cache_misses_total 2",
            "fenestra_plan_cache_entries 2",
            "fenestra_plan_compile_us_count 1",
            "fenestra_plan_exec_us_count 1",
            "fenestra_plan_exec_us_sum 9",
        ] {
            assert!(body.contains(fam), "missing `{fam}` in:\n{body}");
        }
    }

    /// Golden: the plan-cache family block, pinning names, types, and
    /// the histogram shape of the planner latency series.
    #[test]
    fn plan_metrics_exposition_matches_golden() {
        let obs = PipelineObs::new(1);
        // values 0 and 1 → buckets le="0" and le="1", cumulative.
        obs.plan.exec_us.record(0);
        obs.plan.exec_us.record(1);
        let plans = CacheStats {
            hits: 7,
            misses: 3,
            entries: 3,
        };
        let mut out = String::new();
        plan_metrics(&mut out, &obs, &plans);
        let golden = "\
# HELP fenestra_plan_cache_hits_total Query statements served by an already-compiled plan
# TYPE fenestra_plan_cache_hits_total counter
fenestra_plan_cache_hits_total 7
# HELP fenestra_plan_cache_misses_total Query statements that ran the planner (parse, rewrite, lower)
# TYPE fenestra_plan_cache_misses_total counter
fenestra_plan_cache_misses_total 3
# HELP fenestra_plan_cache_entries Distinct statements currently held in the plan cache
# TYPE fenestra_plan_cache_entries gauge
fenestra_plan_cache_entries 3
# HELP fenestra_plan_compile_us Time compiling one statement into a physical plan, recorded on cache misses (microseconds)
# TYPE fenestra_plan_compile_us histogram
fenestra_plan_compile_us_bucket{le=\"+Inf\"} 0
fenestra_plan_compile_us_sum 0
fenestra_plan_compile_us_count 0
# HELP fenestra_plan_exec_us Time executing one compiled plan end to end, fan-out and merge included (microseconds)
# TYPE fenestra_plan_exec_us histogram
fenestra_plan_exec_us_bucket{le=\"0\"} 1
fenestra_plan_exec_us_bucket{le=\"1\"} 2
fenestra_plan_exec_us_bucket{le=\"+Inf\"} 2
fenestra_plan_exec_us_sum 1
fenestra_plan_exec_us_count 2
";
        assert_eq!(out, golden);
    }

    /// Strip the `le` label so bucket series pair with their family's
    /// `_sum`/`_count` (which carry only the shard label).
    fn series_labels_minus_le(series: &str) -> String {
        match series.split_once('{') {
            None => String::new(),
            Some((_, rest)) => rest
                .trim_end_matches('}')
                .split(',')
                .filter(|kv| !kv.starts_with("le="))
                .collect::<Vec<_>>()
                .join(","),
        }
    }
}
