//! Wire protocol: line-delimited JSON requests and replies.
//!
//! Parsing and serialization only — no I/O. The server and the
//! integration tests share these builders so the protocol is defined
//! in exactly one place.

use fenestra_base::error::{Error, Result};
use fenestra_base::record::Event;
use fenestra_base::value::Value;
use fenestra_core::{QueryResult, WatchDelta};
use fenestra_temporal::{Provenance, TemporalStore};
use fenestra_wire::value_to_json;
use serde_json::{Map, Value as Json};

/// One parsed client request.
#[derive(Debug)]
pub enum Request {
    /// An event to ingest (any object without a `"cmd"` or `"op"` key).
    Event(Event),
    /// `{"op":"ingest","events":[{…},…]}` — a batch of events in one
    /// frame, acked once (`{"ok":true,"seq":L,"count":K}`). Amortizes
    /// syscalls and JSON framing over the batch; the whole frame is
    /// admitted (or shed) atomically. Only a `"op":"ingest"` object
    /// *without* a `"stream"` key is a batch frame: an event can still
    /// carry its own `op` field (even `"ingest"`) because an event
    /// always carries `stream`.
    Batch(Vec<Event>),
    /// `{"cmd":"query","q":"select …"}` — run a query, reply once.
    Query {
        /// Query text.
        text: String,
    },
    /// `{"cmd":"watch","name":"…","q":"select …"}` — register a
    /// standing query; deltas are pushed to this connection.
    Watch {
        /// Subscription name (echoed in every delta).
        name: String,
        /// Query text (`history` queries are rejected).
        text: String,
    },
    /// `{"cmd":"stats"}` — engine + server counters, stage-latency
    /// histograms, and per-shard gauges. Served lock-light from the
    /// connection thread (no shard round-trip), so a stats reply is
    /// **not** a processing barrier — use [`Request::Sync`] for that.
    Stats,
    /// `{"cmd":"sync"}` — a processing barrier: the reply
    /// (`{"ok":true,"synced":true}`) is sent only after every shard
    /// has processed every command admitted before this one on this
    /// connection (FIFO shard queues make the fan-out round-trip a
    /// proof of processing).
    Sync,
    /// `{"cmd":"shutdown"}` — drain, snapshot, exit.
    Shutdown,
    /// `{"cmd":"promote"}` — on a follower, stop following, bump the
    /// fencing epoch, and start serving ingest as the new leader.
    /// Errors on a server that is not following anyone.
    Promote,
}

/// Parse one request line. Objects carrying a `"cmd"` key are
/// commands; `{"op":"ingest",…}` *without* a `"stream"` key is a batch
/// frame (an event always carries `stream`, so events keep their
/// schema-free field namespace — including an `op` field); everything
/// else must parse as an event.
pub fn parse_request(line: &str) -> Result<Request> {
    let json: Json =
        serde_json::from_str(line).map_err(|e| Error::Invalid(format!("bad JSON request: {e}")))?;
    let Some(cmd) = json.get("cmd") else {
        if json.get("op").and_then(Json::as_str) == Some("ingest") && json.get("stream").is_none() {
            return parse_batch(json);
        }
        return fenestra_wire::event_from_json(line).map(Request::Event);
    };
    let Some(cmd) = cmd.as_str() else {
        return Err(Error::Invalid("`cmd` must be a string".into()));
    };
    let text_field = |json: &Json| -> Result<String> {
        json.get("q")
            .or_else(|| json.get("query"))
            .or_else(|| json.get("sql"))
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| Error::Invalid(format!("`{cmd}` needs a `q` field with query text")))
    };
    match cmd {
        "query" => Ok(Request::Query {
            text: text_field(&json)?,
        }),
        "watch" => {
            let name = json
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| Error::Invalid("`watch` needs a `name` field".into()))?
                .to_owned();
            Ok(Request::Watch {
                name,
                text: text_field(&json)?,
            })
        }
        "stats" => Ok(Request::Stats),
        "sync" => Ok(Request::Sync),
        "shutdown" => Ok(Request::Shutdown),
        "promote" => Ok(Request::Promote),
        other => Err(Error::Invalid(format!(
            "unknown command `{other}` (expected query, watch, stats, sync, promote, or shutdown)"
        ))),
    }
}

/// The commands the JSONL plane understands (`"cmd"` values).
pub const SUPPORTED_COMMANDS: [&str; 6] =
    ["query", "watch", "stats", "sync", "promote", "shutdown"];

/// The frame-level operations (`"op"` values on stream-less objects).
pub const SUPPORTED_OPS: [&str; 1] = ["ingest"];

/// If `line` is a request with an unrecognized `cmd` (or a stream-less
/// object with an unrecognized `op`), build the structured error reply
/// `{"ok":false,"error":"unknown command \`x\`","supported":[…]}` so
/// clients can discover the protocol from the rejection itself.
/// Returns `None` for every other kind of bad line (the caller falls
/// back to the plain [`error`] reply).
pub fn unknown_reply(line: &str) -> Option<String> {
    let json: Json = serde_json::from_str(line).ok()?;
    let (label, value, supported): (&str, &str, &[&str]) = match json.get("cmd") {
        Some(cmd) => {
            let cmd = cmd.as_str()?;
            if SUPPORTED_COMMANDS.contains(&cmd) {
                return None;
            }
            ("command", cmd, &SUPPORTED_COMMANDS)
        }
        None => {
            let op = json.get("op")?.as_str()?;
            if SUPPORTED_OPS.contains(&op) || json.get("stream").is_some() {
                // `op` is a legitimate event field once `stream` is
                // present; only stream-less frames have a frame op.
                return None;
            }
            ("op", op, &SUPPORTED_OPS)
        }
    };
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(false));
    obj.insert(
        "error".into(),
        Json::from(format!("unknown {label} `{value}`")),
    );
    obj.insert(
        "supported".into(),
        Json::Array(supported.iter().map(|s| Json::from(*s)).collect()),
    );
    Some(Json::Object(obj).to_string())
}

/// Parse a `{"op":"ingest","events":[…]}` batch frame. Errors name the
/// offending element so a client can find the bad event in its batch.
fn parse_batch(json: Json) -> Result<Request> {
    let Json::Object(mut obj) = json else {
        unreachable!("callers check `op` on an object");
    };
    let events = obj.remove("events").ok_or_else(|| {
        Error::Invalid(
            "batch ingest needs an `events` array \
             (to ingest a plain event with an `op` field, include `stream`)"
                .into(),
        )
    })?;
    let Json::Array(items) = events else {
        return Err(Error::Invalid("`events` must be an array of events".into()));
    };
    items
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            fenestra_wire::event_from_json_value(v)
                .map_err(|e| Error::Invalid(format!("batch event {i}: {e}")))
        })
        .collect::<Result<Vec<Event>>>()
        .map(Request::Batch)
}

// ----- reply builders -------------------------------------------------------

/// `{"ok":true,"seq":N}` — event accepted.
///
/// What the ack *means* depends on the server's durability config.
/// Without a WAL, or with a lazy fsync policy, it means **admitted**
/// into the ingest queue — weaker than applied: an event past the
/// lateness bound is still acked and then discarded by the engine
/// (counted in the `stats` counter `server.late_dropped`). Under
/// `--fsync always` the ack is deferred until a WAL fsync covers the
/// event, so it means **durable** (though a late event is still
/// discarded, durably so). With `--max-lateness-ms > 0` that deferral
/// extends past the reorder buffer: the ack is withheld until the
/// watermark passes the frame — on an idle stream, until the next
/// event (or shutdown) advances it. To *prove* everything acked so
/// far has been processed, issue a `{"cmd":"sync"}` round-trip: its
/// reply visits every FIFO shard queue. (`stats` is no longer a
/// barrier — it reads atomics on the connection thread.) See the
/// crate docs ("Ack semantics and durability").
pub fn ack(seq: u64) -> String {
    format!("{{\"ok\":true,\"seq\":{seq}}}")
}

/// `{"ok":true,"seq":L,"count":K}` — batch frame of `count` events
/// accepted; `seq` is the sequence number of the batch's *last* event.
/// Same admitted-vs-durable semantics as [`ack`].
pub fn ack_batch(last_seq: u64, count: u64) -> String {
    format!("{{\"ok\":true,\"seq\":{last_seq},\"count\":{count}}}")
}

/// `{"ok":false,"seq":N,"error":…}` — event(s) shed under
/// backpressure. A shed batch frame carries a `count` field; the whole
/// frame was dropped (batch admission is atomic).
pub fn shed(seq: u64, count: u64) -> String {
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(false));
    obj.insert("seq".into(), Json::from(seq));
    if count > 1 {
        obj.insert("count".into(), Json::from(count));
    }
    obj.insert("error".into(), Json::from("shed: ingest queue full"));
    Json::Object(obj).to_string()
}

/// `{"ok":false,"error":…}` — request failed.
pub fn error(msg: &str) -> String {
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(false));
    obj.insert("error".into(), Json::from(msg));
    Json::Object(obj).to_string()
}

/// `{"ok":true,"watch":NAME}` — watch registered.
pub fn watch_ack(name: &str) -> String {
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(true));
    obj.insert("watch".into(), Json::from(name));
    Json::Object(obj).to_string()
}

/// `{"ok":true,"bye":true}` — shutdown acknowledged.
pub fn bye() -> String {
    "{\"ok\":true,\"bye\":true}".into()
}

/// `{"ok":true,"synced":true}` — the `sync` barrier completed: every
/// command admitted before it (on this connection) has been processed
/// by its shard.
pub fn synced() -> String {
    "{\"ok\":true,\"synced\":true}".into()
}

/// Render a value for the wire, resolving entity ids to their
/// registered names (clients see `"a0"`, not an opaque `"#3"`).
fn resolved(v: &Value, store: Option<&TemporalStore>) -> Json {
    if let (Value::Id(e), Some(s)) = (v, store) {
        if let Some(name) = s.entity_name(*e) {
            return Json::from(name.as_str());
        }
    }
    value_to_json(v)
}

/// Successful query reply: `{"ok":true,"rows":[…]}` for select
/// queries, `{"ok":true,"history":[…]}` for timelines.
pub fn query_reply(res: &QueryResult, store: Option<&TemporalStore>) -> String {
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(true));
    match res {
        QueryResult::Rows(rows) => {
            let rows: Vec<Json> = rows
                .iter()
                .map(|row| {
                    let mut o = Map::new();
                    for (name, v) in row {
                        o.insert(name.as_str().into(), resolved(v, store));
                    }
                    Json::Object(o)
                })
                .collect();
            obj.insert("rows".into(), Json::Array(rows));
        }
        QueryResult::History(spans) => {
            let spans: Vec<Json> = spans
                .iter()
                .map(|(iv, v, prov)| {
                    let mut o = Map::new();
                    o.insert("start".into(), Json::from(iv.start.millis()));
                    o.insert(
                        "end".into(),
                        iv.end.map_or(Json::Null, |t| Json::from(t.millis())),
                    );
                    o.insert("value".into(), resolved(v, store));
                    o.insert(
                        "provenance".into(),
                        Json::from(match prov {
                            Provenance::External => "external".to_string(),
                            Provenance::Rule(r) => format!("rule:{}", r.as_str()),
                            Provenance::Derived(r) => format!("derived:{}", r.as_str()),
                        }),
                    );
                    Json::Object(o)
                })
                .collect();
            obj.insert("history".into(), Json::Array(spans));
        }
    }
    Json::Object(obj).to_string()
}

/// One pushed view change: `{"watch":NAME,"sign":±1,"row":{…}}`.
pub fn delta_line(d: &WatchDelta, store: Option<&TemporalStore>) -> String {
    let mut obj = Map::new();
    obj.insert("watch".into(), Json::from(d.watch.as_str()));
    obj.insert("sign".into(), Json::Number(d.sign.into()));
    let mut row = Map::new();
    for (name, v) in &d.row {
        row.insert(name.as_str().into(), resolved(v, store));
    }
    obj.insert("row".into(), Json::Object(row));
    Json::Object(obj).to_string()
}

/// `EXPLAIN` reply: the logical and physical plan trees as rendered
/// (newline-separated, two-space indent per level), plus which rewrite
/// rules fired and which dialect parsed the statement:
/// `{"ok":true,"explain":{"dialect":…,"logical":…,"physical":…,"rules":[…]}}`.
pub fn explain_reply(dialect: &str, logical: &str, physical: &str, rules: &[&str]) -> String {
    let mut explain = Map::new();
    explain.insert("dialect".into(), Json::from(dialect));
    explain.insert("logical".into(), Json::from(logical));
    explain.insert("physical".into(), Json::from(physical));
    explain.insert(
        "rules".into(),
        Json::Array(rules.iter().map(|r| Json::from(*r)).collect()),
    );
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(true));
    obj.insert("explain".into(), Json::Object(explain));
    Json::Object(obj).to_string()
}

/// `{"ok":true,"engine":{…},"server":{…}}`.
pub fn stats_reply(engine: Json, server: Json) -> String {
    let mut obj = Map::new();
    obj.insert("ok".into(), Json::Bool(true));
    obj.insert("engine".into(), engine);
    obj.insert("server".into(), server);
    Json::Object(obj).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::symbol::Symbol;
    use fenestra_base::time::{Interval, Timestamp};
    use fenestra_base::value::Value;

    #[test]
    fn events_and_commands_disambiguate() {
        assert!(matches!(
            parse_request(r#"{"stream":"s","ts":1,"x":2}"#).unwrap(),
            Request::Event(_)
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"stats"}"#).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"sync"}"#).unwrap(),
            Request::Sync
        ));
        assert!(matches!(
            parse_request(r#"{"cmd":"promote"}"#).unwrap(),
            Request::Promote
        ));
        let Request::Query { text } =
            parse_request(r#"{"cmd":"query","q":"select ?v where { ?v a 1 }"}"#).unwrap()
        else {
            panic!("expected query");
        };
        assert!(text.starts_with("select"));
        let Request::Watch { name, text } =
            parse_request(r#"{"cmd":"watch","name":"w","query":"select ?v where { ?v a 1 }"}"#)
                .unwrap()
        else {
            panic!("expected watch");
        };
        assert_eq!(name, "w");
        assert!(text.contains("where"), "accepts `query` as alias for `q`");
    }

    #[test]
    fn batch_frames_parse() {
        let Request::Batch(evs) = parse_request(
            r#"{"op":"ingest","events":[{"stream":"s","ts":1,"x":1},{"stream":"s","ts":2,"x":2}]}"#,
        )
        .unwrap() else {
            panic!("expected batch");
        };
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].ts, fenestra_base::time::Timestamp::new(2));
        // Empty batches are legal (acked with count 0, never enqueued).
        let Request::Batch(evs) = parse_request(r#"{"op":"ingest","events":[]}"#).unwrap() else {
            panic!("expected batch");
        };
        assert!(evs.is_empty());
        // An event whose *field* is named `op` with a non-"ingest"
        // value still parses as an event.
        assert!(matches!(
            parse_request(r#"{"stream":"s","ts":1,"op":"assert"}"#).unwrap(),
            Request::Event(_)
        ));
        // Even `op == "ingest"` stays an event field when the object
        // carries `stream`: only stream-less objects are batch frames.
        let Request::Event(ev) = parse_request(r#"{"stream":"s","ts":1,"op":"ingest"}"#).unwrap()
        else {
            panic!("expected event");
        };
        assert_eq!(
            ev.get("op"),
            Some(&fenestra_base::value::Value::str("ingest"))
        );
    }

    #[test]
    fn bad_batch_frames_error_with_element_index() {
        let err = parse_request(r#"{"op":"ingest","events":[{"stream":"s","ts":1},{"ts":2}]}"#)
            .unwrap_err();
        assert!(err.to_string().contains("batch event 1"), "{err}");
        assert!(
            parse_request(r#"{"op":"ingest"}"#).is_err(),
            "missing events"
        );
        assert!(
            parse_request(r#"{"op":"ingest","events":7}"#).is_err(),
            "events must be an array"
        );
    }

    #[test]
    fn sql_is_an_alias_for_q() {
        let Request::Query { text } =
            parse_request(r#"{"cmd":"query","sql":"SELECT entity FROM state"}"#).unwrap()
        else {
            panic!("expected query");
        };
        assert_eq!(text, "SELECT entity FROM state");
    }

    #[test]
    fn unknown_cmd_and_op_replies_are_structured() {
        let line = unknown_reply(r#"{"cmd":"frobnicate"}"#).expect("unknown cmd gets a reply");
        let v: Json = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        let msg = v.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("unknown command `frobnicate`"), "{msg}");
        let supported = v.get("supported").and_then(Json::as_array).unwrap();
        assert!(supported.iter().any(|s| s.as_str() == Some("query")));
        assert_eq!(supported.len(), SUPPORTED_COMMANDS.len());

        let line = unknown_reply(r#"{"op":"frobnicate"}"#).expect("unknown op gets a reply");
        let v: Json = serde_json::from_str(&line).unwrap();
        let msg = v.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("unknown op `frobnicate`"), "{msg}");
        assert_eq!(
            v.get("supported").and_then(Json::as_array).unwrap().len(),
            SUPPORTED_OPS.len()
        );

        // Everything else falls back to the plain error reply.
        assert!(unknown_reply(r#"{"cmd":"query"}"#).is_none(), "known cmd");
        assert!(unknown_reply(r#"{"op":"ingest"}"#).is_none(), "known op");
        assert!(
            unknown_reply(r#"{"stream":"s","op":"assert"}"#).is_none(),
            "event-field op"
        );
        assert!(unknown_reply("nope").is_none(), "not json");
        assert!(unknown_reply(r#"{"cmd":1}"#).is_none(), "non-string cmd");
    }

    #[test]
    fn bad_requests_error() {
        assert!(parse_request("nope").is_err());
        assert!(parse_request(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(parse_request(r#"{"cmd":"query"}"#).is_err(), "missing q");
        assert!(
            parse_request(r#"{"cmd":"watch","q":"x"}"#).is_err(),
            "missing name"
        );
        assert!(parse_request(r#"{"cmd":1}"#).is_err());
        // No `cmd` key → must be an event, and this one is invalid.
        assert!(parse_request(r#"{"stream":"s"}"#).is_err());
    }

    #[test]
    fn replies_are_valid_json() {
        for line in [
            ack(3),
            ack_batch(9, 4),
            shed(4, 1),
            shed(12, 8),
            error("boom \"quoted\""),
            watch_ack("w"),
            bye(),
            synced(),
            stats_reply(Json::Null, Json::Null),
        ] {
            serde_json::from_str(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let v = serde_json::from_str(&ack(3)).unwrap();
        assert_eq!(v.get("seq").and_then(|x| x.as_u64()), Some(3));
        let v = serde_json::from_str(&ack_batch(9, 4)).unwrap();
        assert_eq!(v.get("seq").and_then(|x| x.as_u64()), Some(9));
        assert_eq!(v.get("count").and_then(|x| x.as_u64()), Some(4));
        let v = serde_json::from_str(&shed(12, 8)).unwrap();
        assert_eq!(v.get("count").and_then(|x| x.as_u64()), Some(8));
    }

    #[test]
    fn query_reply_shapes() {
        let rows = QueryResult::Rows(vec![vec![
            (Symbol::intern("v"), Value::str("lobby")),
            (Symbol::intern("n"), Value::Int(2)),
        ]]);
        let v = serde_json::from_str(&query_reply(&rows, None)).unwrap();
        let row = &v.get("rows").and_then(|r| r.as_array()).unwrap()[0];
        assert_eq!(row.get("v").and_then(|x| x.as_str()), Some("lobby"));
        assert_eq!(row.get("n").and_then(|x| x.as_i64()), Some(2));

        let hist = QueryResult::History(vec![(
            Interval {
                start: Timestamp::new(5),
                end: None,
            },
            Value::Int(1),
            Provenance::Rule(Symbol::intern("r")),
        )]);
        let v = serde_json::from_str(&query_reply(&hist, None)).unwrap();
        let span = &v.get("history").and_then(|h| h.as_array()).unwrap()[0];
        assert_eq!(span.get("start").and_then(|x| x.as_u64()), Some(5));
        assert!(span.get("end").unwrap().is_null());
        assert_eq!(
            span.get("provenance").and_then(|x| x.as_str()),
            Some("rule:r")
        );
    }

    #[test]
    fn delta_line_shape() {
        let d = WatchDelta {
            watch: Symbol::intern("lab"),
            sign: -1,
            row: vec![(Symbol::intern("u"), Value::str("alice"))],
        };
        let v = serde_json::from_str(&delta_line(&d, None)).unwrap();
        assert_eq!(v.get("watch").and_then(|x| x.as_str()), Some("lab"));
        assert_eq!(v.get("sign").and_then(|x| x.as_i64()), Some(-1));
        assert_eq!(
            v.get("row")
                .and_then(|r| r.get("u"))
                .and_then(|x| x.as_str()),
            Some("alice")
        );
    }
}
