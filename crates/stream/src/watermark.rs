//! Event-time watermark generation with bounded out-of-orderness.

use fenestra_base::time::{Duration, Timestamp};

/// Watermark policy: how the executor derives watermarks from observed
/// event times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatermarkPolicy {
    /// Maximum tolerated out-of-orderness. The watermark trails the
    /// greatest observed event time by this much; events older than the
    /// current watermark are *late* and dropped (counted).
    pub max_lateness: Duration,
}

impl Default for WatermarkPolicy {
    fn default() -> Self {
        WatermarkPolicy {
            max_lateness: Duration::ZERO,
        }
    }
}

impl WatermarkPolicy {
    /// Perfectly ordered input: watermark equals the max event time.
    pub fn strict() -> WatermarkPolicy {
        WatermarkPolicy::default()
    }

    /// Tolerate events up to `lateness` behind the stream head.
    pub fn bounded(lateness: Duration) -> WatermarkPolicy {
        WatermarkPolicy {
            max_lateness: lateness,
        }
    }
}

/// Tracks observed event times and produces monotone watermarks.
#[derive(Debug, Clone)]
pub struct WatermarkGenerator {
    policy: WatermarkPolicy,
    max_seen: Option<Timestamp>,
    current: Option<Timestamp>,
    /// Events that arrived with `ts < watermark`.
    pub late_events: u64,
}

impl WatermarkGenerator {
    /// New generator under `policy`.
    pub fn new(policy: WatermarkPolicy) -> WatermarkGenerator {
        WatermarkGenerator {
            policy,
            max_seen: None,
            current: None,
            late_events: 0,
        }
    }

    /// The current watermark, if any event has been observed.
    pub fn current(&self) -> Option<Timestamp> {
        self.current
    }

    /// The greatest event time observed so far (the stream head).
    /// `max_seen - current` is the watermark lag, which settles at the
    /// policy's lateness bound once the stream is flowing.
    pub fn max_seen(&self) -> Option<Timestamp> {
        self.max_seen
    }

    /// Observe an event time. Returns `None` if the event is late
    /// (should be dropped), otherwise `Some(advanced)` where `advanced`
    /// carries a new watermark if it moved.
    pub fn observe(&mut self, ts: Timestamp) -> Option<Option<Timestamp>> {
        if let Some(wm) = self.current {
            if ts < wm {
                self.late_events += 1;
                return None;
            }
        }
        let max = match self.max_seen {
            Some(m) if m >= ts => m,
            _ => {
                self.max_seen = Some(ts);
                ts
            }
        };
        let candidate = max.saturating_sub(self.policy.max_lateness);
        if self.current.is_none_or(|c| candidate > c) {
            self.current = Some(candidate);
            Some(Some(candidate))
        } else {
            Some(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn strict_policy_tracks_max() {
        let mut g = WatermarkGenerator::new(WatermarkPolicy::strict());
        assert_eq!(g.observe(ts(5)), Some(Some(ts(5))));
        assert_eq!(g.observe(ts(9)), Some(Some(ts(9))));
        // Equal time is not late, no watermark move.
        assert_eq!(g.observe(ts(9)), Some(None));
        // Older than watermark: late.
        assert_eq!(g.observe(ts(8)), None);
        assert_eq!(g.late_events, 1);
    }

    #[test]
    fn bounded_policy_trails_head() {
        let mut g = WatermarkGenerator::new(WatermarkPolicy::bounded(Duration::millis(10)));
        assert_eq!(g.observe(ts(5)), Some(Some(ts(0))), "saturates at zero");
        assert_eq!(g.observe(ts(25)), Some(Some(ts(15))));
        // 17 is within lateness bound (>= wm 15): accepted, no move.
        assert_eq!(g.observe(ts(17)), Some(None));
        // 14 < wm 15: late.
        assert_eq!(g.observe(ts(14)), None);
        assert_eq!(g.current(), Some(ts(15)));
    }

    #[test]
    fn watermark_is_monotone() {
        let mut g = WatermarkGenerator::new(WatermarkPolicy::bounded(Duration::millis(5)));
        let mut last = Timestamp::ZERO;
        for t in [3u64, 10, 7, 20, 18, 30] {
            if let Some(Some(wm)) = g.observe(ts(t)) {
                assert!(wm >= last);
                last = wm;
            }
        }
        assert_eq!(g.current(), Some(ts(25)));
    }
}
