//! Executor-level counters.

/// Counters describing an executor run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutorMetrics {
    /// Events accepted (not late).
    pub events_in: u64,
    /// Events dropped because they arrived behind the watermark.
    pub late_dropped: u64,
    /// Watermark advances broadcast to the graph.
    pub watermarks: u64,
}

impl ExecutorMetrics {
    /// Fraction of arriving events that were dropped as late.
    pub fn late_fraction(&self) -> f64 {
        let total = self.events_in + self.late_dropped;
        if total == 0 {
            0.0
        } else {
            self.late_dropped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_fraction() {
        let m = ExecutorMetrics {
            events_in: 9,
            late_dropped: 1,
            watermarks: 5,
        };
        assert!((m.late_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(ExecutorMetrics::default().late_fraction(), 0.0);
    }
}
