//! The dataflow graph: nodes, edges, sources, and sinks.

use crate::operator::{Emitter, Operator};
use fenestra_base::error::{Error, Result};
use fenestra_base::record::{Event, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identifier of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

pub(crate) struct Node {
    pub(crate) op: Box<dyn Operator>,
    pub(crate) downstream: Vec<NodeId>,
    pub(crate) events_in: u64,
    pub(crate) events_out: u64,
}

/// Handle to a sink node: a shared buffer collecting every event that
/// reaches it.
#[derive(Clone)]
pub struct SinkHandle {
    /// The sink's node id (connect upstream operators to it).
    pub node: NodeId,
    buf: Arc<Mutex<Vec<Event>>>,
}

impl SinkHandle {
    /// Take all collected events, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.buf.lock().expect("sink lock"))
    }

    /// Number of collected events without consuming them.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("sink lock").len()
    }

    /// Whether the sink holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct SinkOp {
    buf: Arc<Mutex<Vec<Event>>>,
}

impl Operator for SinkOp {
    fn name(&self) -> &'static str {
        "sink"
    }
    fn on_event(&mut self, ev: &Event, _out: &mut Emitter) {
        self.buf.lock().expect("sink lock").push(ev.clone());
    }
}

/// A directed acyclic dataflow graph.
///
/// Build it by adding operators ([`Graph::add_op`]), wiring edges
/// ([`Graph::connect`]), binding input streams to entry nodes
/// ([`Graph::connect_source`]), and attaching sinks
/// ([`Graph::add_sink`]). Then hand it to an
/// [`crate::executor::Executor`].
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    pub(crate) sources: HashMap<StreamId, Vec<NodeId>>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Add an operator node.
    pub fn add_op(&mut self, op: impl Operator + 'static) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            op: Box::new(op),
            downstream: Vec::new(),
            events_in: 0,
            events_out: 0,
        });
        id
    }

    /// Add a sink node and return its handle.
    pub fn add_sink(&mut self) -> SinkHandle {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let node = self.add_op(SinkOp { buf: buf.clone() });
        SinkHandle { node, buf }
    }

    /// Route events arriving on `stream` to `node`.
    pub fn connect_source(&mut self, stream: impl Into<StreamId>, node: NodeId) {
        self.sources.entry(stream.into()).or_default().push(node);
    }

    /// Wire `from`'s output into `to`'s input.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        self.nodes[from.0].downstream.push(to);
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The streams this graph listens to.
    pub fn input_streams(&self) -> Vec<Symbol> {
        let mut v: Vec<Symbol> = self.sources.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Validate the graph: every edge target exists (guaranteed by
    /// construction) and the graph is acyclic. Returns a topological
    /// order over all nodes.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        for node in &self.nodes {
            for d in &node.downstream {
                indeg[d.0] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(NodeId(i));
            for d in &self.nodes[i].downstream {
                indeg[d.0] -= 1;
                if indeg[d.0] == 0 {
                    queue.push(d.0);
                }
            }
        }
        if order.len() != n {
            return Err(Error::Invalid("dataflow graph contains a cycle".into()));
        }
        order.sort_unstable(); // stable deterministic order; any topological
                               // refinement works because delivery is
                               // push-driven, not order-driven
        Ok(order)
    }

    pub(crate) fn deliver(&mut self, roots: &[NodeId], ev: &Event) {
        // Iterative DFS with an explicit stack of (node, event) pairs.
        let mut stack: Vec<(NodeId, Event)> = roots.iter().map(|&r| (r, ev.clone())).collect();
        let mut emitter = Emitter::new();
        while let Some((nid, event)) = stack.pop() {
            let node = &mut self.nodes[nid.0];
            node.events_in += 1;
            node.op.on_event(&event, &mut emitter);
            let outputs = emitter.drain();
            node.events_out += outputs.len() as u64;
            let downstream = node.downstream.clone();
            for out_ev in outputs {
                for &d in &downstream {
                    stack.push((d, out_ev.clone()));
                }
            }
        }
    }

    pub(crate) fn broadcast_watermark(&mut self, wm: Timestamp, order: &[NodeId]) {
        self.broadcast(order, |op, out| op.on_watermark(wm, out));
    }

    pub(crate) fn broadcast_flush(&mut self, at: Timestamp, order: &[NodeId]) {
        self.broadcast(order, |op, out| op.on_flush(at, out));
    }

    /// Invoke `f` on every node in topological order, forwarding
    /// whatever each node emits to its downstream nodes as ordinary
    /// events before the next node in the order is visited.
    fn broadcast(&mut self, order: &[NodeId], mut f: impl FnMut(&mut dyn Operator, &mut Emitter)) {
        let mut emitter = Emitter::new();
        for &nid in order {
            let node = &mut self.nodes[nid.0];
            f(node.op.as_mut(), &mut emitter);
            let outputs = emitter.drain();
            node.events_out += outputs.len() as u64;
            let downstream = node.downstream.clone();
            for ev in outputs {
                self.deliver(&downstream, &ev);
            }
        }
    }

    /// Per-node `(name, events_in, events_out)` counters.
    pub fn node_metrics(&self) -> Vec<(&'static str, u64, u64)> {
        self.nodes
            .iter()
            .map(|n| (n.op.name(), n.events_in, n.events_out))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::record::Record;

    struct Pass;
    impl Operator for Pass {
        fn name(&self) -> &'static str {
            "pass"
        }
        fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
            out.emit(ev.clone());
        }
    }

    #[test]
    fn build_and_topo() {
        let mut g = Graph::new();
        let a = g.add_op(Pass);
        let b = g.add_op(Pass);
        let c = g.add_op(Pass);
        g.connect(a, b);
        g.connect(b, c);
        g.connect(a, c);
        let order = g.topo_order().unwrap();
        assert_eq!(order.len(), 3);
        let pos = |n: NodeId| order.iter().position(|x| *x == n).unwrap();
        assert!(pos(a) < pos(b) && pos(b) < pos(c));
    }

    #[test]
    fn cycle_detected() {
        let mut g = Graph::new();
        let a = g.add_op(Pass);
        let b = g.add_op(Pass);
        g.connect(a, b);
        g.connect(b, a);
        assert!(g.topo_order().is_err());
    }

    #[test]
    fn deliver_reaches_sink_through_chain() {
        let mut g = Graph::new();
        let a = g.add_op(Pass);
        let b = g.add_op(Pass);
        g.connect(a, b);
        let sink = g.add_sink();
        g.connect(b, sink.node);
        let ev = Event::new("s", 3u64, Record::from_pairs([("x", 1i64)]));
        g.deliver(&[a], &ev);
        let got = sink.take();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], ev);
        assert!(sink.is_empty());
    }

    #[test]
    fn fan_out_duplicates_to_both_sinks() {
        let mut g = Graph::new();
        let a = g.add_op(Pass);
        let s1 = g.add_sink();
        let s2 = g.add_sink();
        g.connect(a, s1.node);
        g.connect(a, s2.node);
        let ev = Event::new("s", 1u64, Record::new());
        g.deliver(&[a], &ev);
        assert_eq!(s1.len(), 1);
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn metrics_count_events() {
        let mut g = Graph::new();
        let a = g.add_op(Pass);
        let sink = g.add_sink();
        g.connect(a, sink.node);
        for i in 0..5u64 {
            g.deliver(&[a], &Event::new("s", i, Record::new()));
        }
        let m = g.node_metrics();
        assert_eq!(m[0], ("pass", 5, 5));
        assert_eq!(m[1], ("sink", 5, 0));
    }
}
