//! Windowed stream–stream equi-join.
//!
//! This is the operator the paper's §3.1 case study says becomes
//! necessary (and awkward) when state-like data — e.g. product
//! classification updates — must be processed *as a stream*: to join
//! sales with classifications, the classification side has to be kept
//! in a time window, and any classification older than the window is
//! lost. Experiment E3 measures exactly that failure mode against the
//! stream–state join in [`crate::ops::state`].

use crate::operator::{Emitter, Operator};
use fenestra_base::record::{Event, FieldId, Record, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Timestamp};
use fenestra_base::value::Value;
use std::collections::{BTreeMap, HashMap};

/// Which side of the join an input stream feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// The probe side (e.g. sales).
    Left,
    /// The build side (e.g. classification updates).
    Right,
}

struct SideState {
    /// key value → (ts, seq) → record.
    by_key: HashMap<Value, BTreeMap<(u64, u64), Record>>,
    seq: u64,
}

impl SideState {
    fn new() -> SideState {
        SideState {
            by_key: HashMap::new(),
            seq: 0,
        }
    }

    fn insert(&mut self, key: Value, ts: Timestamp, rec: Record) {
        let s = self.seq;
        self.seq += 1;
        self.by_key
            .entry(key)
            .or_default()
            .insert((ts.millis(), s), rec);
    }

    fn evict_before(&mut self, bound: Timestamp) {
        for m in self.by_key.values_mut() {
            while let Some((&k, _)) = m.first_key_value() {
                if k.0 < bound.millis() {
                    m.remove(&k);
                } else {
                    break;
                }
            }
        }
        self.by_key.retain(|_, m| !m.is_empty());
    }

    fn len(&self) -> usize {
        self.by_key.values().map(|m| m.len()).sum()
    }
}

/// Symmetric hash join over a sliding time window: an output is
/// produced for every pair of left/right events with equal keys whose
/// timestamps differ by less than `window`.
pub struct WindowJoin {
    left_stream: StreamId,
    right_stream: StreamId,
    left_key: FieldId,
    right_key: FieldId,
    window: Duration,
    out_stream: StreamId,
    left: SideState,
    right: SideState,
    /// Events on neither input stream, or lacking the key field.
    pub skipped: u64,
}

impl WindowJoin {
    /// Join `left_stream.left_key == right_stream.right_key` within
    /// `window`.
    pub fn new(
        left_stream: impl Into<Symbol>,
        left_key: impl Into<Symbol>,
        right_stream: impl Into<Symbol>,
        right_key: impl Into<Symbol>,
        window: Duration,
    ) -> WindowJoin {
        WindowJoin {
            left_stream: left_stream.into(),
            right_stream: right_stream.into(),
            left_key: left_key.into(),
            right_key: right_key.into(),
            window,
            out_stream: Symbol::intern("join"),
            left: SideState::new(),
            right: SideState::new(),
            skipped: 0,
        }
    }

    /// Name the output stream (chainable).
    pub fn out_stream(mut self, stream: impl Into<Symbol>) -> WindowJoin {
        self.out_stream = stream.into();
        self
    }

    /// Number of buffered events (memory proxy for E3).
    pub fn buffered(&self) -> usize {
        self.left.len() + self.right.len()
    }

    fn probe(&self, key: &Value, ev: &Event, side: JoinSide, out: &mut Emitter) {
        let other = match side {
            JoinSide::Left => &self.right,
            JoinSide::Right => &self.left,
        };
        let Some(candidates) = other.by_key.get(key) else {
            return;
        };
        let lo = ev.ts.saturating_sub(self.window).millis();
        let hi = ev.ts.saturating_add(self.window).millis();
        for ((_cts, _), crec) in candidates.range((lo, 0)..(hi.saturating_add(1), 0)) {
            // Merge: left fields first, right fields win on conflict.
            let (lrec, rrec) = match side {
                JoinSide::Left => (&ev.record, crec),
                JoinSide::Right => (crec, &ev.record),
            };
            let mut merged = lrec.clone();
            merged.merge(rrec);
            out.emit(Event::new(self.out_stream, ev.ts, merged));
        }
    }
}

impl Operator for WindowJoin {
    fn name(&self) -> &'static str {
        "window-join"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let (side, key_field) = if ev.stream == self.left_stream {
            (JoinSide::Left, self.left_key)
        } else if ev.stream == self.right_stream {
            (JoinSide::Right, self.right_key)
        } else {
            self.skipped += 1;
            return;
        };
        let Some(&key) = ev.record.get(key_field) else {
            self.skipped += 1;
            return;
        };
        self.probe(&key, ev, side, out);
        match side {
            JoinSide::Left => self.left.insert(key, ev.ts, ev.record.clone()),
            JoinSide::Right => self.right.insert(key, ev.ts, ev.record.clone()),
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emitter) {
        let _ = out;
        let bound = wm.saturating_sub(self.window);
        self.left.evict_before(bound);
        self.right.evict_before(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::graph::Graph;

    fn sale(ts: u64, product: &str, qty: i64) -> Event {
        Event::from_pairs(
            "sales",
            ts,
            [("product", Value::str(product)), ("qty", Value::Int(qty))],
        )
    }

    fn class(ts: u64, product: &str, class: &str) -> Event {
        Event::from_pairs(
            "classes",
            ts,
            [
                ("product", Value::str(product)),
                ("class", Value::str(class)),
            ],
        )
    }

    fn join_graph(window: u64) -> (Executor, crate::graph::SinkHandle) {
        let mut g = Graph::new();
        let j = g.add_op(WindowJoin::new(
            "sales",
            "product",
            "classes",
            "product",
            Duration::millis(window),
        ));
        g.connect_source("sales", j);
        g.connect_source("classes", j);
        let sink = g.add_sink();
        g.connect(j, sink.node);
        (Executor::new(g), sink)
    }

    #[test]
    fn joins_within_window() {
        let (mut ex, sink) = join_graph(10);
        ex.push(class(1, "p1", "toys"));
        ex.push(sale(5, "p1", 3));
        ex.finish();
        let out = sink.take();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get("class"), Some(&Value::str("toys")));
        assert_eq!(out[0].get("qty"), Some(&Value::Int(3)));
    }

    #[test]
    fn misses_outside_window() {
        let (mut ex, sink) = join_graph(10);
        ex.push(class(1, "p1", "toys"));
        ex.push(sale(30, "p1", 3)); // classification long expired
        ex.finish();
        assert!(
            sink.take().is_empty(),
            "window join loses old classifications — the E3 failure mode"
        );
    }

    #[test]
    fn symmetric_both_arrival_orders() {
        let (mut ex, sink) = join_graph(10);
        ex.push(sale(5, "p1", 3)); // sale arrives first
        ex.push(class(6, "p1", "toys"));
        ex.finish();
        assert_eq!(sink.take().len(), 1);
    }

    #[test]
    fn key_mismatch_produces_nothing() {
        let (mut ex, sink) = join_graph(10);
        ex.push(class(1, "p1", "toys"));
        ex.push(sale(2, "p2", 3));
        ex.finish();
        assert!(sink.take().is_empty());
    }

    #[test]
    fn eviction_bounds_memory() {
        let mut j = WindowJoin::new(
            "sales",
            "product",
            "classes",
            "product",
            Duration::millis(10),
        );
        let mut out = Emitter::new();
        for t in 0..100u64 {
            j.on_event(&class(t, "p", "c"), &mut out);
        }
        j.on_watermark(Timestamp::new(100), &mut out);
        assert!(j.buffered() <= 11, "only the last window's worth retained");
    }

    #[test]
    fn multiple_matches_multiply() {
        let (mut ex, sink) = join_graph(10);
        ex.push(class(1, "p1", "a"));
        ex.push(class(2, "p1", "b"));
        ex.push(sale(3, "p1", 1));
        ex.finish();
        assert_eq!(sink.take().len(), 2, "both classifications in window match");
    }
}
