//! Record-at-a-time operators: filter, map/project, union, joins, and
//! the stream–state operators that realize the paper's "state
//! influences the results of the processing".

pub mod filter;
pub mod join;
pub mod map;
pub mod state;
pub mod union;

pub use crate::window::predicate::EventScope;
