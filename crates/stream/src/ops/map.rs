//! Record-shaping operators: projection, derivation, renaming.

use crate::operator::{Emitter, Operator};
use crate::ops::EventScope;
use fenestra_base::expr::Expr;
use fenestra_base::record::{Event, FieldId};
use fenestra_base::symbol::Symbol;
use fenestra_base::value::Value;

/// Keeps only the named fields.
pub struct Project {
    fields: Vec<FieldId>,
}

impl Project {
    /// Project onto `fields`.
    pub fn new(fields: impl IntoIterator<Item = impl Into<Symbol>>) -> Project {
        Project {
            fields: fields.into_iter().map(Into::into).collect(),
        }
    }
}

impl Operator for Project {
    fn name(&self) -> &'static str {
        "project"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let mut e = ev.clone();
        e.record = ev.record.project(&self.fields);
        out.emit(e);
    }
}

/// Adds (or overwrites) a computed field. Evaluation errors yield
/// `Null` and are counted.
pub struct Derive {
    field: FieldId,
    expr: Expr,
    /// Events whose expression failed to evaluate.
    pub eval_errors: u64,
}

impl Derive {
    /// `field := expr` over each event.
    pub fn new(field: impl Into<Symbol>, expr: Expr) -> Derive {
        Derive {
            field: field.into(),
            expr,
            eval_errors: 0,
        }
    }
}

impl Operator for Derive {
    fn name(&self) -> &'static str {
        "derive"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let v = match self.expr.eval(&EventScope(ev)) {
            Ok(v) => v,
            Err(_) => {
                self.eval_errors += 1;
                Value::Null
            }
        };
        let mut e = ev.clone();
        e.record.set(self.field, v);
        out.emit(e);
    }
}

/// Renames a field (no-op if the field is absent).
pub struct Rename {
    from: FieldId,
    to: FieldId,
}

impl Rename {
    /// Rename `from` to `to`.
    pub fn new(from: impl Into<Symbol>, to: impl Into<Symbol>) -> Rename {
        Rename {
            from: from.into(),
            to: to.into(),
        }
    }
}

impl Operator for Rename {
    fn name(&self) -> &'static str {
        "rename"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let mut e = ev.clone();
        if let Some(v) = e.record.remove(self.from) {
            e.record.set(self.to, v);
        }
        out.emit(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev() -> Event {
        Event::from_pairs("s", 1u64, [("a", 1i64), ("b", 2i64), ("c", 3i64)])
    }

    #[test]
    fn project_keeps_named_fields() {
        let mut p = Project::new(["a", "c"]);
        let mut out = Emitter::new();
        p.on_event(&ev(), &mut out);
        let got = out.drain();
        assert_eq!(got[0].record.len(), 2);
        assert_eq!(got[0].get("b"), None);
    }

    #[test]
    fn derive_computes_field() {
        let mut d = Derive::new("sum", Expr::name("a").add(Expr::name("b")));
        let mut out = Emitter::new();
        d.on_event(&ev(), &mut out);
        assert_eq!(out.drain()[0].get("sum"), Some(&Value::Int(3)));
    }

    #[test]
    fn derive_error_yields_null() {
        let mut d = Derive::new("x", Expr::name("missing").add(Expr::lit(1i64)));
        let mut out = Emitter::new();
        d.on_event(&ev(), &mut out);
        assert_eq!(out.drain()[0].get("x"), Some(&Value::Null));
        assert_eq!(d.eval_errors, 1);
    }

    #[test]
    fn rename_moves_value() {
        let mut r = Rename::new("a", "alpha");
        let mut out = Emitter::new();
        r.on_event(&ev(), &mut out);
        let got = out.drain();
        assert_eq!(got[0].get("a"), None);
        assert_eq!(got[0].get("alpha"), Some(&Value::Int(1)));
        // Absent field: untouched record.
        let mut r = Rename::new("zz", "yy");
        let mut out = Emitter::new();
        r.on_event(&ev(), &mut out);
        assert_eq!(out.drain()[0].record.len(), 3);
    }
}
