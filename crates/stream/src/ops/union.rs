//! Stream union (merge) with optional restamping.

use crate::operator::{Emitter, Operator};
use fenestra_base::record::{Event, StreamId};
use fenestra_base::symbol::Symbol;

/// Merges whatever flows into it. Wire several upstream nodes to one
/// `Union` node; optionally restamp the output stream name so
/// downstream operators see a homogeneous source.
#[derive(Default)]
pub struct Union {
    restamp: Option<StreamId>,
}

impl Union {
    /// Pass events through unchanged.
    pub fn new() -> Union {
        Union::default()
    }

    /// Restamp merged events as `stream`.
    pub fn restamped(stream: impl Into<Symbol>) -> Union {
        Union {
            restamp: Some(stream.into()),
        }
    }
}

impl Operator for Union {
    fn name(&self) -> &'static str {
        "union"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        match self.restamp {
            Some(s) => {
                let mut e = ev.clone();
                e.stream = s;
                out.emit(e);
            }
            None => out.emit(ev.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::graph::Graph;

    #[test]
    fn merges_two_sources() {
        let mut g = Graph::new();
        let u = g.add_op(Union::restamped("merged"));
        g.connect_source("left", u);
        g.connect_source("right", u);
        let sink = g.add_sink();
        g.connect(u, sink.node);
        let mut ex = Executor::new(g);
        ex.push(Event::from_pairs("left", 1u64, [("v", 1i64)]));
        ex.push(Event::from_pairs("right", 2u64, [("v", 2i64)]));
        ex.finish();
        let out = sink.take();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.stream == Symbol::intern("merged")));
    }
}
