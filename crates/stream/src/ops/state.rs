//! Stream–state operators: where "state influences the results of the
//! processing" (paper §3).
//!
//! * [`StateGate`] — pass an event only if the state holds a given
//!   fact about the entity the event refers to (e.g. "monitor only
//!   *active* users"). This is the paper's state-conditioned
//!   derivation, and the mechanism behind experiment E5.
//! * [`StateEnrich`] — the stream–state join: look up attributes of
//!   the referenced entity and append them to the record (e.g. attach
//!   the *current* product classification to each sale), compared in
//!   E3 against the windowed stream–stream join.
//!
//! Operators access state through the [`StateProvider`] trait so the
//! engine controls the consistency mode: `at = event time` gives the
//! paper's timestamp-synchronized semantics, `at = Timestamp::MAX`
//! reads the live current state.

use crate::operator::{Emitter, Operator};
use fenestra_base::record::{Event, FieldId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::{EntityId, Value};
use fenestra_temporal::{AttrId, TemporalStore};
use std::sync::{Arc, RwLock};

/// Read access to the state repository, parameterized by probe time.
pub trait StateProvider: Send + Sync {
    /// Resolve a named entity.
    fn resolve(&self, name: Symbol) -> Option<EntityId>;

    /// Whether `(entity, attr, value)` is valid at `at`
    /// (`Timestamp::MAX` = the live current state).
    fn holds_at(&self, entity: EntityId, attr: AttrId, value: Value, at: Timestamp) -> bool;

    /// The value of `(entity, attr)` at `at`.
    fn value_at(&self, entity: EntityId, attr: AttrId, at: Timestamp) -> Option<Value>;
}

/// The canonical shared-store handle used by engines and operators.
pub type SharedStore = Arc<RwLock<TemporalStore>>;

impl StateProvider for SharedStore {
    fn resolve(&self, name: Symbol) -> Option<EntityId> {
        self.read().expect("store lock").lookup_entity(name)
    }

    fn holds_at(&self, entity: EntityId, attr: AttrId, value: Value, at: Timestamp) -> bool {
        let store = self.read().expect("store lock");
        if at == Timestamp::MAX {
            store.current().holds(entity, attr, value)
        } else {
            store.as_of(at).holds(entity, attr, value)
        }
    }

    fn value_at(&self, entity: EntityId, attr: AttrId, at: Timestamp) -> Option<Value> {
        let store = self.read().expect("store lock");
        if at == Timestamp::MAX {
            store.current().value(entity, attr)
        } else {
            store.as_of(at).value(entity, attr)
        }
    }
}

/// Which state snapshot stream operators consult.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeRef {
    /// The state as of the event's timestamp (the paper's synchronized
    /// semantics; default).
    #[default]
    EventTime,
    /// The live current state (eventually-consistent reads).
    Current,
}

impl TimeRef {
    fn probe(self, ev: &Event) -> Timestamp {
        match self {
            TimeRef::EventTime => ev.ts,
            TimeRef::Current => Timestamp::MAX,
        }
    }
}

/// How an entity is named by an event field.
fn entity_of(provider: &dyn StateProvider, rec_value: Option<&Value>) -> Option<EntityId> {
    match rec_value {
        Some(Value::Id(e)) => Some(*e),
        Some(Value::Str(name)) => provider.resolve(*name),
        _ => None,
    }
}

/// Passes an event iff the state holds (or, negated, does not hold) a
/// fact about the entity referenced by `entity_field`.
pub struct StateGate {
    provider: Box<dyn StateProvider>,
    entity_field: FieldId,
    attr: AttrId,
    value: Value,
    negate: bool,
    time: TimeRef,
    /// Events whose entity reference could not be resolved (treated as
    /// not holding the fact).
    pub unresolved: u64,
}

impl StateGate {
    /// Gate on `state(entity_field).attr == value`.
    pub fn new(
        provider: impl StateProvider + 'static,
        entity_field: impl Into<Symbol>,
        attr: impl Into<Symbol>,
        value: impl Into<Value>,
    ) -> StateGate {
        StateGate {
            provider: Box::new(provider),
            entity_field: entity_field.into(),
            attr: attr.into(),
            value: value.into(),
            negate: false,
            time: TimeRef::EventTime,
            unresolved: 0,
        }
    }

    /// Invert the gate (pass when the fact does *not* hold; chainable).
    pub fn negated(mut self) -> StateGate {
        self.negate = true;
        self
    }

    /// Choose the snapshot semantics (chainable).
    pub fn time_ref(mut self, time: TimeRef) -> StateGate {
        self.time = time;
        self
    }
}

impl Operator for StateGate {
    fn name(&self) -> &'static str {
        "state-gate"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let holds = match entity_of(self.provider.as_ref(), ev.record.get(self.entity_field)) {
            Some(e) => self
                .provider
                .holds_at(e, self.attr, self.value, self.time.probe(ev)),
            None => {
                self.unresolved += 1;
                false
            }
        };
        if holds != self.negate {
            out.emit(ev.clone());
        }
    }
}

/// Appends state attributes of the referenced entity to each record
/// (the stream–state join). Missing attributes become `Null`.
pub struct StateEnrich {
    provider: Box<dyn StateProvider>,
    entity_field: FieldId,
    attrs: Vec<(AttrId, FieldId)>,
    time: TimeRef,
    /// Events whose entity reference could not be resolved.
    pub unresolved: u64,
}

impl StateEnrich {
    /// Enrich events with state lookups keyed by `entity_field`.
    pub fn new(
        provider: impl StateProvider + 'static,
        entity_field: impl Into<Symbol>,
    ) -> StateEnrich {
        StateEnrich {
            provider: Box::new(provider),
            entity_field: entity_field.into(),
            attrs: Vec::new(),
            time: TimeRef::EventTime,
            unresolved: 0,
        }
    }

    /// Add a lookup: state attribute `attr` lands in record field
    /// `output` (chainable).
    pub fn attr(mut self, attr: impl Into<Symbol>, output: impl Into<Symbol>) -> StateEnrich {
        self.attrs.push((attr.into(), output.into()));
        self
    }

    /// Choose the snapshot semantics (chainable).
    pub fn time_ref(mut self, time: TimeRef) -> StateEnrich {
        self.time = time;
        self
    }
}

impl Operator for StateEnrich {
    fn name(&self) -> &'static str {
        "state-enrich"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let entity = entity_of(self.provider.as_ref(), ev.record.get(self.entity_field));
        if entity.is_none() {
            self.unresolved += 1;
        }
        let at = self.time.probe(ev);
        let mut e = ev.clone();
        for (attr, output) in &self.attrs {
            let v = entity
                .and_then(|ent| self.provider.value_at(ent, *attr, at))
                .unwrap_or(Value::Null);
            e.record.set(*output, v);
        }
        out.emit(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_temporal::AttrSchema;

    fn store_with_users() -> SharedStore {
        let mut s = TemporalStore::new();
        s.declare_attr("status", AttrSchema::one());
        s.declare_attr("tier", AttrSchema::one());
        let a = s.named_entity("alice");
        let b = s.named_entity("bob");
        s.replace_at(a, "status", "active", Timestamp::new(10))
            .unwrap();
        s.replace_at(a, "tier", "gold", Timestamp::new(10)).unwrap();
        s.replace_at(b, "status", "idle", Timestamp::new(10))
            .unwrap();
        // Alice goes idle at t50.
        s.replace_at(a, "status", "idle", Timestamp::new(50))
            .unwrap();
        Arc::new(RwLock::new(s))
    }

    fn click(ts: u64, user: &str) -> Event {
        Event::from_pairs("clicks", ts, [("user", user)])
    }

    #[test]
    fn gate_passes_only_matching_state() {
        let store = store_with_users();
        let mut gate = StateGate::new(store, "user", "status", "active");
        let mut out = Emitter::new();
        gate.on_event(&click(20, "alice"), &mut out); // active at 20
        gate.on_event(&click(20, "bob"), &mut out); // idle
        gate.on_event(&click(60, "alice"), &mut out); // idle at 60
        let got = out.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get("user"), Some(&Value::str("alice")));
    }

    #[test]
    fn gate_event_time_vs_current() {
        let store = store_with_users();
        // Event at t20 when alice was active — but *current* state says idle.
        let mut et = StateGate::new(store.clone(), "user", "status", "active");
        let mut cur = StateGate::new(store, "user", "status", "active").time_ref(TimeRef::Current);
        let mut out = Emitter::new();
        et.on_event(&click(20, "alice"), &mut out);
        assert_eq!(out.drain().len(), 1, "event-time snapshot: active");
        cur.on_event(&click(20, "alice"), &mut out);
        assert_eq!(out.drain().len(), 0, "current state: idle");
    }

    #[test]
    fn gate_negation_and_unresolved() {
        let store = store_with_users();
        let mut gate = StateGate::new(store, "user", "status", "active").negated();
        let mut out = Emitter::new();
        gate.on_event(&click(20, "alice"), &mut out); // active -> blocked
        gate.on_event(&click(20, "bob"), &mut out); // idle -> passes
        gate.on_event(&click(20, "carol"), &mut out); // unknown -> passes (negated)
        let got = out.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(gate.unresolved, 1);
    }

    #[test]
    fn enrich_appends_state_attributes() {
        let store = store_with_users();
        let mut enrich = StateEnrich::new(store, "user")
            .attr("status", "user_status")
            .attr("tier", "user_tier");
        let mut out = Emitter::new();
        enrich.on_event(&click(20, "alice"), &mut out);
        enrich.on_event(&click(20, "carol"), &mut out);
        let got = out.drain();
        assert_eq!(got[0].get("user_status"), Some(&Value::str("active")));
        assert_eq!(got[0].get("user_tier"), Some(&Value::str("gold")));
        assert_eq!(got[1].get("user_status"), Some(&Value::Null));
        assert_eq!(enrich.unresolved, 1);
    }

    #[test]
    fn enrich_sees_historical_value_at_event_time() {
        let store = store_with_users();
        let mut enrich = StateEnrich::new(store, "user").attr("status", "st");
        let mut out = Emitter::new();
        enrich.on_event(&click(20, "alice"), &mut out);
        enrich.on_event(&click(60, "alice"), &mut out);
        let got = out.drain();
        assert_eq!(got[0].get("st"), Some(&Value::str("active")));
        assert_eq!(got[1].get("st"), Some(&Value::str("idle")));
    }

    #[test]
    fn entity_field_may_hold_raw_id() {
        let store = store_with_users();
        let id = store.read().unwrap().lookup_entity("alice").unwrap();
        let mut enrich = StateEnrich::new(store, "user").attr("tier", "tier_out");
        let mut out = Emitter::new();
        let ev = Event::from_pairs("clicks", 20u64, [("user", Value::Id(id))]);
        enrich.on_event(&ev, &mut out);
        assert_eq!(out.drain()[0].get("tier_out"), Some(&Value::str("gold")));
    }
}
