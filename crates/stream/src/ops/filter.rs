//! Predicate filter.

use crate::operator::{Emitter, Operator};
use crate::ops::EventScope;
use fenestra_base::expr::Expr;
use fenestra_base::record::Event;

/// Passes events whose predicate evaluates truthy. Events whose
/// predicate evaluation *errors* (unbound field, type mismatch) are
/// dropped and counted in [`Filter::eval_errors`] — a silent-but-
/// observable policy, like SQL's three-valued logic on bad rows.
pub struct Filter {
    pred: Expr,
    /// Events dropped due to evaluation errors.
    pub eval_errors: u64,
}

impl Filter {
    /// Filter with `pred` (evaluated against the event's fields, plus
    /// `ts` and `stream`).
    pub fn new(pred: Expr) -> Filter {
        Filter {
            pred,
            eval_errors: 0,
        }
    }
}

impl Operator for Filter {
    fn name(&self) -> &'static str {
        "filter"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        match self.pred.eval_bool(&EventScope(ev)) {
            Ok(true) => out.emit(ev.clone()),
            Ok(false) => {}
            Err(_) => self.eval_errors += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::value::Value;

    fn ev(ts: u64, amount: i64) -> Event {
        Event::from_pairs("s", ts, [("amount", amount)])
    }

    #[test]
    fn passes_matching_events() {
        let mut f = Filter::new(Expr::name("amount").gt(Expr::lit(10i64)));
        let mut out = Emitter::new();
        f.on_event(&ev(1, 5), &mut out);
        f.on_event(&ev(2, 15), &mut out);
        let got = out.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get("amount"), Some(&Value::Int(15)));
    }

    #[test]
    fn ts_and_stream_are_visible() {
        let mut f = Filter::new(
            Expr::name("ts")
                .ge(Expr::lit(Value::Time(fenestra_base::time::Timestamp::new(
                    5,
                ))))
                .and(Expr::name("stream").eq(Expr::lit("s"))),
        );
        let mut out = Emitter::new();
        f.on_event(&ev(4, 1), &mut out);
        f.on_event(&ev(5, 1), &mut out);
        assert_eq!(out.drain().len(), 1);
    }

    #[test]
    fn errors_counted_not_propagated() {
        let mut f = Filter::new(Expr::name("missing").gt(Expr::lit(1i64)));
        let mut out = Emitter::new();
        f.on_event(&ev(1, 1), &mut out);
        assert!(out.is_empty());
        assert_eq!(f.eval_errors, 1);
    }
}
