#![warn(missing_docs)]
//! # fenestra-stream
//!
//! The **stream processing component** of Fenestra — and, deliberately,
//! a faithful implementation of the window-centric paradigm the paper
//! critiques (CQL-style windows over streams, relational operators,
//! relation-to-stream output). It serves double duty:
//!
//! 1. as the substrate on which Fenestra's stream-processing rules run
//!    (augmented with state access through [`ops::state`]), and
//! 2. as the *baseline* system for every experiment: fixed count/time
//!    windows, sliding windows, session windows (Google Dataflow \[1\]),
//!    predicate windows (Ghanem et al. \[8\]), and frames (Grossniklaus
//!    et al. \[9\]), with recompute, incremental, and pane-based
//!    (Li et al. \[10\]) aggregation strategies.
//!
//! ## Architecture
//!
//! A dataflow [`graph::Graph`] of push-based [`operator::Operator`]s,
//! driven by an event-time [`executor::Executor`] with bounded
//! out-of-orderness watermarks. Operators never see wall-clock time.
//!
//! ```
//! use fenestra_stream::prelude::*;
//! use fenestra_base::{Event, Duration};
//!
//! let mut g = Graph::new();
//! let filter = g.add_op(Filter::new(Expr::name("amount").gt(Expr::lit(10i64))));
//! g.connect_source("sales", filter);
//! let win = g.add_op(
//!     TimeWindowOp::tumbling(Duration::millis(100))
//!         .aggregate(AggSpec::sum("amount", "total")),
//! );
//! g.connect(filter, win);
//! let sink = g.add_sink();
//! g.connect(win, sink.node);
//!
//! let mut ex = Executor::new(g);
//! for i in 0..10u64 {
//!     ex.push(Event::from_pairs("sales", i * 30, [("amount", 20i64)]));
//! }
//! ex.finish();
//! let out = sink.take();
//! assert!(!out.is_empty());
//! ```

pub mod aggregate;
pub mod executor;
pub mod graph;
pub mod metrics;
pub mod oneshot;
pub mod operator;
pub mod ops;
pub mod parallel;
pub mod watermark;
pub mod window;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::aggregate::{AggFunc, AggSpec};
    pub use crate::executor::Executor;
    pub use crate::graph::{Graph, NodeId, SinkHandle};
    pub use crate::operator::{Emitter, Operator};
    pub use crate::ops::filter::Filter;
    pub use crate::ops::join::{JoinSide, WindowJoin};
    pub use crate::ops::map::{Derive, Project, Rename};
    pub use crate::ops::state::{StateEnrich, StateGate, StateProvider};
    pub use crate::ops::union::Union;
    pub use crate::watermark::WatermarkPolicy;
    pub use crate::window::count::CountWindowOp;
    pub use crate::window::landmark::LandmarkWindowOp;
    pub use crate::window::predicate::{FrameKind, FrameOp, PredicateWindowOp};
    pub use crate::window::session::SessionWindowOp;
    pub use crate::window::time::{SlidingStrategy, TimeWindowOp};
    pub use crate::window::EmitMode;
    pub use fenestra_base::expr::Expr;
}
