//! One-shot batch execution of window operators.
//!
//! The query planner lowers `GROUP BY tumbling(...)`-style statements
//! into a physical plan whose aggregation stage is an ordinary stream
//! window operator. This module is the adapter between the two worlds:
//! it takes a *finite, timestamp-sorted* batch of events (facts pulled
//! out of the temporal store), drives them through a freshly built
//! dataflow graph containing one window operator, and hands back the
//! fired window rows.
//!
//! Because the batch is sorted and finite, the executor runs with the
//! strict watermark policy and a final `finish()` flushes every
//! pending window — the adapter is deterministic: same batch in, same
//! rows out.

use crate::aggregate::AggSpec;
use crate::executor::Executor;
use crate::graph::Graph;
use crate::watermark::WatermarkPolicy;
use crate::window::session::SessionWindowOp;
use crate::window::time::TimeWindowOp;
use fenestra_base::error::{Error, Result};
use fenestra_base::record::{Event, Record};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Duration;

/// The window shapes a one-shot batch run supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchWindow {
    /// Fixed windows of `size`, aligned at epoch.
    Tumbling(Duration),
    /// Overlapping windows of `size` every `hop`.
    Sliding(Duration, Duration),
    /// Gap-based session windows.
    Session(Duration),
}

/// Run `events` (must be sorted by timestamp) through one window
/// operator with the given grouping keys and aggregates, and return
/// the fired rows (each stamped with `window_start`/`window_end`) in
/// firing order.
pub fn run_window_batch(
    window: BatchWindow,
    keys: &[Symbol],
    aggs: &[AggSpec],
    events: Vec<Event>,
) -> Result<Vec<Record>> {
    let stream: Symbol = match events.first() {
        Some(ev) => ev.stream,
        None => return Ok(Vec::new()),
    };
    let mut g = Graph::new();
    let node = match window {
        BatchWindow::Tumbling(size) => {
            if size.as_millis() == 0 {
                return Err(Error::Invalid("window size must be positive".into()));
            }
            let mut op = TimeWindowOp::tumbling(size).group_by(keys.iter().copied());
            for spec in aggs {
                op = op.aggregate(*spec);
            }
            g.add_op(op)
        }
        BatchWindow::Sliding(size, hop) => {
            if size.as_millis() == 0 || hop.as_millis() == 0 {
                return Err(Error::Invalid(
                    "window size and hop must be positive".into(),
                ));
            }
            let mut op = TimeWindowOp::sliding(size, hop).group_by(keys.iter().copied());
            for spec in aggs {
                op = op.aggregate(*spec);
            }
            g.add_op(op)
        }
        BatchWindow::Session(gap) => {
            if gap.as_millis() == 0 {
                return Err(Error::Invalid("session gap must be positive".into()));
            }
            let mut op = SessionWindowOp::new(gap).group_by(keys.iter().copied());
            for spec in aggs {
                op = op.aggregate(*spec);
            }
            g.add_op(op)
        }
    };
    g.connect_source(stream, node);
    let sink = g.add_sink();
    g.connect(node, sink.node);
    let mut ex = Executor::try_with_policy(g, WatermarkPolicy::strict())?;
    ex.run(events);
    ex.finish();
    Ok(sink.take().into_iter().map(|ev| ev.record).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{window_end_field, window_start_field};
    use fenestra_base::time::Timestamp;
    use fenestra_base::value::Value;

    fn ev(ts: u64, room: &str) -> Event {
        Event::from_pairs("facts", ts, [("room", Value::str(room))])
    }

    #[test]
    fn tumbling_batch_counts_per_group() {
        let events = vec![ev(10, "a"), ev(20, "b"), ev(30, "a"), ev(110, "a")];
        let rows = run_window_batch(
            BatchWindow::Tumbling(Duration::millis(100)),
            &[Symbol::intern("room")],
            &[AggSpec::count("n")],
            events,
        )
        .unwrap();
        assert_eq!(rows.len(), 3, "two groups in w0, one in w1");
        let first = rows
            .iter()
            .find(|r| {
                r.get("room") == Some(&Value::str("a"))
                    && r.get(window_start_field()) == Some(&Value::Time(Timestamp::new(0)))
            })
            .unwrap();
        assert_eq!(first.get("n"), Some(&Value::Int(2)));
        assert_eq!(
            first.get(window_end_field()),
            Some(&Value::Time(Timestamp::new(100)))
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let rows = run_window_batch(
            BatchWindow::Tumbling(Duration::millis(100)),
            &[],
            &[AggSpec::count("n")],
            Vec::new(),
        )
        .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn zero_size_window_errors() {
        assert!(run_window_batch(
            BatchWindow::Tumbling(Duration::millis(0)),
            &[],
            &[AggSpec::count("n")],
            vec![ev(1, "a")],
        )
        .is_err());
    }

    #[test]
    fn session_batch_splits_on_gap() {
        let events = vec![ev(0, "a"), ev(10, "a"), ev(500, "a")];
        let rows = run_window_batch(
            BatchWindow::Session(Duration::millis(100)),
            &[],
            &[AggSpec::count("n")],
            events,
        )
        .unwrap();
        assert_eq!(rows.len(), 2, "gap of 490 closes the first session");
        assert_eq!(rows[0].get("n"), Some(&Value::Int(2)));
        assert_eq!(rows[1].get("n"), Some(&Value::Int(1)));
    }
}
