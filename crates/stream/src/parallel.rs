//! Pipelined multi-threaded executor.
//!
//! Each graph node runs on its own thread; events, watermarks, and
//! flush markers flow through crossbeam channels along the graph's
//! edges. Watermarks are *aligned*: a node with several inputs
//! forwards the minimum watermark across them, as in Flink/Dataflow,
//! so event-time window results are identical to the single-threaded
//! [`crate::executor::Executor`]. Output *interleaving* across
//! independent branches is nondeterministic (that is the point of the
//! pipeline); per-path order is preserved by channel FIFO.

use crate::graph::Graph;
use crate::operator::{Emitter, Operator};
use crate::watermark::{WatermarkGenerator, WatermarkPolicy};
use crossbeam::channel::{unbounded, Receiver, Sender};
use fenestra_base::error::Result;
use fenestra_base::record::{Event, StreamId};
use fenestra_base::time::Timestamp;
use std::collections::HashMap;
use std::thread::JoinHandle;

enum Msg {
    Event(Event),
    Watermark(Timestamp),
    Flush(Timestamp),
}

/// A sender into a node's inbox, tagged with the input-edge index the
/// target assigned to this producer.
type EdgeSender = (usize, Sender<(usize, Msg)>);

struct NodeRuntime {
    op: Box<dyn Operator>,
    inbox: Receiver<(usize, Msg)>,
    /// Downstream senders with the edge index assigned by the target.
    outs: Vec<EdgeSender>,
    n_inputs: usize,
}

impl NodeRuntime {
    fn forward(&self, msg_for: impl Fn(usize) -> Msg) {
        for (edge, tx) in &self.outs {
            // A send failure means the downstream thread terminated
            // early (panic); nothing sensible to do but stop sending.
            let _ = tx.send((*edge, msg_for(*edge)));
        }
    }

    fn run(mut self) {
        let mut emitter = Emitter::new();
        let mut edge_wm: Vec<Option<Timestamp>> = vec![None; self.n_inputs];
        let mut flushed: Vec<bool> = vec![false; self.n_inputs];
        let mut sent_wm: Option<Timestamp> = None;
        while let Ok((edge, msg)) = self.inbox.recv() {
            match msg {
                Msg::Event(ev) => {
                    self.op.on_event(&ev, &mut emitter);
                    for out_ev in emitter.drain() {
                        self.forward(|_| Msg::Event(out_ev.clone()));
                    }
                }
                Msg::Watermark(wm) => {
                    edge_wm[edge] = Some(edge_wm[edge].map_or(wm, |w| w.max(wm)));
                    // Aligned watermark: min across inputs, only once
                    // every input has reported.
                    let aligned = edge_wm
                        .iter()
                        .copied()
                        .collect::<Option<Vec<_>>>()
                        .and_then(|v| v.into_iter().min());
                    if let Some(aligned) = aligned {
                        if sent_wm.is_none_or(|s| aligned > s) {
                            sent_wm = Some(aligned);
                            self.op.on_watermark(aligned, &mut emitter);
                            for out_ev in emitter.drain() {
                                self.forward(|_| Msg::Event(out_ev.clone()));
                            }
                            self.forward(|_| Msg::Watermark(aligned));
                        }
                    }
                }
                Msg::Flush(at) => {
                    flushed[edge] = true;
                    if flushed.iter().all(|f| *f) {
                        self.op.on_watermark(Timestamp::MAX, &mut emitter);
                        self.op.on_flush(at, &mut emitter);
                        for out_ev in emitter.drain() {
                            self.forward(|_| Msg::Event(out_ev.clone()));
                        }
                        self.forward(|_| Msg::Flush(at));
                        break;
                    }
                }
            }
        }
    }
}

/// Multi-threaded pipeline executor. Same API shape as the
/// single-threaded [`crate::executor::Executor`]: `push` events, then
/// `finish` to drain and join the pipeline.
pub struct ParallelExecutor {
    /// Per-stream senders into source nodes (with target edge index).
    sources: HashMap<StreamId, Vec<EdgeSender>>,
    /// Every executor-fed edge (for watermark/flush broadcast).
    root_edges: Vec<EdgeSender>,
    handles: Vec<JoinHandle<()>>,
    wm: WatermarkGenerator,
    finished: bool,
}

impl ParallelExecutor {
    /// Spawn one thread per node of `graph`.
    pub fn new(graph: Graph, policy: WatermarkPolicy) -> Result<ParallelExecutor> {
        graph.topo_order()?; // validates acyclicity
        let n = graph.nodes.len();
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<(usize, Msg)>();
            txs.push(tx);
            rxs.push(Some(rx));
        }
        // Assign input edge indices per target node.
        let mut n_inputs = vec![0usize; n];
        let mut outs: Vec<Vec<EdgeSender>> = vec![Vec::new(); n];
        for (i, node) in graph.nodes.iter().enumerate() {
            for d in &node.downstream {
                let edge = n_inputs[d.0];
                n_inputs[d.0] += 1;
                outs[i].push((edge, txs[d.0].clone()));
            }
        }
        // Executor-fed edges: one per (stream, source-node) binding.
        let mut sources: HashMap<StreamId, Vec<EdgeSender>> = HashMap::new();
        let mut root_edges = Vec::new();
        for (stream, nodes) in &graph.sources {
            for nid in nodes {
                let edge = n_inputs[nid.0];
                n_inputs[nid.0] += 1;
                sources
                    .entry(*stream)
                    .or_default()
                    .push((edge, txs[nid.0].clone()));
                root_edges.push((edge, txs[nid.0].clone()));
            }
        }
        // Nodes with no inputs at all would never terminate; feed them
        // an executor edge so flush reaches them.
        for (i, tx) in txs.iter().enumerate() {
            if n_inputs[i] == 0 {
                let edge = 0;
                n_inputs[i] = 1;
                root_edges.push((edge, tx.clone()));
            }
        }
        let mut handles = Vec::with_capacity(n);
        for (i, node) in graph.nodes.into_iter().enumerate() {
            let rt = NodeRuntime {
                op: node.op,
                inbox: rxs[i].take().expect("receiver unclaimed"),
                outs: std::mem::take(&mut outs[i]),
                n_inputs: n_inputs[i],
            };
            handles.push(std::thread::spawn(move || rt.run()));
        }
        Ok(ParallelExecutor {
            sources,
            root_edges,
            handles,
            wm: WatermarkGenerator::new(policy),
            finished: false,
        })
    }

    /// Push one event. Returns `false` if it was late and dropped.
    pub fn push(&mut self, ev: Event) -> bool {
        assert!(!self.finished, "push after finish()");
        let Some(advance) = self.wm.observe(ev.ts) else {
            // The generator counts the late event.
            return false;
        };
        if let Some(targets) = self.sources.get(&ev.stream) {
            for (edge, tx) in targets {
                let _ = tx.send((*edge, Msg::Event(ev.clone())));
            }
        }
        if let Some(wm) = advance {
            for (edge, tx) in &self.root_edges {
                let _ = tx.send((*edge, Msg::Watermark(wm)));
            }
        }
        true
    }

    /// Push a batch.
    pub fn run(&mut self, events: impl IntoIterator<Item = Event>) {
        for ev in events {
            self.push(ev);
        }
    }

    /// Drain the pipeline and join all node threads. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let at = self.wm.current().unwrap_or(Timestamp::ZERO);
        for (edge, tx) in &self.root_edges {
            let _ = tx.send((*edge, Msg::Flush(at)));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Events dropped as late.
    pub fn late_dropped(&self) -> u64 {
        self.wm.late_events
    }
}

impl Drop for ParallelExecutor {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggSpec;
    use crate::executor::Executor;
    use crate::graph::Graph;
    use crate::ops::filter::Filter;
    use crate::window::time::TimeWindowOp;
    use fenestra_base::expr::Expr;
    use fenestra_base::time::Duration;
    use fenestra_base::value::Value;

    fn build_graph() -> (Graph, crate::graph::SinkHandle) {
        let mut g = Graph::new();
        let f = g.add_op(Filter::new(Expr::name("v").ge(Expr::lit(0i64))));
        g.connect_source("s", f);
        let w = g.add_op(
            TimeWindowOp::tumbling(Duration::millis(10)).aggregate(AggSpec::sum("v", "total")),
        );
        g.connect(f, w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        (g, sink)
    }

    fn events() -> Vec<Event> {
        (0..100u64)
            .map(|i| Event::from_pairs("s", i, [("v", (i % 7) as i64)]))
            .collect()
    }

    #[test]
    fn matches_single_threaded_results() {
        let (g1, sink1) = build_graph();
        let mut ex1 = Executor::new(g1);
        ex1.run(events());
        ex1.finish();
        let want: Vec<(u64, Value)> = sink1
            .take()
            .iter()
            .map(|e| (e.ts.millis(), *e.get("total").unwrap()))
            .collect();

        let (g2, sink2) = build_graph();
        let mut ex2 = ParallelExecutor::new(g2, WatermarkPolicy::strict()).unwrap();
        ex2.run(events());
        ex2.finish();
        let got: Vec<(u64, Value)> = sink2
            .take()
            .iter()
            .map(|e| (e.ts.millis(), *e.get("total").unwrap()))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn multi_input_watermark_alignment() {
        // A union fed by two streams: the aligned watermark must not
        // outrun the slower stream, or windows would fire early and
        // drop the slow stream's events.
        let mut g = Graph::new();
        let u = g.add_op(crate::ops::union::Union::new());
        g.connect_source("fast", u);
        g.connect_source("slow", u);
        let w =
            g.add_op(TimeWindowOp::tumbling(Duration::millis(10)).aggregate(AggSpec::count("n")));
        g.connect(u, w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = ParallelExecutor::new(g, WatermarkPolicy::strict()).unwrap();
        ex.push(Event::from_pairs("fast", 3u64, [("v", 1i64)]));
        ex.push(Event::from_pairs("slow", 5u64, [("v", 1i64)]));
        ex.push(Event::from_pairs("fast", 25u64, [("v", 1i64)]));
        ex.finish();
        let out = sink.take();
        assert_eq!(
            out[0].get("n"),
            Some(&Value::Int(2)),
            "both events in [0,10)"
        );
    }

    #[test]
    fn late_events_dropped() {
        let (g, _sink) = build_graph();
        let mut ex = ParallelExecutor::new(g, WatermarkPolicy::strict()).unwrap();
        ex.push(Event::from_pairs("s", 10u64, [("v", 1i64)]));
        assert!(!ex.push(Event::from_pairs("s", 5u64, [("v", 1i64)])));
        ex.finish();
        assert_eq!(ex.late_dropped(), 1);
    }

    #[test]
    fn drop_joins_threads() {
        let (g, sink) = build_graph();
        {
            let mut ex = ParallelExecutor::new(g, WatermarkPolicy::strict()).unwrap();
            ex.push(Event::from_pairs("s", 1u64, [("v", 2i64)]));
            // Dropped without explicit finish().
        }
        assert_eq!(sink.len(), 1, "drop flushed the pipeline");
    }
}
