//! Single-threaded event-time executor.

use crate::graph::{Graph, NodeId};
use crate::metrics::ExecutorMetrics;
use crate::watermark::{WatermarkGenerator, WatermarkPolicy};
use fenestra_base::error::Result;
use fenestra_base::record::Event;
use fenestra_base::time::Timestamp;

/// Drives a [`Graph`] with events, generating watermarks per the
/// configured [`WatermarkPolicy`] and broadcasting them to every node.
///
/// Late events (older than the current watermark) are dropped and
/// counted in [`ExecutorMetrics::late_dropped`] — the documented
/// failure mode of bounded out-of-orderness.
pub struct Executor {
    graph: Graph,
    order: Vec<NodeId>,
    wm: WatermarkGenerator,
    metrics: ExecutorMetrics,
    finished: bool,
}

impl Executor {
    /// Wrap a graph with the strict (zero-lateness) watermark policy.
    pub fn new(graph: Graph) -> Executor {
        Executor::with_policy(graph, WatermarkPolicy::strict())
    }

    /// Wrap a graph with an explicit watermark policy.
    ///
    /// # Panics
    /// Panics if the graph contains a cycle; use
    /// [`Executor::try_with_policy`] to handle the error.
    pub fn with_policy(graph: Graph, policy: WatermarkPolicy) -> Executor {
        Executor::try_with_policy(graph, policy).expect("invalid dataflow graph")
    }

    /// Fallible constructor (graph validation may fail).
    pub fn try_with_policy(graph: Graph, policy: WatermarkPolicy) -> Result<Executor> {
        let order = graph.topo_order()?;
        Ok(Executor {
            graph,
            order,
            wm: WatermarkGenerator::new(policy),
            metrics: ExecutorMetrics::default(),
            finished: false,
        })
    }

    /// Push one event into the graph. Returns `false` if the event was
    /// late and dropped.
    pub fn push(&mut self, ev: Event) -> bool {
        assert!(!self.finished, "push after finish()");
        let Some(advance) = self.wm.observe(ev.ts) else {
            self.metrics.late_dropped += 1;
            return false;
        };
        self.metrics.events_in += 1;
        let roots = self
            .graph
            .sources
            .get(&ev.stream)
            .cloned()
            .unwrap_or_default();
        if !roots.is_empty() {
            self.graph.deliver(&roots, &ev);
        }
        if let Some(wm) = advance {
            self.metrics.watermarks += 1;
            self.graph.broadcast_watermark(wm, &self.order);
        }
        true
    }

    /// Push a batch of events.
    pub fn run(&mut self, events: impl IntoIterator<Item = Event>) {
        for ev in events {
            self.push(ev);
        }
    }

    /// End of input: broadcast a final watermark at the end of time and
    /// flush residual operator state. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.graph.broadcast_watermark(Timestamp::MAX, &self.order);
        let at = self.wm.current().unwrap_or(Timestamp::ZERO);
        self.graph.broadcast_flush(at, &self.order);
    }

    /// The current watermark.
    pub fn watermark(&self) -> Option<Timestamp> {
        self.wm.current()
    }

    /// Executor counters (the late-drop count lives here).
    pub fn metrics(&self) -> ExecutorMetrics {
        let mut m = self.metrics;
        m.late_dropped = self.wm.late_events;
        m
    }

    /// Per-node `(name, in, out)` counters.
    pub fn node_metrics(&self) -> Vec<(&'static str, u64, u64)> {
        self.graph.node_metrics()
    }

    /// Access the underlying graph (e.g. to read sinks).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::operator::{Emitter, Operator};
    use fenestra_base::record::Record;
    use fenestra_base::time::Duration;

    /// Buffers events and releases them on watermark (a miniature
    /// window-like operator used to verify watermark plumbing).
    struct ReleaseOnWatermark {
        held: Vec<Event>,
    }

    impl Operator for ReleaseOnWatermark {
        fn name(&self) -> &'static str {
            "release"
        }
        fn on_event(&mut self, ev: &Event, _out: &mut Emitter) {
            self.held.push(ev.clone());
        }
        fn on_watermark(&mut self, wm: Timestamp, out: &mut Emitter) {
            let (ready, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.held)
                .into_iter()
                .partition(|e| e.ts < wm);
            self.held = keep;
            for e in ready {
                out.emit(e);
            }
        }
    }

    fn ev(ts: u64) -> Event {
        Event::new("s", ts, Record::from_pairs([("v", ts as i64)]))
    }

    #[test]
    fn strict_executor_delivers_in_order() {
        let mut g = Graph::new();
        let n = g.add_op(ReleaseOnWatermark { held: vec![] });
        g.connect_source("s", n);
        let sink = g.add_sink();
        g.connect(n, sink.node);
        let mut ex = Executor::new(g);
        for t in [1u64, 2, 3, 4] {
            assert!(ex.push(ev(t)));
        }
        ex.finish();
        let out = sink.take();
        let ts: Vec<u64> = out.iter().map(|e| e.ts.millis()).collect();
        assert_eq!(ts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn late_events_dropped_and_counted() {
        let mut g = Graph::new();
        let sink = g.add_sink();
        g.connect_source("s", sink.node);
        let mut ex = Executor::with_policy(g, WatermarkPolicy::bounded(Duration::millis(2)));
        assert!(ex.push(ev(10))); // wm -> 8
        assert!(ex.push(ev(9))); // within bound
        assert!(!ex.push(ev(5))); // late
        assert_eq!(ex.metrics().late_dropped, 1);
        assert_eq!(ex.metrics().events_in, 2);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn finish_flushes_residual_state() {
        let mut g = Graph::new();
        let n = g.add_op(ReleaseOnWatermark { held: vec![] });
        g.connect_source("s", n);
        let sink = g.add_sink();
        g.connect(n, sink.node);
        let mut ex = Executor::new(g);
        ex.push(ev(5));
        assert_eq!(sink.len(), 0, "held until watermark passes");
        ex.finish();
        assert_eq!(sink.len(), 1, "final watermark releases everything");
        ex.finish(); // idempotent
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn events_on_unknown_streams_are_ignored() {
        let mut g = Graph::new();
        let sink = g.add_sink();
        g.connect_source("known", sink.node);
        let mut ex = Executor::new(g);
        ex.push(Event::new("unknown", 1u64, Record::new()));
        assert_eq!(sink.len(), 0);
        assert_eq!(ex.metrics().events_in, 1);
    }

    #[test]
    fn watermark_accessor() {
        let mut g = Graph::new();
        let sink = g.add_sink();
        g.connect_source("s", sink.node);
        let mut ex = Executor::new(g);
        assert_eq!(ex.watermark(), None);
        ex.push(ev(42));
        assert_eq!(ex.watermark(), Some(Timestamp::new(42)));
    }
}
