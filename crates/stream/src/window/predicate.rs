//! Content-defined windows: predicate windows and frames.
//!
//! * [`PredicateWindowOp`] — windows opened and closed by predicates on
//!   event content (after Ghanem et al., *Supporting views in data
//!   stream management systems*). A window opens for a group when the
//!   open predicate holds and no window is open, accumulates every
//!   event of the group, and fires when the close predicate holds.
//! * [`FrameOp`] — data-driven frames (Grossniklaus et al., DEBS'16):
//!   threshold frames, delta frames, and aggregate frames.
//!
//! Both fire *immediately* on the event that completes the window, so
//! they are watermark-free (content defines the boundary, not time).

use crate::aggregate::{AccumulatorBank, AggSpec};
use crate::operator::{Emitter, Operator};
use crate::window::{finish_row, group_key, write_key, EmitMode, GroupKey};
use fenestra_base::expr::{Expr, Scope};
use fenestra_base::record::{Event, FieldId, Record, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use std::collections::HashMap;

/// Scope exposing an event's fields plus `ts` and `stream`.
pub struct EventScope<'a>(pub &'a Event);

impl Scope for EventScope<'_> {
    fn lookup(&self, name: Symbol) -> Option<Value> {
        if let Some(v) = self.0.record.get(name) {
            return Some(*v);
        }
        match name.as_str() {
            "ts" => Some(Value::Time(self.0.ts)),
            "stream" => Some(Value::Str(self.0.stream)),
            _ => None,
        }
    }
}

struct OpenWindow {
    first: Timestamp,
    last: Timestamp,
    bank: AccumulatorBank,
    count: u64,
}

impl OpenWindow {
    fn new(specs: &[AggSpec]) -> OpenWindow {
        OpenWindow {
            first: Timestamp::ZERO,
            last: Timestamp::ZERO,
            bank: AccumulatorBank::new(specs),
            count: 0,
        }
    }
}

/// Predicate-delimited window operator.
pub struct PredicateWindowOp {
    open: Expr,
    close: Expr,
    include_closing_event: bool,
    group_by: Vec<FieldId>,
    specs: Vec<AggSpec>,
    out_stream: StreamId,
    emit_open_on_flush: bool,
    windows: HashMap<GroupKey, OpenWindow>,
    /// Events whose predicate evaluation failed (type errors etc.).
    pub eval_errors: u64,
}

impl PredicateWindowOp {
    /// Windows that open when `open` holds and close when `close`
    /// holds. The closing event is included in the window by default.
    pub fn new(open: Expr, close: Expr) -> PredicateWindowOp {
        PredicateWindowOp {
            open,
            close,
            include_closing_event: true,
            group_by: Vec::new(),
            specs: Vec::new(),
            out_stream: Symbol::intern("predicate-window"),
            emit_open_on_flush: false,
            windows: HashMap::new(),
            eval_errors: 0,
        }
    }

    /// Exclude the closing event from the window (chainable).
    pub fn exclude_closing_event(mut self) -> PredicateWindowOp {
        self.include_closing_event = false;
        self
    }

    /// Add an aggregate column (chainable).
    pub fn aggregate(mut self, spec: AggSpec) -> PredicateWindowOp {
        self.specs.push(spec);
        self
    }

    /// Group windows by these fields (chainable).
    pub fn group_by(
        mut self,
        fields: impl IntoIterator<Item = impl Into<Symbol>>,
    ) -> PredicateWindowOp {
        self.group_by = fields.into_iter().map(Into::into).collect();
        self
    }

    /// Name the output stream (chainable).
    pub fn out_stream(mut self, stream: impl Into<Symbol>) -> PredicateWindowOp {
        self.out_stream = stream.into();
        self
    }

    /// Emit still-open windows at end-of-stream (chainable).
    pub fn emit_open_on_flush(mut self) -> PredicateWindowOp {
        self.emit_open_on_flush = true;
        self
    }

    /// Number of currently open windows.
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }

    fn emit_window(
        out_stream: StreamId,
        group_by: &[FieldId],
        specs: &[AggSpec],
        key: &GroupKey,
        w: &OpenWindow,
        out: &mut Emitter,
    ) {
        let mut rec = Record::new();
        write_key(group_by, key, &mut rec);
        w.bank.write_outputs(specs, &mut rec);
        rec.set("window_events", Value::Int(w.count as i64));
        let rec = finish_row(rec, w.first, w.last, 1, EmitMode::Rows);
        out.emit(Event::new(out_stream, w.last, rec));
    }
}

impl Operator for PredicateWindowOp {
    fn name(&self) -> &'static str {
        "predicate-window"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let scope = EventScope(ev);
        let key = group_key(&self.group_by, &ev.record);
        let is_open_for_key = self.windows.contains_key(&key);
        if !is_open_for_key {
            match self.open.eval_bool(&scope) {
                Ok(true) => {
                    let mut w = OpenWindow::new(&self.specs);
                    w.first = ev.ts;
                    w.last = ev.ts;
                    w.bank.add(&self.specs, &ev.record, ev.ts);
                    w.count = 1;
                    self.windows.insert(key, w);
                }
                Ok(false) => {}
                Err(_) => self.eval_errors += 1,
            }
            return;
        }
        // Window open: accumulate, then check the close predicate.
        let close = match self.close.eval_bool(&scope) {
            Ok(b) => b,
            Err(_) => {
                self.eval_errors += 1;
                false
            }
        };
        let w = self.windows.get_mut(&key).expect("window open");
        if !close || self.include_closing_event {
            w.bank.add(&self.specs, &ev.record, ev.ts);
            w.count += 1;
            w.last = w.last.max(ev.ts);
        }
        if close {
            let w = self.windows.remove(&key).expect("window open");
            Self::emit_window(self.out_stream, &self.group_by, &self.specs, &key, &w, out);
        }
    }

    fn on_flush(&mut self, _at: Timestamp, out: &mut Emitter) {
        if !self.emit_open_on_flush {
            return;
        }
        let mut keys: Vec<GroupKey> = self.windows.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let w = self.windows.remove(&key).expect("key present");
            Self::emit_window(self.out_stream, &self.group_by, &self.specs, &key, &w, out);
        }
    }
}

/// The frame-boundary criterion (Grossniklaus et al.).
#[derive(Debug, Clone)]
pub enum FrameKind {
    /// A frame is a maximal run of events with `field > threshold`.
    Threshold {
        /// Monitored field.
        field: FieldId,
        /// Exclusive lower bound for frame membership.
        threshold: f64,
    },
    /// A frame ends when the monitored value drifts more than `delta`
    /// from the frame's first value; the drifting event starts the next
    /// frame.
    Delta {
        /// Monitored field.
        field: FieldId,
        /// Maximum absolute drift within one frame.
        delta: f64,
    },
    /// A frame ends when the running sum of `field` reaches `bound`
    /// (the reaching event is included).
    Aggregate {
        /// Summed field.
        field: FieldId,
        /// Inclusive sum bound that closes the frame.
        bound: f64,
    },
}

struct FrameState {
    window: OpenWindow,
    first_value: f64,
    running_sum: f64,
}

/// Data-driven frame operator.
pub struct FrameOp {
    kind: FrameKind,
    group_by: Vec<FieldId>,
    specs: Vec<AggSpec>,
    out_stream: StreamId,
    emit_open_on_flush: bool,
    frames: HashMap<GroupKey, FrameState>,
    /// Events lacking the monitored field (or non-numeric).
    pub skipped: u64,
}

impl FrameOp {
    /// A frame operator with the given boundary criterion.
    pub fn new(kind: FrameKind) -> FrameOp {
        FrameOp {
            kind,
            group_by: Vec::new(),
            specs: Vec::new(),
            out_stream: Symbol::intern("frame"),
            emit_open_on_flush: true,
            frames: HashMap::new(),
            skipped: 0,
        }
    }

    /// Add an aggregate column (chainable).
    pub fn aggregate(mut self, spec: AggSpec) -> FrameOp {
        self.specs.push(spec);
        self
    }

    /// Group frames by these fields (chainable).
    pub fn group_by(mut self, fields: impl IntoIterator<Item = impl Into<Symbol>>) -> FrameOp {
        self.group_by = fields.into_iter().map(Into::into).collect();
        self
    }

    /// Name the output stream (chainable).
    pub fn out_stream(mut self, stream: impl Into<Symbol>) -> FrameOp {
        self.out_stream = stream.into();
        self
    }

    /// Discard still-open frames at end-of-stream instead of emitting
    /// them (chainable; default is to emit).
    pub fn discard_open_on_flush(mut self) -> FrameOp {
        self.emit_open_on_flush = false;
        self
    }

    fn start_frame(&mut self, key: GroupKey, ev: &Event, v: f64) {
        let mut w = OpenWindow::new(&self.specs);
        w.first = ev.ts;
        w.last = ev.ts;
        w.bank.add(&self.specs, &ev.record, ev.ts);
        w.count = 1;
        self.frames.insert(
            key,
            FrameState {
                window: w,
                first_value: v,
                running_sum: v,
            },
        );
    }

    fn extend_frame(st: &mut FrameState, specs: &[AggSpec], ev: &Event, v: f64) {
        st.window.bank.add(specs, &ev.record, ev.ts);
        st.window.count += 1;
        st.window.last = st.window.last.max(ev.ts);
        st.running_sum += v;
    }

    fn emit_frame(&self, key: &GroupKey, st: &FrameState, out: &mut Emitter) {
        PredicateWindowOp::emit_window(
            self.out_stream,
            &self.group_by,
            &self.specs,
            key,
            &st.window,
            out,
        );
    }
}

impl Operator for FrameOp {
    fn name(&self) -> &'static str {
        "frame"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let field = match &self.kind {
            FrameKind::Threshold { field, .. }
            | FrameKind::Delta { field, .. }
            | FrameKind::Aggregate { field, .. } => *field,
        };
        let Some(v) = ev.record.get(field).and_then(|v| v.as_f64()) else {
            self.skipped += 1;
            return;
        };
        let key = group_key(&self.group_by, &ev.record);
        match self.kind {
            FrameKind::Threshold { threshold, .. } => {
                let open = self.frames.contains_key(&key);
                if v > threshold {
                    if open {
                        let st = self.frames.get_mut(&key).expect("frame open");
                        Self::extend_frame(st, &self.specs, ev, v);
                    } else {
                        self.start_frame(key, ev, v);
                    }
                } else if open {
                    // The sub-threshold event closes (and is excluded
                    // from) the frame.
                    let st = self.frames.remove(&key).expect("frame open");
                    self.emit_frame(&key, &st, out);
                }
            }
            FrameKind::Delta { delta, .. } => {
                if let Some(st) = self.frames.get_mut(&key) {
                    if (v - st.first_value).abs() > delta {
                        let st = self.frames.remove(&key).expect("frame open");
                        self.emit_frame(&key, &st, out);
                        self.start_frame(key, ev, v);
                    } else {
                        Self::extend_frame(st, &self.specs, ev, v);
                    }
                } else {
                    self.start_frame(key, ev, v);
                }
            }
            FrameKind::Aggregate { bound, .. } => {
                if let Some(st) = self.frames.get_mut(&key) {
                    Self::extend_frame(st, &self.specs, ev, v);
                    if st.running_sum >= bound {
                        let st = self.frames.remove(&key).expect("frame open");
                        self.emit_frame(&key, &st, out);
                    }
                } else {
                    self.start_frame(key.clone(), ev, v);
                    let done = self.frames[&key].running_sum >= bound;
                    if done {
                        let st = self.frames.remove(&key).expect("frame open");
                        self.emit_frame(&key, &st, out);
                    }
                }
            }
        }
    }

    fn on_flush(&mut self, _at: Timestamp, out: &mut Emitter) {
        if !self.emit_open_on_flush {
            return;
        }
        let mut keys: Vec<GroupKey> = self.frames.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let st = self.frames.remove(&key).expect("key present");
            self.emit_frame(&key, &st, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::graph::Graph;

    fn ev_kv(ts: u64, pairs: Vec<(&str, Value)>) -> Event {
        Event::from_pairs("s", ts, pairs)
    }

    fn run_op(op: impl Operator + 'static, events: Vec<Event>) -> Vec<Event> {
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::new(g);
        ex.run(events);
        ex.finish();
        sink.take()
    }

    #[test]
    fn predicate_window_open_close() {
        // Track a user's site visit: opens on action=="enter", closes
        // on action=="leave".
        let op = PredicateWindowOp::new(
            Expr::name("action").eq(Expr::lit("enter")),
            Expr::name("action").eq(Expr::lit("leave")),
        )
        .aggregate(AggSpec::count("n"));
        let events = vec![
            ev_kv(1, vec![("action", Value::str("browse"))]), // ignored: no window
            ev_kv(2, vec![("action", Value::str("enter"))]),
            ev_kv(3, vec![("action", Value::str("click"))]),
            ev_kv(4, vec![("action", Value::str("click"))]),
            ev_kv(5, vec![("action", Value::str("leave"))]),
            ev_kv(6, vec![("action", Value::str("click"))]), // after close: ignored
        ];
        let out = run_op(op, events);
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].get("n"),
            Some(&Value::Int(4)),
            "enter..leave inclusive"
        );
        assert_eq!(
            out[0].get("window_start"),
            Some(&Value::Time(Timestamp::new(2)))
        );
        assert_eq!(
            out[0].get("window_end"),
            Some(&Value::Time(Timestamp::new(5)))
        );
    }

    #[test]
    fn predicate_window_excluding_close() {
        let op = PredicateWindowOp::new(
            Expr::name("action").eq(Expr::lit("enter")),
            Expr::name("action").eq(Expr::lit("leave")),
        )
        .exclude_closing_event()
        .aggregate(AggSpec::count("n"));
        let events = vec![
            ev_kv(2, vec![("action", Value::str("enter"))]),
            ev_kv(3, vec![("action", Value::str("click"))]),
            ev_kv(5, vec![("action", Value::str("leave"))]),
        ];
        let out = run_op(op, events);
        assert_eq!(out[0].get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn predicate_window_per_group() {
        let op = PredicateWindowOp::new(
            Expr::name("action").eq(Expr::lit("enter")),
            Expr::name("action").eq(Expr::lit("leave")),
        )
        .group_by(["user"])
        .aggregate(AggSpec::count("n"))
        .emit_open_on_flush();
        let events = vec![
            ev_kv(
                1,
                vec![("user", Value::str("a")), ("action", Value::str("enter"))],
            ),
            ev_kv(
                2,
                vec![("user", Value::str("b")), ("action", Value::str("enter"))],
            ),
            ev_kv(
                3,
                vec![("user", Value::str("a")), ("action", Value::str("leave"))],
            ),
        ];
        let out = run_op(op, events);
        assert_eq!(out.len(), 2, "a closed; b flushed open");
        assert_eq!(out[0].get("user"), Some(&Value::str("a")));
        assert_eq!(out[0].get("n"), Some(&Value::Int(2)));
        assert_eq!(out[1].get("user"), Some(&Value::str("b")));
        assert_eq!(out[1].get("n"), Some(&Value::Int(1)));
    }

    #[test]
    fn threshold_frames() {
        let op = FrameOp::new(FrameKind::Threshold {
            field: Symbol::intern("load"),
            threshold: 50.0,
        })
        .aggregate(AggSpec::max("load", "peak"));
        let events = vec![
            ev_kv(1, vec![("load", Value::Int(10))]),
            ev_kv(2, vec![("load", Value::Int(60))]),
            ev_kv(3, vec![("load", Value::Int(80))]),
            ev_kv(4, vec![("load", Value::Int(20))]), // closes frame
            ev_kv(5, vec![("load", Value::Int(70))]), // opens new frame
        ];
        let out = run_op(op, events);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("peak"), Some(&Value::Int(80)));
        assert_eq!(out[0].get("window_events"), Some(&Value::Int(2)));
        assert_eq!(
            out[1].get("peak"),
            Some(&Value::Int(70)),
            "flushed open frame"
        );
    }

    #[test]
    fn delta_frames() {
        let op = FrameOp::new(FrameKind::Delta {
            field: Symbol::intern("temp"),
            delta: 5.0,
        })
        .aggregate(AggSpec::avg("temp", "mean"));
        let events = vec![
            ev_kv(1, vec![("temp", Value::Int(20))]),
            ev_kv(2, vec![("temp", Value::Int(22))]),
            ev_kv(3, vec![("temp", Value::Int(24))]),
            ev_kv(4, vec![("temp", Value::Int(30))]), // drift > 5 from 20
            ev_kv(5, vec![("temp", Value::Int(31))]),
        ];
        let out = run_op(op, events);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("mean"), Some(&Value::Float(22.0)));
        assert_eq!(out[1].get("mean"), Some(&Value::Float(30.5)));
    }

    #[test]
    fn aggregate_frames() {
        let op = FrameOp::new(FrameKind::Aggregate {
            field: Symbol::intern("qty"),
            bound: 10.0,
        })
        .aggregate(AggSpec::sum("qty", "batch"));
        let events = vec![
            ev_kv(1, vec![("qty", Value::Int(4))]),
            ev_kv(2, vec![("qty", Value::Int(4))]),
            ev_kv(3, vec![("qty", Value::Int(4))]), // sum 12 >= 10: close
            ev_kv(4, vec![("qty", Value::Int(11))]), // single-event frame
            ev_kv(5, vec![("qty", Value::Int(1))]),
        ];
        let out = run_op(op, events);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("batch"), Some(&Value::Int(12)));
        assert_eq!(out[1].get("batch"), Some(&Value::Int(11)));
        assert_eq!(out[2].get("batch"), Some(&Value::Int(1)), "flushed");
    }

    #[test]
    fn frames_skip_events_without_field() {
        let mut op = FrameOp::new(FrameKind::Threshold {
            field: Symbol::intern("load"),
            threshold: 0.0,
        });
        let mut em = Emitter::new();
        op.on_event(&ev_kv(1, vec![("other", Value::Int(1))]), &mut em);
        assert_eq!(op.skipped, 1);
    }
}
