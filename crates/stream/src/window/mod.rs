//! Window operators: shared machinery.
//!
//! Fenestra implements the full window-operator zoo the paper surveys,
//! so that the explicit-state model can be compared against its best
//! window-based alternatives:
//!
//! * [`time`] — tumbling & sliding event-time windows with recompute,
//!   incremental, and pane-based aggregation strategies;
//! * [`count`] — tumbling & sliding count windows;
//! * [`landmark`] — landmark windows (running totals since a pinned
//!   lower bound, optionally reset per period);
//! * [`session`] — gap-based session windows (Google Dataflow);
//! * [`predicate`] — predicate windows (Ghanem et al.) and frames
//!   (Grossniklaus et al.).

pub mod count;
pub mod landmark;
pub mod predicate;
pub mod session;
pub mod time;

use fenestra_base::record::{FieldId, Record, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use std::collections::HashMap;

/// Relation-to-stream behaviour of a window operator, after CQL:
/// each firing of a window produces a *relation* (one row per group);
/// the emit mode decides how that relation becomes a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmitMode {
    /// RStream: emit every row of every firing.
    #[default]
    Rows,
    /// IStream: emit only rows that differ from the previous firing.
    Inserts,
    /// DStream: emit rows of the previous firing that disappeared.
    Deletes,
    /// IStream ∪ DStream with a `sign` field (+1 insert, -1 delete).
    Deltas,
}

/// Field name carrying the window start in emitted rows.
pub fn window_start_field() -> FieldId {
    Symbol::intern("window_start")
}

/// Field name carrying the window end in emitted rows.
pub fn window_end_field() -> FieldId {
    Symbol::intern("window_end")
}

/// Field name carrying the delta sign under [`EmitMode::Deltas`].
pub fn sign_field() -> FieldId {
    Symbol::intern("sign")
}

/// Default output stream for window operators.
pub fn default_window_stream() -> StreamId {
    Symbol::intern("window")
}

/// A grouping key: the values of the group-by fields, in order.
pub type GroupKey = Vec<Value>;

/// Extract the grouping key of a record (missing fields become `Null`).
pub fn group_key(group_by: &[FieldId], rec: &Record) -> GroupKey {
    group_by.iter().map(|f| rec.get_or_null(*f)).collect()
}

/// Write the key fields back into an output record.
pub fn write_key(group_by: &[FieldId], key: &GroupKey, rec: &mut Record) {
    for (f, v) in group_by.iter().zip(key) {
        rec.set(*f, *v);
    }
}

/// Applies CQL relation-to-stream semantics across consecutive firings.
#[derive(Debug, Default)]
pub struct RelationDiff {
    prev: HashMap<GroupKey, Record>,
}

impl RelationDiff {
    /// Fresh differ with an empty previous relation.
    pub fn new() -> RelationDiff {
        RelationDiff::default()
    }

    /// Given the rows of the current firing (keyed by group), return the
    /// rows to emit under `mode`, each tagged with its sign. Updates the
    /// remembered relation.
    pub fn apply(
        &mut self,
        mode: EmitMode,
        current: Vec<(GroupKey, Record)>,
    ) -> Vec<(Record, i64)> {
        let cur_map: HashMap<GroupKey, Record> = current.iter().cloned().collect();
        let mut out = Vec::new();
        match mode {
            EmitMode::Rows => {
                for (_, rec) in current {
                    out.push((rec, 1));
                }
            }
            EmitMode::Inserts => {
                for (key, rec) in &current {
                    if self.prev.get(key) != Some(rec) {
                        out.push((rec.clone(), 1));
                    }
                }
            }
            EmitMode::Deletes => {
                for (key, rec) in &self.prev {
                    if cur_map.get(key) != Some(rec) {
                        out.push((rec.clone(), -1));
                    }
                }
            }
            EmitMode::Deltas => {
                for (key, rec) in &self.prev {
                    if cur_map.get(key) != Some(rec) {
                        out.push((rec.clone(), -1));
                    }
                }
                for (key, rec) in &current {
                    if self.prev.get(key) != Some(rec) {
                        out.push((rec.clone(), 1));
                    }
                }
            }
        }
        self.prev = cur_map;
        out
    }
}

/// Stamp a window row with its bounds and (for deltas) its sign, ready
/// for emission.
pub fn finish_row(
    mut rec: Record,
    start: Timestamp,
    end: Timestamp,
    sign: i64,
    mode: EmitMode,
) -> Record {
    rec.set(window_start_field(), Value::Time(start));
    rec.set(window_end_field(), Value::Time(end));
    if mode == EmitMode::Deltas {
        rec.set(sign_field(), Value::Int(sign));
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(k: i64, v: i64) -> (GroupKey, Record) {
        (
            vec![Value::Int(k)],
            Record::from_pairs([("k", k), ("v", v)]),
        )
    }

    #[test]
    fn rows_mode_emits_everything() {
        let mut d = RelationDiff::new();
        let out = d.apply(EmitMode::Rows, vec![row(1, 10), row(2, 20)]);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, s)| *s == 1));
        let out = d.apply(EmitMode::Rows, vec![row(1, 10)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn inserts_mode_emits_only_changes() {
        let mut d = RelationDiff::new();
        let out = d.apply(EmitMode::Inserts, vec![row(1, 10), row(2, 20)]);
        assert_eq!(out.len(), 2, "everything is new at first");
        let out = d.apply(EmitMode::Inserts, vec![row(1, 10), row(2, 21)]);
        assert_eq!(out.len(), 1, "only the changed group");
        assert_eq!(out[0].0.get("v"), Some(&Value::Int(21)));
    }

    #[test]
    fn deletes_mode_emits_disappearances() {
        let mut d = RelationDiff::new();
        d.apply(EmitMode::Deletes, vec![row(1, 10), row(2, 20)]);
        let out = d.apply(EmitMode::Deletes, vec![row(2, 20)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.get("k"), Some(&Value::Int(1)));
        assert_eq!(out[0].1, -1);
    }

    #[test]
    fn deltas_mode_pairs_changes() {
        let mut d = RelationDiff::new();
        d.apply(EmitMode::Deltas, vec![row(1, 10)]);
        let out = d.apply(EmitMode::Deltas, vec![row(1, 11)]);
        assert_eq!(out.len(), 2, "old row deleted, new row inserted");
        let signs: Vec<i64> = out.iter().map(|(_, s)| *s).collect();
        assert!(signs.contains(&1) && signs.contains(&-1));
    }

    #[test]
    fn group_key_and_write_back() {
        let gb = vec![Symbol::intern("user"), Symbol::intern("page")];
        let rec = Record::from_pairs([("user", "u1")]);
        let key = group_key(&gb, &rec);
        assert_eq!(key, vec![Value::str("u1"), Value::Null]);
        let mut out = Record::new();
        write_key(&gb, &key, &mut out);
        assert_eq!(out.get("user"), Some(&Value::str("u1")));
        assert_eq!(out.get("page"), Some(&Value::Null));
    }

    #[test]
    fn finish_row_stamps_bounds_and_sign() {
        let rec = finish_row(
            Record::new(),
            Timestamp::new(10),
            Timestamp::new(20),
            -1,
            EmitMode::Deltas,
        );
        assert_eq!(
            rec.get(window_start_field()),
            Some(&Value::Time(Timestamp::new(10)))
        );
        assert_eq!(
            rec.get(window_end_field()),
            Some(&Value::Time(Timestamp::new(20)))
        );
        assert_eq!(rec.get(sign_field()), Some(&Value::Int(-1)));
        let rec = finish_row(
            Record::new(),
            Timestamp::new(10),
            Timestamp::new(20),
            1,
            EmitMode::Rows,
        );
        assert_eq!(rec.get(sign_field()), None);
    }
}
