//! Landmark windows: aggregates from a fixed landmark to now.
//!
//! The classic "running totals since midnight": the window's lower
//! bound is pinned (globally or per period), only the upper bound
//! moves. Reports fire at a configurable interval as the watermark
//! advances. With a `period`, the landmark resets every period
//! (e.g. daily totals reported every minute).

use crate::aggregate::{AccumulatorBank, AggSpec};
use crate::operator::{Emitter, Operator};
use crate::window::{finish_row, group_key, write_key, EmitMode, GroupKey};
use fenestra_base::record::{Event, FieldId, Record, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Timestamp};
use std::collections::HashMap;

/// Landmark window operator.
pub struct LandmarkWindowOp {
    /// Report interval (fires at multiples of this).
    report_every: u64,
    /// Landmark reset period (`None` = one landmark at time zero).
    period: Option<u64>,
    group_by: Vec<FieldId>,
    specs: Vec<AggSpec>,
    out_stream: StreamId,
    /// Accumulators per (period index, group).
    banks: HashMap<(u64, GroupKey), AccumulatorBank>,
    /// Events not yet folded into a bank (ts, seq) → event; folded
    /// lazily when a report boundary passes them, so a report at
    /// boundary B covers exactly the events with `ts < B`.
    pending: std::collections::BTreeMap<(u64, u64), Event>,
    seq: u64,
    /// Next report boundary.
    next_report: u64,
}

impl LandmarkWindowOp {
    /// A landmark at time zero, reporting every `report_every`.
    ///
    /// # Panics
    /// Panics if `report_every` is zero.
    pub fn new(report_every: Duration) -> LandmarkWindowOp {
        assert!(!report_every.is_zero(), "zero report interval");
        LandmarkWindowOp {
            report_every: report_every.as_millis(),
            period: None,
            group_by: Vec::new(),
            specs: Vec::new(),
            out_stream: Symbol::intern("landmark"),
            banks: HashMap::new(),
            pending: std::collections::BTreeMap::new(),
            seq: 0,
            next_report: report_every.as_millis(),
        }
    }

    /// Reset the landmark every `period` (chainable). The period must
    /// be a multiple of the report interval.
    pub fn period(mut self, period: Duration) -> LandmarkWindowOp {
        assert!(
            period.as_millis().is_multiple_of(self.report_every),
            "period must be a multiple of the report interval"
        );
        self.period = Some(period.as_millis());
        self
    }

    /// Add an aggregate column (chainable).
    pub fn aggregate(mut self, spec: AggSpec) -> LandmarkWindowOp {
        self.specs.push(spec);
        self
    }

    /// Group rows by these fields (chainable).
    pub fn group_by(
        mut self,
        fields: impl IntoIterator<Item = impl Into<Symbol>>,
    ) -> LandmarkWindowOp {
        self.group_by = fields.into_iter().map(Into::into).collect();
        self
    }

    /// Name the output stream (chainable).
    pub fn out_stream(mut self, stream: impl Into<Symbol>) -> LandmarkWindowOp {
        self.out_stream = stream.into();
        self
    }

    fn period_of(&self, ts: u64) -> u64 {
        match self.period {
            Some(p) => ts / p,
            None => 0,
        }
    }

    fn landmark_of(&self, period_idx: u64) -> u64 {
        match self.period {
            Some(p) => period_idx * p,
            None => 0,
        }
    }

    fn fire(&mut self, boundary: u64, out: &mut Emitter) {
        // Fold in every pending event before the boundary.
        let ready: Vec<(u64, u64)> = self
            .pending
            .range(..(boundary, 0))
            .map(|(k, _)| *k)
            .collect();
        for k in ready {
            let ev = self.pending.remove(&k).expect("key present");
            let key = group_key(&self.group_by, &ev.record);
            let period = self.period_of(ev.ts.millis());
            self.banks
                .entry((period, key))
                .or_insert_with(|| AccumulatorBank::new(&self.specs))
                .add(&self.specs, &ev.record, ev.ts);
        }
        // Only the current period's banks are live at this boundary;
        // report every group in the period that ends at or spans it.
        let period_idx = self.period_of(boundary.saturating_sub(1));
        let mut keys: Vec<GroupKey> = self
            .banks
            .keys()
            .filter(|(p, _)| *p == period_idx)
            .map(|(_, k)| k.clone())
            .collect();
        keys.sort();
        for key in keys {
            let bank = &self.banks[&(period_idx, key.clone())];
            let mut rec = Record::new();
            write_key(&self.group_by, &key, &mut rec);
            bank.write_outputs(&self.specs, &mut rec);
            let rec = finish_row(
                rec,
                Timestamp::new(self.landmark_of(period_idx)),
                Timestamp::new(boundary),
                1,
                EmitMode::Rows,
            );
            out.emit(Event::new(self.out_stream, boundary, rec));
        }
        // Drop banks of periods that ended strictly before this boundary.
        if self.period.is_some() {
            self.banks.retain(|(p, _), _| *p >= period_idx);
        }
    }
}

impl Operator for LandmarkWindowOp {
    fn name(&self) -> &'static str {
        "landmark-window"
    }

    fn on_event(&mut self, ev: &Event, _out: &mut Emitter) {
        let s = self.seq;
        self.seq += 1;
        self.pending.insert((ev.ts.millis(), s), ev.clone());
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emitter) {
        if wm == Timestamp::MAX {
            // Flush: one final report at the boundary past the last
            // pending event.
            let last = self.pending.keys().next_back().map(|(ts, _)| *ts);
            if let Some(last) = last {
                let boundary = (last / self.report_every + 1) * self.report_every;
                self.next_report = self.next_report.max(boundary);
            }
            let boundary = self.next_report;
            self.fire(boundary, out);
            return;
        }
        while self.next_report <= wm.millis() {
            let boundary = self.next_report;
            self.fire(boundary, out);
            self.next_report += self.report_every;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::graph::Graph;
    use fenestra_base::value::Value;

    fn ev(ts: u64, v: i64) -> Event {
        Event::from_pairs("s", ts, [("v", v)])
    }

    fn run(op: LandmarkWindowOp, events: Vec<Event>) -> Vec<Event> {
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::new(g);
        ex.run(events);
        ex.finish();
        sink.take()
    }

    #[test]
    fn running_totals_since_zero() {
        let op = LandmarkWindowOp::new(Duration::millis(10)).aggregate(AggSpec::sum("v", "total"));
        let out = run(op, vec![ev(1, 1), ev(5, 2), ev(12, 4), ev(25, 8)]);
        // Reports at t10 (1+2), t20 (+4), and the flush boundary.
        let totals: Vec<i64> = out
            .iter()
            .map(|e| e.get("total").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(totals[0], 3);
        assert_eq!(totals[1], 7);
        assert_eq!(*totals.last().unwrap(), 15, "flush reports the full total");
        // Window start stays pinned at the landmark.
        assert!(out
            .iter()
            .all(|e| e.get("window_start") == Some(&Value::Time(Timestamp::ZERO))));
    }

    #[test]
    fn periodic_landmark_resets() {
        let op = LandmarkWindowOp::new(Duration::millis(10))
            .period(Duration::millis(20))
            .aggregate(AggSpec::sum("v", "total"));
        let out = run(
            op,
            vec![ev(1, 1), ev(11, 2), ev(21, 4), ev(31, 8), ev(40, 0)],
        );
        // t10: 1 ; t20: 1+2 ; t30: 4 (new period) ; t40: 4+8.
        let rows: Vec<(u64, i64)> = out
            .iter()
            .map(|e| (e.ts.millis(), e.get("total").unwrap().as_int().unwrap()))
            .collect();
        assert_eq!(rows[0], (10, 1));
        assert_eq!(rows[1], (20, 3));
        assert_eq!(rows[2], (30, 4));
        assert_eq!(rows[3], (40, 12));
        // Periods carry their own landmark as window_start.
        assert_eq!(
            out[2].get("window_start"),
            Some(&Value::Time(Timestamp::new(20)))
        );
    }

    #[test]
    fn grouped_landmark() {
        let op = LandmarkWindowOp::new(Duration::millis(10))
            .group_by(["u"])
            .aggregate(AggSpec::count("n"));
        let events = vec![
            Event::from_pairs("s", 1u64, [("u", "a")]),
            Event::from_pairs("s", 2u64, [("u", "b")]),
            Event::from_pairs("s", 3u64, [("u", "a")]),
            Event::from_pairs("s", 10u64, [("u", "a")]),
        ];
        let out = run(op, events);
        // First boundary (t10): a=2, b=1 (sorted by key).
        assert_eq!(out[0].get("u"), Some(&Value::str("a")));
        assert_eq!(out[0].get("n"), Some(&Value::Int(2)));
        assert_eq!(out[1].get("u"), Some(&Value::str("b")));
    }
}
