//! Event-time tumbling and sliding windows.
//!
//! One operator covers both shapes (tumbling = sliding with
//! `slide == size`) and implements the three aggregation strategies
//! compared by experiment E9:
//!
//! * [`SlidingStrategy::Recompute`] — buffer raw events, rescan the
//!   whole window extent at every firing (the naive baseline);
//! * [`SlidingStrategy::Incremental`] — one running accumulator per
//!   group, values added on entry and removed on eviction;
//! * [`SlidingStrategy::Panes`] — per-pane partial aggregates combined
//!   at firing time (Li et al., *Semantics and evaluation techniques
//!   for window aggregates in data streams*, SIGMOD'05). Panes are
//!   `gcd(size, slide)` long.
//!
//! Windows are aligned at time zero and fire when the watermark passes
//! their end; rows follow the configured [`EmitMode`].

use crate::aggregate::{AccumulatorBank, AggSpec};
use crate::operator::{Emitter, Operator};
use crate::window::{
    default_window_stream, finish_row, group_key, write_key, EmitMode, GroupKey, RelationDiff,
};
use fenestra_base::record::{Event, FieldId, Record, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Timestamp};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How a sliding window evaluates its aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlidingStrategy {
    /// Rescan buffered events at every firing.
    Recompute,
    /// Add-on-entry / remove-on-eviction running accumulators.
    Incremental,
    /// Pane-based partial aggregation (default).
    #[default]
    Panes,
}

fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[derive(Debug, Default)]
struct IncKeyState {
    /// Buffered events keyed by (ts, seq); the bank holds exactly those
    /// with `added_to > ts >= evicted_to`.
    buffer: BTreeMap<(u64, u64), Record>,
    bank: Option<AccumulatorBank>,
    added_to: u64,
    seq: u64,
}

enum StrategyState {
    Recompute {
        events: HashMap<GroupKey, BTreeMap<(u64, u64), Record>>,
        seq: u64,
    },
    Incremental {
        keys: HashMap<GroupKey, IncKeyState>,
    },
    Panes {
        pane_len: u64,
        panes: HashMap<GroupKey, BTreeMap<u64, AccumulatorBank>>,
    },
}

/// Tumbling / sliding event-time window operator.
pub struct TimeWindowOp {
    size: u64,
    slide: u64,
    group_by: Vec<FieldId>,
    specs: Vec<AggSpec>,
    emit: EmitMode,
    out_stream: StreamId,
    pending: BTreeSet<u64>,
    state: StrategyState,
    diff: RelationDiff,
}

impl TimeWindowOp {
    /// A tumbling window of `size`.
    pub fn tumbling(size: Duration) -> TimeWindowOp {
        TimeWindowOp::sliding(size, size)
    }

    /// A sliding (hopping) window of `size` advancing by `slide`.
    ///
    /// # Panics
    /// Panics if `size` or `slide` is zero.
    pub fn sliding(size: Duration, slide: Duration) -> TimeWindowOp {
        assert!(
            !size.is_zero() && !slide.is_zero(),
            "zero window size/slide"
        );
        let mut op = TimeWindowOp {
            size: size.as_millis(),
            slide: slide.as_millis(),
            group_by: Vec::new(),
            specs: Vec::new(),
            emit: EmitMode::Rows,
            out_stream: default_window_stream(),
            pending: BTreeSet::new(),
            state: StrategyState::Panes {
                pane_len: 0,
                panes: HashMap::new(),
            },
            diff: RelationDiff::new(),
        };
        op.set_strategy(SlidingStrategy::Panes);
        op
    }

    /// Add an aggregate column (chainable).
    pub fn aggregate(mut self, spec: AggSpec) -> TimeWindowOp {
        self.specs.push(spec);
        self
    }

    /// Group rows by these fields (chainable).
    pub fn group_by(mut self, fields: impl IntoIterator<Item = impl Into<Symbol>>) -> TimeWindowOp {
        self.group_by = fields.into_iter().map(Into::into).collect();
        self
    }

    /// Select the relation-to-stream mode (chainable).
    pub fn emit_mode(mut self, mode: EmitMode) -> TimeWindowOp {
        self.emit = mode;
        self
    }

    /// Name the output stream (chainable).
    pub fn out_stream(mut self, stream: impl Into<Symbol>) -> TimeWindowOp {
        self.out_stream = stream.into();
        self
    }

    /// Select the aggregation strategy (chainable).
    pub fn strategy(mut self, s: SlidingStrategy) -> TimeWindowOp {
        self.set_strategy(s);
        self
    }

    fn set_strategy(&mut self, s: SlidingStrategy) {
        self.state = match s {
            SlidingStrategy::Recompute => StrategyState::Recompute {
                events: HashMap::new(),
                seq: 0,
            },
            SlidingStrategy::Incremental => StrategyState::Incremental {
                keys: HashMap::new(),
            },
            SlidingStrategy::Panes => StrategyState::Panes {
                pane_len: gcd(self.size, self.slide),
                panes: HashMap::new(),
            },
        };
    }

    /// The window starts whose extent contains `ts`.
    fn window_starts(&self, ts: u64) -> Vec<u64> {
        let mut out = Vec::new();
        let mut start = ts - ts % self.slide;
        loop {
            if start + self.size > ts {
                out.push(start);
            }
            if start < self.slide {
                break;
            }
            start -= self.slide;
            if start + self.size <= ts {
                break;
            }
        }
        out
    }

    fn fire(&mut self, start: u64, out: &mut Emitter) {
        let end = start.saturating_add(self.size);
        let mut rows: Vec<(GroupKey, Record)> = Vec::new();
        match &mut self.state {
            StrategyState::Recompute { events, .. } => {
                for (key, buf) in events.iter() {
                    let mut bank = AccumulatorBank::new(&self.specs);
                    let mut any = false;
                    for ((ts, _), rec) in buf.range((start, 0)..(end, 0)) {
                        bank.add(&self.specs, rec, Timestamp::new(*ts));
                        any = true;
                    }
                    if any {
                        let mut rec = Record::new();
                        write_key(&self.group_by, key, &mut rec);
                        bank.write_outputs(&self.specs, &mut rec);
                        rows.push((key.clone(), rec));
                    }
                }
                // Events older than the next window's start are dead.
                let evict_to = start.saturating_add(self.slide);
                for buf in events.values_mut() {
                    while let Some((&(ts, seq), _)) = buf.first_key_value() {
                        if ts < evict_to {
                            buf.remove(&(ts, seq));
                        } else {
                            break;
                        }
                    }
                }
                events.retain(|_, b| !b.is_empty());
            }
            StrategyState::Incremental { keys } => {
                for (key, st) in keys.iter_mut() {
                    // Bring the bank up to this window: add [added_to, end).
                    let bank = st
                        .bank
                        .get_or_insert_with(|| AccumulatorBank::new(&self.specs));
                    if st.added_to < end {
                        for ((ts, _), rec) in st.buffer.range((st.added_to, 0)..(end, 0)) {
                            bank.add(&self.specs, rec, Timestamp::new(*ts));
                        }
                        st.added_to = end;
                    }
                    // Evict everything before the window start.
                    let victims: Vec<(u64, u64)> =
                        st.buffer.range(..(start, 0)).map(|(k, _)| *k).collect();
                    let mut in_window = st.buffer.len() - victims.len();
                    for k in victims {
                        let rec = st.buffer.remove(&k).expect("victim present");
                        bank.remove(&self.specs, &rec, Timestamp::new(k.0));
                    }
                    // Events at ts >= end are buffered but not yet in the
                    // bank; don't count them toward this window.
                    in_window -= st.buffer.range((end, 0)..).count();
                    if in_window > 0 {
                        let mut rec = Record::new();
                        write_key(&self.group_by, key, &mut rec);
                        bank.write_outputs(&self.specs, &mut rec);
                        rows.push((key.clone(), rec));
                    }
                }
                keys.retain(|_, st| !st.buffer.is_empty());
            }
            StrategyState::Panes { pane_len, panes } => {
                for (key, key_panes) in panes.iter_mut() {
                    let mut merged: Option<AccumulatorBank> = None;
                    for (_, bank) in key_panes.range(start..end) {
                        match &mut merged {
                            None => merged = Some(bank.clone()),
                            Some(m) => m.merge(bank),
                        }
                    }
                    if let Some(bank) = merged {
                        let mut rec = Record::new();
                        write_key(&self.group_by, key, &mut rec);
                        bank.write_outputs(&self.specs, &mut rec);
                        rows.push((key.clone(), rec));
                    }
                    // Panes wholly before the next window start are dead.
                    let evict_to = start.saturating_add(self.slide);
                    while let Some((&ps, _)) = key_panes.first_key_value() {
                        if ps + *pane_len <= evict_to {
                            key_panes.remove(&ps);
                        } else {
                            break;
                        }
                    }
                }
                panes.retain(|_, p| !p.is_empty());
            }
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let emitted = self.diff.apply(self.emit, rows);
        for (rec, sign) in emitted {
            let rec = finish_row(
                rec,
                Timestamp::new(start),
                Timestamp::new(end),
                sign,
                self.emit,
            );
            out.emit(Event::new(self.out_stream, end, rec));
        }
    }
}

impl Operator for TimeWindowOp {
    fn name(&self) -> &'static str {
        "time-window"
    }

    fn on_event(&mut self, ev: &Event, _out: &mut Emitter) {
        let ts = ev.ts.millis();
        for s in self.window_starts(ts) {
            self.pending.insert(s);
        }
        let key = group_key(&self.group_by, &ev.record);
        match &mut self.state {
            StrategyState::Recompute { events, seq } => {
                events
                    .entry(key)
                    .or_default()
                    .insert((ts, *seq), ev.record.clone());
                *seq += 1;
            }
            StrategyState::Incremental { keys } => {
                let st = keys.entry(key).or_default();
                let s = st.seq;
                st.seq += 1;
                st.buffer.insert((ts, s), ev.record.clone());
                if ts < st.added_to {
                    // The bank already covers this instant; fold it in now
                    // so the next firing sees it.
                    if let Some(bank) = &mut st.bank {
                        bank.add(&self.specs, &ev.record, ev.ts);
                    }
                }
            }
            StrategyState::Panes { pane_len, panes } => {
                let pane = ts - ts % *pane_len;
                panes
                    .entry(key)
                    .or_default()
                    .entry(pane)
                    .or_insert_with(|| AccumulatorBank::new(&self.specs))
                    .add(&self.specs, &ev.record, ev.ts);
            }
        }
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emitter) {
        while let Some(&start) = self.pending.first() {
            if start.saturating_add(self.size) > wm.millis() {
                break;
            }
            self.pending.remove(&start);
            self.fire(start, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::graph::Graph;
    use fenestra_base::value::Value;

    fn run_windows(op: TimeWindowOp, events: Vec<Event>) -> Vec<Event> {
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::new(g);
        ex.run(events);
        ex.finish();
        sink.take()
    }

    fn ev(ts: u64, amount: i64) -> Event {
        Event::from_pairs("s", ts, [("amount", amount)])
    }

    fn ev_user(ts: u64, user: &str, amount: i64) -> Event {
        Event::from_pairs(
            "s",
            ts,
            [("user", Value::str(user)), ("amount", Value::Int(amount))],
        )
    }

    #[test]
    fn tumbling_sums_per_window() {
        let op = TimeWindowOp::tumbling(Duration::millis(10))
            .aggregate(AggSpec::sum("amount", "total"))
            .aggregate(AggSpec::count("n"));
        let out = run_windows(op, vec![ev(1, 5), ev(3, 5), ev(11, 7), ev(25, 1)]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("total"), Some(&Value::Int(10)));
        assert_eq!(out[0].get("n"), Some(&Value::Int(2)));
        assert_eq!(
            out[0].get("window_start"),
            Some(&Value::Time(Timestamp::new(0)))
        );
        assert_eq!(out[1].get("total"), Some(&Value::Int(7)));
        assert_eq!(out[2].get("total"), Some(&Value::Int(1)));
    }

    #[test]
    fn tumbling_fires_only_after_watermark() {
        let op = TimeWindowOp::tumbling(Duration::millis(10)).aggregate(AggSpec::count("n"));
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::new(g);
        ex.push(ev(1, 1));
        ex.push(ev(9, 1));
        assert_eq!(sink.len(), 0, "window [0,10) not complete at wm 9");
        ex.push(ev(10, 1));
        assert_eq!(sink.len(), 1, "wm 10 completes [0,10)");
        let rows = sink.take();
        assert_eq!(rows[0].get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn grouped_tumbling() {
        let op = TimeWindowOp::tumbling(Duration::millis(10))
            .group_by(["user"])
            .aggregate(AggSpec::sum("amount", "total"));
        let out = run_windows(
            op,
            vec![ev_user(1, "a", 1), ev_user(2, "b", 2), ev_user(3, "a", 10)],
        );
        assert_eq!(out.len(), 2);
        // Rows sorted by key.
        assert_eq!(out[0].get("user"), Some(&Value::str("a")));
        assert_eq!(out[0].get("total"), Some(&Value::Int(11)));
        assert_eq!(out[1].get("user"), Some(&Value::str("b")));
        assert_eq!(out[1].get("total"), Some(&Value::Int(2)));
    }

    fn sliding_events() -> Vec<Event> {
        vec![
            ev(1, 1),
            ev(4, 2),
            ev(8, 4),
            ev(12, 8),
            ev(14, 16),
            ev(22, 32),
        ]
    }

    /// Reference output for size=10, slide=5 over `sliding_events`:
    /// windows [0,10): 1+2+4=7, [5,15): 4+8+16=28, [10,20): 8+16=24,
    /// [15,25): 32? no — 22 only => 32, [20,30): 32.
    fn expected_sliding() -> Vec<(u64, i64)> {
        vec![(10, 7), (15, 28), (20, 24), (25, 32), (30, 32)]
    }

    fn check_strategy(strategy: SlidingStrategy) {
        let op = TimeWindowOp::sliding(Duration::millis(10), Duration::millis(5))
            .strategy(strategy)
            .aggregate(AggSpec::sum("amount", "total"));
        let out = run_windows(op, sliding_events());
        let got: Vec<(u64, i64)> = out
            .iter()
            .map(|e| (e.ts.millis(), e.get("total").unwrap().as_int().unwrap()))
            .collect();
        assert_eq!(got, expected_sliding(), "strategy {strategy:?}");
    }

    #[test]
    fn sliding_recompute() {
        check_strategy(SlidingStrategy::Recompute);
    }

    #[test]
    fn sliding_incremental() {
        check_strategy(SlidingStrategy::Incremental);
    }

    #[test]
    fn sliding_panes() {
        check_strategy(SlidingStrategy::Panes);
    }

    #[test]
    fn strategies_agree_on_min_max_with_removal() {
        let events = vec![ev(1, 9), ev(6, 1), ev(11, 5), ev(16, 7), ev(21, 3)];
        let mut results = Vec::new();
        for strat in [
            SlidingStrategy::Recompute,
            SlidingStrategy::Incremental,
            SlidingStrategy::Panes,
        ] {
            let op = TimeWindowOp::sliding(Duration::millis(10), Duration::millis(5))
                .strategy(strat)
                .aggregate(AggSpec::min("amount", "lo"))
                .aggregate(AggSpec::max("amount", "hi"));
            let out = run_windows(op, events.clone());
            let rows: Vec<(u64, Value, Value)> = out
                .iter()
                .map(|e| (e.ts.millis(), *e.get("lo").unwrap(), *e.get("hi").unwrap()))
                .collect();
            results.push(rows);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }

    #[test]
    fn istream_emits_only_changes() {
        let op = TimeWindowOp::tumbling(Duration::millis(10))
            .group_by(["user"])
            .aggregate(AggSpec::count("n"))
            .emit_mode(EmitMode::Inserts);
        // Same relation in both windows for user a; user b changes.
        let out = run_windows(
            op,
            vec![
                ev_user(1, "a", 1),
                ev_user(2, "b", 1),
                ev_user(11, "a", 1),
                ev_user(12, "b", 1),
                ev_user(13, "b", 1),
            ],
        );
        // Window 1: both rows new (2 inserts). Window 2: a unchanged
        // (n=1), b changed (n=2) -> 1 insert.
        assert_eq!(out.len(), 3);
        let last = &out[2];
        assert_eq!(last.get("user"), Some(&Value::str("b")));
        assert_eq!(last.get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn deltas_emit_signed_rows() {
        let op = TimeWindowOp::tumbling(Duration::millis(10))
            .group_by(["user"])
            .aggregate(AggSpec::count("n"))
            .emit_mode(EmitMode::Deltas);
        let out = run_windows(op, vec![ev_user(1, "a", 1), ev_user(11, "b", 1)]);
        // Firing 1: +a. Firing 2: -a, +b.
        let signs: Vec<i64> = out
            .iter()
            .map(|e| e.get("sign").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(signs.iter().filter(|s| **s == 1).count(), 2);
        assert_eq!(signs.iter().filter(|s| **s == -1).count(), 1);
    }

    #[test]
    fn out_of_order_within_lateness_is_correct() {
        use crate::watermark::WatermarkPolicy;
        let op =
            TimeWindowOp::tumbling(Duration::millis(10)).aggregate(AggSpec::sum("amount", "total"));
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::with_policy(g, WatermarkPolicy::bounded(Duration::millis(5)));
        // 8 arrives after 12 but within the lateness bound.
        for e in [ev(3, 1), ev(12, 2), ev(8, 4), ev(20, 8)] {
            assert!(ex.push(e));
        }
        ex.finish();
        let out = sink.take();
        assert_eq!(out[0].get("total"), Some(&Value::Int(5)), "1+4 in [0,10)");
        assert_eq!(out[1].get("total"), Some(&Value::Int(2)));
    }

    #[test]
    fn window_starts_cover_event() {
        let op = TimeWindowOp::sliding(Duration::millis(10), Duration::millis(5))
            .aggregate(AggSpec::count("n"));
        assert_eq!(op.window_starts(0), vec![0]);
        assert_eq!(op.window_starts(3), vec![0]);
        assert_eq!(op.window_starts(7), vec![5, 0]);
        assert_eq!(op.window_starts(12), vec![10, 5]);
    }

    #[test]
    fn gcd_panes() {
        assert_eq!(gcd(10, 5), 5);
        assert_eq!(gcd(12, 8), 4);
        assert_eq!(gcd(7, 7), 7);
        assert_eq!(gcd(9, 4), 1);
    }
}
