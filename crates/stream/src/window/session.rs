//! Gap-based session windows (the Google Dataflow model the paper
//! cites as the nearest windowed approximation of session state).
//!
//! Events with the same group key belong to one session while gaps
//! between consecutive events stay below the configured gap. A session
//! closes — and its aggregate row is emitted — when the watermark
//! passes `last_event + gap`. Out-of-order events within the lateness
//! bound may merge two provisional sessions; this operator handles the
//! merge.

use crate::aggregate::{AccumulatorBank, AggSpec};
use crate::operator::{Emitter, Operator};
use crate::window::{finish_row, group_key, write_key, EmitMode, GroupKey};
use fenestra_base::record::{Event, FieldId, Record, StreamId};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Timestamp};
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Session {
    first: Timestamp,
    last: Timestamp,
    bank: AccumulatorBank,
    count: u64,
}

/// Session window operator.
pub struct SessionWindowOp {
    gap: Duration,
    group_by: Vec<FieldId>,
    specs: Vec<AggSpec>,
    out_stream: StreamId,
    /// Provisional sessions per key, kept sorted by `first`.
    sessions: HashMap<GroupKey, Vec<Session>>,
}

impl SessionWindowOp {
    /// Sessions separated by inactivity gaps of at least `gap`.
    ///
    /// # Panics
    /// Panics if `gap` is zero.
    pub fn new(gap: Duration) -> SessionWindowOp {
        assert!(!gap.is_zero(), "zero session gap");
        SessionWindowOp {
            gap,
            group_by: Vec::new(),
            specs: Vec::new(),
            out_stream: Symbol::intern("session"),
            sessions: HashMap::new(),
        }
    }

    /// Add an aggregate column (chainable).
    pub fn aggregate(mut self, spec: AggSpec) -> SessionWindowOp {
        self.specs.push(spec);
        self
    }

    /// Group sessions by these fields (chainable).
    pub fn group_by(
        mut self,
        fields: impl IntoIterator<Item = impl Into<Symbol>>,
    ) -> SessionWindowOp {
        self.group_by = fields.into_iter().map(Into::into).collect();
        self
    }

    /// Name the output stream (chainable).
    pub fn out_stream(mut self, stream: impl Into<Symbol>) -> SessionWindowOp {
        self.out_stream = stream.into();
        self
    }

    /// Number of currently open sessions across all keys (a direct
    /// memory proxy for experiment E1).
    pub fn open_sessions(&self) -> usize {
        self.sessions.values().map(|v| v.len()).sum()
    }

    fn emit_session(&self, key: &GroupKey, s: &Session, out: &mut Emitter) {
        let mut rec = Record::new();
        write_key(&self.group_by, key, &mut rec);
        s.bank.write_outputs(&self.specs, &mut rec);
        rec.set(
            "session_events",
            fenestra_base::value::Value::Int(s.count as i64),
        );
        let rec = finish_row(rec, s.first, s.last, 1, EmitMode::Rows);
        out.emit(Event::new(self.out_stream, s.last, rec));
    }
}

impl Operator for SessionWindowOp {
    fn name(&self) -> &'static str {
        "session-window"
    }

    fn on_event(&mut self, ev: &Event, _out: &mut Emitter) {
        let key = group_key(&self.group_by, &ev.record);
        let sessions = self.sessions.entry(key).or_default();
        // Find every provisional session this event touches (within gap
        // on either side); merge them all.
        let gap = self.gap;
        let mut touched: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                // Strict gap semantics (as in Flink/Dataflow): an
                // inactivity span of exactly `gap` already splits.
                ev.ts.saturating_add(gap) > s.first && s.last.saturating_add(gap) > ev.ts
            })
            .map(|(i, _)| i)
            .collect();
        if touched.is_empty() {
            let mut bank = AccumulatorBank::new(&self.specs);
            bank.add(&self.specs, &ev.record, ev.ts);
            let s = Session {
                first: ev.ts,
                last: ev.ts,
                bank,
                count: 1,
            };
            let pos = sessions.partition_point(|x| x.first <= s.first);
            sessions.insert(pos, s);
            return;
        }
        // Merge into the first touched session; drain the rest.
        touched.sort_unstable();
        let base = touched[0];
        for &i in touched[1..].iter().rev() {
            let other = sessions.remove(i);
            let s = &mut sessions[base];
            s.first = s.first.min(other.first);
            s.last = s.last.max(other.last);
            s.bank.merge(&other.bank);
            s.count += other.count;
        }
        let s = &mut sessions[base];
        s.first = s.first.min(ev.ts);
        s.last = s.last.max(ev.ts);
        s.bank.add(&self.specs, &ev.record, ev.ts);
        s.count += 1;
    }

    fn on_watermark(&mut self, wm: Timestamp, out: &mut Emitter) {
        let gap = self.gap;
        let mut closed: Vec<(GroupKey, Session)> = Vec::new();
        for (key, sessions) in self.sessions.iter_mut() {
            let mut i = 0;
            while i < sessions.len() {
                if sessions[i].last.saturating_add(gap) <= wm {
                    closed.push((key.clone(), sessions.remove(i)));
                } else {
                    i += 1;
                }
            }
        }
        self.sessions.retain(|_, v| !v.is_empty());
        // Deterministic emission order: by key, then session start.
        closed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.first.cmp(&b.1.first)));
        for (key, s) in closed {
            self.emit_session(&key, &s, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::graph::Graph;
    use crate::watermark::WatermarkPolicy;
    use fenestra_base::value::Value;

    fn ev(ts: u64, user: &str) -> Event {
        Event::from_pairs("s", ts, [("user", user)])
    }

    fn run(op: SessionWindowOp, events: Vec<Event>, lateness: u64) -> Vec<Event> {
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::with_policy(g, WatermarkPolicy::bounded(Duration::millis(lateness)));
        ex.run(events);
        ex.finish();
        sink.take()
    }

    #[test]
    fn splits_on_gap() {
        let op = SessionWindowOp::new(Duration::millis(10))
            .group_by(["user"])
            .aggregate(AggSpec::count("n"));
        let out = run(
            op,
            vec![ev(0, "a"), ev(5, "a"), ev(8, "a"), ev(30, "a"), ev(35, "a")],
            0,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get("n"), Some(&Value::Int(3)));
        assert_eq!(
            out[0].get("window_start"),
            Some(&Value::Time(Timestamp::new(0)))
        );
        assert_eq!(
            out[0].get("window_end"),
            Some(&Value::Time(Timestamp::new(8)))
        );
        assert_eq!(out[1].get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn per_user_sessions_are_independent() {
        let op = SessionWindowOp::new(Duration::millis(10))
            .group_by(["user"])
            .aggregate(AggSpec::count("n"));
        let out = run(
            op,
            vec![ev(0, "a"), ev(4, "b"), ev(8, "a"), ev(12, "b"), ev(40, "a")],
            0,
        );
        // Sessions: a[0..8] (closed at wm 18.. by event 40), b[4..12],
        // a[40..40] closed at flush.
        assert_eq!(out.len(), 3);
        let users: Vec<&str> = out
            .iter()
            .map(|e| e.get("user").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(users, vec!["a", "b", "a"]);
    }

    #[test]
    fn session_closes_only_after_gap_passes_watermark() {
        let op = SessionWindowOp::new(Duration::millis(10)).aggregate(AggSpec::count("n"));
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::new(g);
        ex.push(ev(0, "a"));
        ex.push(ev(9, "a")); // wm 9 < 0+10: still open
        assert_eq!(sink.len(), 0);
        ex.push(ev(25, "a")); // wm 25 >= 9+10=19: first session closes
        assert_eq!(sink.len(), 1);
        ex.finish();
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn out_of_order_event_merges_two_sessions() {
        // Events 0 and 14 form two provisional sessions (gap 10); the
        // late event at 7 bridges them into one.
        let op = SessionWindowOp::new(Duration::millis(10)).aggregate(AggSpec::count("n"));
        let out = run(op, vec![ev(0, "a"), ev(14, "a"), ev(7, "a")], 20);
        assert_eq!(out.len(), 1, "bridged into a single session");
        assert_eq!(out[0].get("n"), Some(&Value::Int(3)));
        assert_eq!(
            out[0].get("window_start"),
            Some(&Value::Time(Timestamp::new(0)))
        );
        assert_eq!(
            out[0].get("window_end"),
            Some(&Value::Time(Timestamp::new(14)))
        );
    }

    #[test]
    fn open_sessions_tracks_memory() {
        let mut op = SessionWindowOp::new(Duration::millis(10)).group_by(["user"]);
        let mut em = Emitter::new();
        op.on_event(&ev(0, "a"), &mut em);
        op.on_event(&ev(1, "b"), &mut em);
        op.on_event(&ev(2, "c"), &mut em);
        assert_eq!(op.open_sessions(), 3);
        op.on_watermark(Timestamp::new(100), &mut em);
        assert_eq!(op.open_sessions(), 0);
        assert_eq!(em.len(), 3);
    }
}
