//! Count-based windows ("the last N elements"), tumbling and sliding.
//!
//! Count windows are defined over arrival order, so they fire directly
//! on events rather than on watermarks: a tumbling count window of
//! `size` emits after every `size`-th event of a group, a sliding
//! window of `(size, slide)` emits the aggregate of the most recent
//! `size` events after every `slide`-th event (once at least `size`
//! events have arrived; an initial partial firing covers fewer).

use crate::aggregate::{AccumulatorBank, AggSpec};
use crate::operator::{Emitter, Operator};
use crate::window::{finish_row, group_key, write_key, EmitMode, GroupKey};
use fenestra_base::record::{Event, FieldId, Record, StreamId};
use fenestra_base::symbol::Symbol;
use std::collections::{HashMap, VecDeque};

struct KeyState {
    /// The most recent `size` events (ts, record).
    buf: VecDeque<Event>,
    /// Events seen since the last firing.
    since_fire: u64,
    /// Total events seen for this key.
    total: u64,
}

/// Tumbling / sliding count window operator.
pub struct CountWindowOp {
    size: usize,
    slide: usize,
    group_by: Vec<FieldId>,
    specs: Vec<AggSpec>,
    out_stream: StreamId,
    emit_partial_on_flush: bool,
    keys: HashMap<GroupKey, KeyState>,
}

impl CountWindowOp {
    /// A tumbling window of `size` elements.
    pub fn tumbling(size: usize) -> CountWindowOp {
        CountWindowOp::sliding(size, size)
    }

    /// A sliding window of `size` elements advancing every `slide`
    /// elements.
    ///
    /// # Panics
    /// Panics if `size` or `slide` is zero.
    pub fn sliding(size: usize, slide: usize) -> CountWindowOp {
        assert!(size > 0 && slide > 0, "zero count window size/slide");
        CountWindowOp {
            size,
            slide,
            group_by: Vec::new(),
            specs: Vec::new(),
            out_stream: Symbol::intern("count-window"),
            emit_partial_on_flush: false,
            keys: HashMap::new(),
        }
    }

    /// Add an aggregate column (chainable).
    pub fn aggregate(mut self, spec: AggSpec) -> CountWindowOp {
        self.specs.push(spec);
        self
    }

    /// Group windows by these fields (chainable).
    pub fn group_by(
        mut self,
        fields: impl IntoIterator<Item = impl Into<Symbol>>,
    ) -> CountWindowOp {
        self.group_by = fields.into_iter().map(Into::into).collect();
        self
    }

    /// Name the output stream (chainable).
    pub fn out_stream(mut self, stream: impl Into<Symbol>) -> CountWindowOp {
        self.out_stream = stream.into();
        self
    }

    /// Emit partially filled windows at end-of-stream (chainable).
    pub fn emit_partial_on_flush(mut self) -> CountWindowOp {
        self.emit_partial_on_flush = true;
        self
    }

    fn fire(&self, key: &GroupKey, st: &KeyState, out: &mut Emitter) {
        let mut bank = AccumulatorBank::new(&self.specs);
        for ev in &st.buf {
            bank.add(&self.specs, &ev.record, ev.ts);
        }
        let mut rec = Record::new();
        write_key(&self.group_by, key, &mut rec);
        bank.write_outputs(&self.specs, &mut rec);
        let first = st.buf.front().expect("non-empty window").ts;
        let last = st.buf.back().expect("non-empty window").ts;
        let rec = finish_row(rec, first, last, 1, EmitMode::Rows);
        out.emit(Event::new(self.out_stream, last, rec));
    }
}

impl Operator for CountWindowOp {
    fn name(&self) -> &'static str {
        "count-window"
    }

    fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
        let key = group_key(&self.group_by, &ev.record);
        let st = self.keys.entry(key.clone()).or_insert_with(|| KeyState {
            buf: VecDeque::with_capacity(self.size),
            since_fire: 0,
            total: 0,
        });
        st.buf.push_back(ev.clone());
        if st.buf.len() > self.size {
            st.buf.pop_front();
        }
        st.since_fire += 1;
        st.total += 1;
        if st.since_fire >= self.slide as u64 {
            st.since_fire = 0;
            let st = &self.keys[&key];
            self.fire(&key, st, out);
            if self.slide == self.size {
                // Tumbling: the window contents are consumed.
                self.keys.get_mut(&key).expect("key present").buf.clear();
            }
        }
    }

    fn on_flush(&mut self, _at: fenestra_base::time::Timestamp, out: &mut Emitter) {
        if !self.emit_partial_on_flush {
            return;
        }
        let mut keys: Vec<GroupKey> = self.keys.keys().cloned().collect();
        keys.sort();
        for key in keys {
            let st = &self.keys[&key];
            if !st.buf.is_empty() && st.since_fire > 0 {
                self.fire(&key, st, out);
            }
        }
        self.keys.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::graph::Graph;
    use fenestra_base::value::Value;

    fn ev(ts: u64, v: i64) -> Event {
        Event::from_pairs("s", ts, [("v", v)])
    }

    fn run(op: CountWindowOp, events: Vec<Event>) -> Vec<Event> {
        let mut g = Graph::new();
        let w = g.add_op(op);
        g.connect_source("s", w);
        let sink = g.add_sink();
        g.connect(w, sink.node);
        let mut ex = Executor::new(g);
        ex.run(events);
        ex.finish();
        sink.take()
    }

    #[test]
    fn tumbling_every_n_events() {
        let op = CountWindowOp::tumbling(3).aggregate(AggSpec::sum("v", "total"));
        let out = run(op, (1..=7u64).map(|i| ev(i, i as i64)).collect());
        assert_eq!(out.len(), 2, "two complete windows of 3; 7th pending");
        assert_eq!(out[0].get("total"), Some(&Value::Int(6)));
        assert_eq!(out[1].get("total"), Some(&Value::Int(15)));
    }

    #[test]
    fn partial_flush_option() {
        let op = CountWindowOp::tumbling(3)
            .aggregate(AggSpec::sum("v", "total"))
            .emit_partial_on_flush();
        let out = run(op, (1..=7u64).map(|i| ev(i, i as i64)).collect());
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].get("total"), Some(&Value::Int(7)));
    }

    #[test]
    fn sliding_last_n() {
        let op = CountWindowOp::sliding(3, 1).aggregate(AggSpec::sum("v", "total"));
        let out = run(op, (1..=5u64).map(|i| ev(i, i as i64)).collect());
        // Fires on every event with the last ≤3 values:
        // 1, 1+2, 1+2+3, 2+3+4, 3+4+5.
        let sums: Vec<i64> = out
            .iter()
            .map(|e| e.get("total").unwrap().as_int().unwrap())
            .collect();
        assert_eq!(sums, vec![1, 3, 6, 9, 12]);
    }

    #[test]
    fn grouped_count_windows() {
        let op = CountWindowOp::tumbling(2)
            .group_by(["u"])
            .aggregate(AggSpec::count("n"));
        let events = vec![
            Event::from_pairs("s", 1u64, [("u", "a")]),
            Event::from_pairs("s", 2u64, [("u", "b")]),
            Event::from_pairs("s", 3u64, [("u", "a")]),
            Event::from_pairs("s", 4u64, [("u", "a")]),
        ];
        let out = run(op, events);
        assert_eq!(out.len(), 1, "only group a completed a window");
        assert_eq!(out[0].get("u"), Some(&Value::str("a")));
        assert_eq!(out[0].get("n"), Some(&Value::Int(2)));
    }

    #[test]
    fn window_bounds_are_event_times() {
        let op = CountWindowOp::tumbling(2).aggregate(AggSpec::count("n"));
        let out = run(op, vec![ev(10, 1), ev(20, 2)]);
        assert_eq!(
            out[0].get("window_start"),
            Some(&Value::Time(fenestra_base::time::Timestamp::new(10)))
        );
        assert_eq!(
            out[0].get("window_end"),
            Some(&Value::Time(fenestra_base::time::Timestamp::new(20)))
        );
    }
}
