//! Incremental, invertible, and mergeable aggregate functions.
//!
//! Every aggregate supports three evaluation regimes so the window
//! operators can offer the strategies compared in experiment E9:
//!
//! * **add-only** (recompute / tumbling): [`Accumulator::add`];
//! * **invertible** (incremental sliding): [`Accumulator::remove`] —
//!   min/max stay exact by keeping a multiset;
//! * **mergeable** (pane-based sliding, Li et al. \[10\]):
//!   [`Accumulator::merge`] combines per-pane partials.
//!
//! Null input values are skipped (SQL semantics); `Count` counts rows,
//! not values.

use fenestra_base::record::{FieldId, Record};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use std::collections::BTreeMap;

/// Aggregate function kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count.
    Count,
    /// Numeric sum (int unless a float was seen).
    Sum,
    /// Arithmetic mean (always float).
    Avg,
    /// Minimum (exact under removal: multiset-backed).
    Min,
    /// Maximum (exact under removal: multiset-backed).
    Max,
    /// Number of distinct values.
    CountDistinct,
    /// Value of the earliest event (by timestamp, then arrival).
    First,
    /// Value of the latest event (by timestamp, then arrival).
    Last,
    /// Population variance of the numeric values.
    Var,
    /// Population standard deviation of the numeric values.
    Stddev,
}

impl AggFunc {
    /// DSL name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::CountDistinct => "count_distinct",
            AggFunc::First => "first",
            AggFunc::Last => "last",
            AggFunc::Var => "var",
            AggFunc::Stddev => "stddev",
        }
    }

    /// Look up by DSL name.
    pub fn by_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "count_distinct" => AggFunc::CountDistinct,
            "first" => AggFunc::First,
            "last" => AggFunc::Last,
            "var" => AggFunc::Var,
            "stddev" => AggFunc::Stddev,
            _ => return None,
        })
    }
}

/// One aggregate column: function, input field, output field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Input field (ignored by `Count`).
    pub field: Option<FieldId>,
    /// Name of the output field carrying the result.
    pub output: FieldId,
}

impl AggSpec {
    /// `count(*) as output`.
    pub fn count(output: impl Into<Symbol>) -> AggSpec {
        AggSpec {
            func: AggFunc::Count,
            field: None,
            output: output.into(),
        }
    }

    /// `func(field) as output`.
    pub fn new(func: AggFunc, field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec {
            func,
            field: Some(field.into()),
            output: output.into(),
        }
    }

    /// `sum(field) as output`.
    pub fn sum(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::Sum, field, output)
    }

    /// `avg(field) as output`.
    pub fn avg(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::Avg, field, output)
    }

    /// `min(field) as output`.
    pub fn min(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::Min, field, output)
    }

    /// `max(field) as output`.
    pub fn max(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::Max, field, output)
    }

    /// `count_distinct(field) as output`.
    pub fn count_distinct(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::CountDistinct, field, output)
    }

    /// `first(field) as output`.
    pub fn first(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::First, field, output)
    }

    /// `last(field) as output`.
    pub fn last(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::Last, field, output)
    }

    /// `var(field) as output`.
    pub fn var(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::Var, field, output)
    }

    /// `stddev(field) as output`.
    pub fn stddev(field: impl Into<Symbol>, output: impl Into<Symbol>) -> AggSpec {
        AggSpec::new(AggFunc::Stddev, field, output)
    }

    /// Extract this spec's input value from a record.
    pub fn input(&self, rec: &Record) -> Value {
        match self.field {
            Some(f) => rec.get_or_null(f),
            None => Value::Null,
        }
    }
}

#[derive(Debug, Clone)]
enum AccState {
    Count(u64),
    Sum {
        int: i64,
        float: f64,
        saw_float: bool,
        n: u64,
    },
    Avg {
        sum: f64,
        n: u64,
    },
    /// Multiset of values — exact min/max under removal.
    Extreme {
        is_min: bool,
        bag: BTreeMap<Value, u64>,
    },
    Distinct(BTreeMap<Value, u64>),
    /// (timestamp, sequence) → value; first/last by key order.
    Edge {
        is_first: bool,
        bag: BTreeMap<(Timestamp, u64), Value>,
        seq: u64,
    },
    /// Sum / sum-of-squares moments for variance & stddev.
    Moments {
        is_stddev: bool,
        n: u64,
        sum: f64,
        sum_sq: f64,
    },
}

/// Running state of one aggregate.
#[derive(Debug, Clone)]
pub struct Accumulator {
    state: AccState,
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Accumulator {
        let state = match func {
            AggFunc::Count => AccState::Count(0),
            AggFunc::Sum => AccState::Sum {
                int: 0,
                float: 0.0,
                saw_float: false,
                n: 0,
            },
            AggFunc::Avg => AccState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AccState::Extreme {
                is_min: true,
                bag: BTreeMap::new(),
            },
            AggFunc::Max => AccState::Extreme {
                is_min: false,
                bag: BTreeMap::new(),
            },
            AggFunc::CountDistinct => AccState::Distinct(BTreeMap::new()),
            AggFunc::First => AccState::Edge {
                is_first: true,
                bag: BTreeMap::new(),
                seq: 0,
            },
            AggFunc::Last => AccState::Edge {
                is_first: false,
                bag: BTreeMap::new(),
                seq: 0,
            },
            AggFunc::Var => AccState::Moments {
                is_stddev: false,
                n: 0,
                sum: 0.0,
                sum_sq: 0.0,
            },
            AggFunc::Stddev => AccState::Moments {
                is_stddev: true,
                n: 0,
                sum: 0.0,
                sum_sq: 0.0,
            },
        };
        Accumulator { state }
    }

    /// Fold in one value observed at `ts`.
    pub fn add(&mut self, v: Value, ts: Timestamp) {
        match &mut self.state {
            AccState::Count(n) => *n += 1,
            AccState::Sum {
                int,
                float,
                saw_float,
                n,
            } => match v {
                Value::Int(i) => {
                    *int = int.wrapping_add(i);
                    *n += 1;
                }
                Value::Float(f) => {
                    *float += f;
                    *saw_float = true;
                    *n += 1;
                }
                _ => {}
            },
            AccState::Avg { sum, n } => {
                if let Some(f) = v.as_f64() {
                    *sum += f;
                    *n += 1;
                }
            }
            AccState::Extreme { bag, .. } => {
                if !matches!(v, Value::Null) {
                    *bag.entry(v).or_insert(0) += 1;
                }
            }
            AccState::Distinct(bag) => {
                if !matches!(v, Value::Null) {
                    *bag.entry(v).or_insert(0) += 1;
                }
            }
            AccState::Edge { bag, seq, .. } => {
                if !matches!(v, Value::Null) {
                    bag.insert((ts, *seq), v);
                    *seq += 1;
                }
            }
            AccState::Moments { n, sum, sum_sq, .. } => {
                if let Some(f) = v.as_f64() {
                    *n += 1;
                    *sum += f;
                    *sum_sq += f * f;
                }
            }
        }
    }

    /// Remove a previously added value (invertible regime). Removing a
    /// value that was never added leaves min/max/distinct silently
    /// unchanged (the window operator guarantees pairing).
    pub fn remove(&mut self, v: Value, ts: Timestamp) {
        match &mut self.state {
            AccState::Count(n) => *n = n.saturating_sub(1),
            AccState::Sum {
                int,
                float,
                saw_float: _,
                n,
            } => match v {
                Value::Int(i) => {
                    *int = int.wrapping_sub(i);
                    *n = n.saturating_sub(1);
                }
                Value::Float(f) => {
                    *float -= f;
                    *n = n.saturating_sub(1);
                }
                _ => {}
            },
            AccState::Avg { sum, n } => {
                if let Some(f) = v.as_f64() {
                    *sum -= f;
                    *n = n.saturating_sub(1);
                }
            }
            AccState::Extreme { bag, .. } => {
                if let Some(c) = bag.get_mut(&v) {
                    *c -= 1;
                    if *c == 0 {
                        bag.remove(&v);
                    }
                }
            }
            AccState::Distinct(bag) => {
                if let Some(c) = bag.get_mut(&v) {
                    *c -= 1;
                    if *c == 0 {
                        bag.remove(&v);
                    }
                }
            }
            AccState::Edge { bag, .. } => {
                // Remove the oldest entry at this timestamp with this value.
                let key = bag
                    .iter()
                    .find(|((t, _), val)| *t == ts && **val == v)
                    .map(|(k, _)| *k);
                if let Some(k) = key {
                    bag.remove(&k);
                }
            }
            AccState::Moments { n, sum, sum_sq, .. } => {
                if let Some(f) = v.as_f64() {
                    *n = n.saturating_sub(1);
                    *sum -= f;
                    *sum_sq -= f * f;
                }
            }
        }
    }

    /// Combine another accumulator of the *same function* into this one
    /// (pane merging). Panics in debug builds on mismatched kinds.
    pub fn merge(&mut self, other: &Accumulator) {
        match (&mut self.state, &other.state) {
            (AccState::Count(a), AccState::Count(b)) => *a += b,
            (
                AccState::Sum {
                    int: ai,
                    float: af,
                    saw_float: asf,
                    n: an,
                },
                AccState::Sum {
                    int: bi,
                    float: bf,
                    saw_float: bsf,
                    n: bn,
                },
            ) => {
                *ai = ai.wrapping_add(*bi);
                *af += bf;
                *asf |= bsf;
                *an += bn;
            }
            (AccState::Avg { sum: a, n: an }, AccState::Avg { sum: b, n: bn }) => {
                *a += b;
                *an += bn;
            }
            (AccState::Extreme { bag: a, .. }, AccState::Extreme { bag: b, .. }) => {
                for (v, c) in b {
                    *a.entry(*v).or_insert(0) += c;
                }
            }
            (AccState::Distinct(a), AccState::Distinct(b)) => {
                for (v, c) in b {
                    *a.entry(*v).or_insert(0) += c;
                }
            }
            (AccState::Edge { bag: a, seq, .. }, AccState::Edge { bag: b, .. }) => {
                for ((t, _), v) in b {
                    a.insert((*t, *seq), *v);
                    *seq += 1;
                }
            }
            (
                AccState::Moments {
                    n: an,
                    sum: asum,
                    sum_sq: asq,
                    ..
                },
                AccState::Moments {
                    n: bn,
                    sum: bsum,
                    sum_sq: bsq,
                    ..
                },
            ) => {
                *an += bn;
                *asum += bsum;
                *asq += bsq;
            }
            _ => debug_assert!(false, "merging accumulators of different kinds"),
        }
    }

    /// Current aggregate value.
    pub fn value(&self) -> Value {
        match &self.state {
            AccState::Count(n) => Value::Int(*n as i64),
            AccState::Sum {
                int,
                float,
                saw_float,
                n,
            } => {
                if *n == 0 {
                    Value::Null
                } else if *saw_float {
                    Value::Float(*int as f64 + *float)
                } else {
                    Value::Int(*int)
                }
            }
            AccState::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum / *n as f64)
                }
            }
            AccState::Extreme { is_min, bag } => {
                let kv = if *is_min {
                    bag.keys().next()
                } else {
                    bag.keys().next_back()
                };
                kv.copied().unwrap_or(Value::Null)
            }
            AccState::Distinct(bag) => Value::Int(bag.len() as i64),
            AccState::Edge { is_first, bag, .. } => {
                let kv = if *is_first {
                    bag.values().next()
                } else {
                    bag.values().next_back()
                };
                kv.copied().unwrap_or(Value::Null)
            }
            AccState::Moments {
                is_stddev,
                n,
                sum,
                sum_sq,
            } => {
                if *n == 0 {
                    Value::Null
                } else {
                    let nf = *n as f64;
                    let mean = sum / nf;
                    // Clamp tiny negative values from float cancellation.
                    let var = (sum_sq / nf - mean * mean).max(0.0);
                    Value::Float(if *is_stddev { var.sqrt() } else { var })
                }
            }
        }
    }

    /// Whether the accumulator has absorbed no (non-null) input.
    pub fn is_empty(&self) -> bool {
        match &self.state {
            AccState::Count(n) => *n == 0,
            AccState::Sum { n, .. } | AccState::Avg { n, .. } => *n == 0,
            AccState::Extreme { bag, .. } => bag.is_empty(),
            AccState::Distinct(bag) => bag.is_empty(),
            AccState::Edge { bag, .. } => bag.is_empty(),
            AccState::Moments { n, .. } => *n == 0,
        }
    }
}

/// A bank of accumulators matching a slice of [`AggSpec`]s, filled from
/// records.
#[derive(Debug, Clone)]
pub struct AccumulatorBank {
    accs: Vec<Accumulator>,
}

impl AccumulatorBank {
    /// One accumulator per spec.
    pub fn new(specs: &[AggSpec]) -> AccumulatorBank {
        AccumulatorBank {
            accs: specs.iter().map(|s| Accumulator::new(s.func)).collect(),
        }
    }

    /// Fold a record in.
    pub fn add(&mut self, specs: &[AggSpec], rec: &Record, ts: Timestamp) {
        for (acc, spec) in self.accs.iter_mut().zip(specs) {
            match spec.func {
                AggFunc::Count => acc.add(Value::Null, ts),
                _ => acc.add(spec.input(rec), ts),
            }
        }
    }

    /// Remove a previously folded record.
    pub fn remove(&mut self, specs: &[AggSpec], rec: &Record, ts: Timestamp) {
        for (acc, spec) in self.accs.iter_mut().zip(specs) {
            match spec.func {
                AggFunc::Count => acc.remove(Value::Null, ts),
                _ => acc.remove(spec.input(rec), ts),
            }
        }
    }

    /// Merge another bank (same specs).
    pub fn merge(&mut self, other: &AccumulatorBank) {
        for (a, b) in self.accs.iter_mut().zip(&other.accs) {
            a.merge(b);
        }
    }

    /// Materialize the outputs into `rec`.
    pub fn write_outputs(&self, specs: &[AggSpec], rec: &mut Record) {
        for (acc, spec) in self.accs.iter().zip(specs) {
            rec.set(spec.output, acc.value());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    #[test]
    fn count_add_remove() {
        let mut a = Accumulator::new(AggFunc::Count);
        assert_eq!(a.value(), Value::Int(0));
        a.add(Value::Null, ts(1));
        a.add(Value::Null, ts(2));
        assert_eq!(a.value(), Value::Int(2));
        a.remove(Value::Null, ts(1));
        assert_eq!(a.value(), Value::Int(1));
    }

    #[test]
    fn sum_int_then_float_promotes() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.add(Value::Int(3), ts(1));
        assert_eq!(a.value(), Value::Int(3));
        a.add(Value::Float(0.5), ts(2));
        assert_eq!(a.value(), Value::Float(3.5));
        a.remove(Value::Int(3), ts(1));
        assert_eq!(a.value(), Value::Float(0.5));
    }

    #[test]
    fn sum_empty_is_null_and_skips_nonnumeric() {
        let mut a = Accumulator::new(AggFunc::Sum);
        assert_eq!(a.value(), Value::Null);
        a.add(Value::str("x"), ts(1));
        assert_eq!(a.value(), Value::Null, "non-numeric skipped");
        a.add(Value::Null, ts(2));
        assert_eq!(a.value(), Value::Null);
    }

    #[test]
    fn avg() {
        let mut a = Accumulator::new(AggFunc::Avg);
        a.add(Value::Int(1), ts(1));
        a.add(Value::Int(2), ts(2));
        a.add(Value::Int(6), ts(3));
        assert_eq!(a.value(), Value::Float(3.0));
        a.remove(Value::Int(6), ts(3));
        assert_eq!(a.value(), Value::Float(1.5));
    }

    #[test]
    fn min_max_exact_under_removal() {
        let mut mn = Accumulator::new(AggFunc::Min);
        let mut mx = Accumulator::new(AggFunc::Max);
        for v in [5i64, 3, 9, 3] {
            mn.add(Value::Int(v), ts(1));
            mx.add(Value::Int(v), ts(1));
        }
        assert_eq!(mn.value(), Value::Int(3));
        assert_eq!(mx.value(), Value::Int(9));
        // Remove one 3: min still 3 (duplicate remains).
        mn.remove(Value::Int(3), ts(1));
        assert_eq!(mn.value(), Value::Int(3));
        mn.remove(Value::Int(3), ts(1));
        assert_eq!(mn.value(), Value::Int(5));
        mx.remove(Value::Int(9), ts(1));
        assert_eq!(mx.value(), Value::Int(5));
    }

    #[test]
    fn count_distinct() {
        let mut a = Accumulator::new(AggFunc::CountDistinct);
        for v in ["x", "y", "x", "z"] {
            a.add(Value::str(v), ts(1));
        }
        assert_eq!(a.value(), Value::Int(3));
        a.remove(Value::str("x"), ts(1));
        assert_eq!(a.value(), Value::Int(3), "one x remains");
        a.remove(Value::str("x"), ts(1));
        assert_eq!(a.value(), Value::Int(2));
    }

    #[test]
    fn first_last_by_time() {
        let mut f = Accumulator::new(AggFunc::First);
        let mut l = Accumulator::new(AggFunc::Last);
        for (t, v) in [(5u64, "b"), (1, "a"), (9, "c")] {
            f.add(Value::str(v), ts(t));
            l.add(Value::str(v), ts(t));
        }
        assert_eq!(f.value(), Value::str("a"));
        assert_eq!(l.value(), Value::str("c"));
        l.remove(Value::str("c"), ts(9));
        assert_eq!(l.value(), Value::str("b"));
    }

    #[test]
    fn merge_matches_sequential_adds() {
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::CountDistinct,
            AggFunc::First,
            AggFunc::Last,
            AggFunc::Var,
            AggFunc::Stddev,
        ] {
            let vals = [3i64, 1, 4, 1, 5, 9, 2, 6];
            let mut whole = Accumulator::new(func);
            for (i, v) in vals.iter().enumerate() {
                whole.add(Value::Int(*v), ts(i as u64));
            }
            let mut left = Accumulator::new(func);
            let mut right = Accumulator::new(func);
            for (i, v) in vals.iter().enumerate() {
                let acc = if i < 4 { &mut left } else { &mut right };
                acc.add(Value::Int(*v), ts(i as u64));
            }
            left.merge(&right);
            assert_eq!(left.value(), whole.value(), "merge mismatch for {func:?}");
        }
    }

    #[test]
    fn bank_end_to_end() {
        let specs = vec![
            AggSpec::count("n"),
            AggSpec::sum("amount", "total"),
            AggSpec::max("amount", "peak"),
        ];
        let mut bank = AccumulatorBank::new(&specs);
        for (t, amt) in [(1u64, 10i64), (2, 30), (3, 20)] {
            bank.add(&specs, &Record::from_pairs([("amount", amt)]), ts(t));
        }
        let mut out = Record::new();
        bank.write_outputs(&specs, &mut out);
        assert_eq!(out.get("n"), Some(&Value::Int(3)));
        assert_eq!(out.get("total"), Some(&Value::Int(60)));
        assert_eq!(out.get("peak"), Some(&Value::Int(30)));
        bank.remove(&specs, &Record::from_pairs([("amount", 30i64)]), ts(2));
        let mut out = Record::new();
        bank.write_outputs(&specs, &mut out);
        assert_eq!(out.get("n"), Some(&Value::Int(2)));
        assert_eq!(out.get("total"), Some(&Value::Int(30)));
        assert_eq!(out.get("peak"), Some(&Value::Int(20)));
    }

    #[test]
    fn var_and_stddev() {
        let mut v = Accumulator::new(AggFunc::Var);
        let mut s = Accumulator::new(AggFunc::Stddev);
        assert_eq!(v.value(), Value::Null);
        for x in [2i64, 4, 4, 4, 5, 5, 7, 9] {
            v.add(Value::Int(x), ts(1));
            s.add(Value::Int(x), ts(1));
        }
        // Classic example: variance 4, stddev 2.
        assert_eq!(v.value(), Value::Float(4.0));
        assert_eq!(s.value(), Value::Float(2.0));
        // Invertible: remove the 9, recompute matches a fresh fold.
        v.remove(Value::Int(9), ts(1));
        let mut fresh = Accumulator::new(AggFunc::Var);
        for x in [2i64, 4, 4, 4, 5, 5, 7] {
            fresh.add(Value::Int(x), ts(1));
        }
        let got = v.value().as_f64().unwrap();
        let want = fresh.value().as_f64().unwrap();
        assert!((got - want).abs() < 1e-9);
    }

    #[test]
    fn agg_func_names_round_trip() {
        for f in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::CountDistinct,
            AggFunc::First,
            AggFunc::Last,
            AggFunc::Var,
            AggFunc::Stddev,
        ] {
            assert_eq!(AggFunc::by_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::by_name("median"), None);
    }
}
