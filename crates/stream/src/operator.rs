//! The push-based operator abstraction.

use fenestra_base::record::Event;
use fenestra_base::time::Timestamp;

/// Output buffer handed to an operator invocation. Everything emitted
/// is forwarded to the node's downstream operators by the executor.
#[derive(Debug, Default)]
pub struct Emitter {
    buf: Vec<Event>,
}

impl Emitter {
    /// Fresh, empty emitter.
    pub fn new() -> Emitter {
        Emitter::default()
    }

    /// Emit one event downstream.
    pub fn emit(&mut self, ev: Event) {
        self.buf.push(ev);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drain the buffered events (used by the executor).
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.buf)
    }
}

/// A dataflow operator: consumes events, may emit events, and reacts to
/// event-time watermarks.
///
/// Contract:
/// * `on_event` is called once per input event, in the order the
///   executor delivers them (event-time order up to the configured
///   lateness bound).
/// * `on_watermark(wm)` promises no further event with `ts < wm` will
///   arrive. Window operators fire completed windows here.
/// * `on_flush(at)` is called once at end-of-stream; operators emit any
///   residual state (e.g. partially filled windows) if meaningful.
pub trait Operator: Send {
    /// Operator name for metrics and debugging.
    fn name(&self) -> &'static str;

    /// Process one input event.
    fn on_event(&mut self, ev: &Event, out: &mut Emitter);

    /// Observe a watermark: no event with `ts < wm` will follow.
    fn on_watermark(&mut self, _wm: Timestamp, _out: &mut Emitter) {}

    /// End of stream; emit residual state.
    fn on_flush(&mut self, _at: Timestamp, _out: &mut Emitter) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::record::Record;

    struct Echo;
    impl Operator for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn on_event(&mut self, ev: &Event, out: &mut Emitter) {
            out.emit(ev.clone());
        }
    }

    #[test]
    fn emitter_buffers_and_drains() {
        let mut e = Emitter::new();
        assert!(e.is_empty());
        let ev = Event::new("s", 1u64, Record::new());
        let mut op = Echo;
        op.on_event(&ev, &mut e);
        op.on_event(&ev, &mut e);
        assert_eq!(e.len(), 2);
        let drained = e.drain();
        assert_eq!(drained.len(), 2);
        assert!(e.is_empty());
    }
}
