//! Property tests for the stream substrate: every window operator is
//! checked against a brute-force reference model on random event
//! sequences, and the three sliding strategies are checked against
//! each other.

use fenestra_base::record::Event;
use fenestra_base::time::Duration;
use fenestra_base::value::Value;
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::window::time::{SlidingStrategy, TimeWindowOp};
use proptest::prelude::*;

/// Random event sequence: strictly increasing-ish timestamps, small
/// value domain.
fn events_strategy() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((1u64..20, -50i64..50), 1..120).prop_map(|gaps| {
        let mut t = 0u64;
        gaps.into_iter()
            .map(|(gap, v)| {
                t += gap;
                Event::from_pairs("s", t, [("v", v)])
            })
            .collect()
    })
}

fn run_op(op: TimeWindowOp, events: &[Event]) -> Vec<(u64, u64, Value, Value)> {
    let mut g = Graph::new();
    let w = g.add_op(op);
    g.connect_source("s", w);
    let sink = g.add_sink();
    g.connect(w, sink.node);
    let mut ex = Executor::new(g);
    ex.run(events.iter().cloned());
    ex.finish();
    sink.take()
        .iter()
        .map(|e| {
            (
                e.get("window_start").unwrap().as_time().unwrap().millis(),
                e.get("window_end").unwrap().as_time().unwrap().millis(),
                *e.get("total").unwrap(),
                *e.get("n").unwrap(),
            )
        })
        .collect()
}

/// Brute-force reference: for every aligned window that contains at
/// least one event, compute sum and count by scanning.
fn reference(events: &[Event], size: u64, slide: u64) -> Vec<(u64, u64, Value, Value)> {
    let mut out = Vec::new();
    let max_ts = events.iter().map(|e| e.ts.millis()).max().unwrap_or(0);
    let mut start = 0u64;
    while start <= max_ts {
        let end = start + size;
        let in_window: Vec<i64> = events
            .iter()
            .filter(|e| e.ts.millis() >= start && e.ts.millis() < end)
            .map(|e| e.get("v").unwrap().as_int().unwrap())
            .collect();
        if !in_window.is_empty() {
            out.push((
                start,
                end,
                Value::Int(in_window.iter().sum()),
                Value::Int(in_window.len() as i64),
            ));
        }
        start += slide;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tumbling windows equal the brute-force reference.
    #[test]
    fn tumbling_matches_reference(events in events_strategy(), size in 1u64..40) {
        let op = TimeWindowOp::tumbling(Duration::millis(size))
            .aggregate(AggSpec::sum("v", "total"))
            .aggregate(AggSpec::count("n"));
        let got = run_op(op, &events);
        let want = reference(&events, size, size);
        prop_assert_eq!(got, want);
    }

    /// Sliding windows equal the brute-force reference, for every
    /// strategy.
    #[test]
    fn sliding_matches_reference(
        events in events_strategy(),
        slide in 1u64..20,
        factor in 1u64..5,
    ) {
        let size = slide * factor;
        let want = reference(&events, size, slide);
        for strat in [
            SlidingStrategy::Recompute,
            SlidingStrategy::Incremental,
            SlidingStrategy::Panes,
        ] {
            let op = TimeWindowOp::sliding(Duration::millis(size), Duration::millis(slide))
                .strategy(strat)
                .aggregate(AggSpec::sum("v", "total"))
                .aggregate(AggSpec::count("n"));
            let got = run_op(op, &events);
            prop_assert_eq!(&got, &want, "strategy {:?}", strat);
        }
    }

    /// Min/max (non-trivially invertible aggregates) agree across
    /// strategies on random input.
    #[test]
    fn min_max_strategies_agree(events in events_strategy(), slide in 1u64..15) {
        let size = slide * 3;
        let mk = |strat| {
            TimeWindowOp::sliding(Duration::millis(size), Duration::millis(slide))
                .strategy(strat)
                .aggregate(AggSpec::min("v", "total"))
                .aggregate(AggSpec::max("v", "n"))
        };
        let a = run_op(mk(SlidingStrategy::Recompute), &events);
        let b = run_op(mk(SlidingStrategy::Incremental), &events);
        let c = run_op(mk(SlidingStrategy::Panes), &events);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&b, &c);
    }
}

mod session_props {
    use super::*;
    use fenestra_stream::window::session::SessionWindowOp;

    /// Brute-force session detection: sort by ts, split wherever the
    /// inactivity span reaches `gap` (strict semantics).
    fn reference_sessions(events: &[Event], gap: u64) -> Vec<(u64, u64, i64)> {
        let mut ts: Vec<u64> = events.iter().map(|e| e.ts.millis()).collect();
        ts.sort_unstable();
        let mut out: Vec<(u64, u64, i64)> = Vec::new();
        for &t in &ts {
            match out.last_mut() {
                Some((_, last, n)) if t - *last < gap => {
                    *last = t;
                    *n += 1;
                }
                _ => out.push((t, t, 1)),
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Session windows equal the brute-force gap splitter.
        #[test]
        fn sessions_match_reference(events in events_strategy(), gap in 1u64..30) {
            let op = SessionWindowOp::new(Duration::millis(gap)).aggregate(AggSpec::count("n"));
            let mut g = Graph::new();
            let w = g.add_op(op);
            g.connect_source("s", w);
            let sink = g.add_sink();
            g.connect(w, sink.node);
            let mut ex = Executor::new(g);
            ex.run(events.iter().cloned());
            ex.finish();
            let got: Vec<(u64, u64, i64)> = sink
                .take()
                .iter()
                .map(|e| {
                    (
                        e.get("window_start").unwrap().as_time().unwrap().millis(),
                        e.get("window_end").unwrap().as_time().unwrap().millis(),
                        e.get("n").unwrap().as_int().unwrap(),
                    )
                })
                .collect();
            let want = reference_sessions(&events, gap);
            prop_assert_eq!(got, want);
        }
    }
}

mod count_props {
    use super::*;
    use fenestra_stream::window::count::CountWindowOp;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Tumbling count windows partition the stream into chunks of
        /// exactly `size` (the remainder never fires without the
        /// partial-flush option).
        #[test]
        fn count_tumbling_partitions(events in events_strategy(), size in 1usize..10) {
            let op = CountWindowOp::tumbling(size).aggregate(AggSpec::sum("v", "total"));
            let mut g = Graph::new();
            let w = g.add_op(op);
            g.connect_source("s", w);
            let sink = g.add_sink();
            g.connect(w, sink.node);
            let mut ex = Executor::new(g);
            ex.run(events.iter().cloned());
            ex.finish();
            let rows = sink.take();
            prop_assert_eq!(rows.len(), events.len() / size);
            for (i, row) in rows.iter().enumerate() {
                let want: i64 = events[i * size..(i + 1) * size]
                    .iter()
                    .map(|e| e.get("v").unwrap().as_int().unwrap())
                    .sum();
                prop_assert_eq!(row.get("total"), Some(&Value::Int(want)));
            }
        }
    }
}
