//! The query planner: logical plans, rewrite rules, physical plans.
//!
//! Every statement — legacy query-language or the SQL dialect — goes
//! through the same pipeline:
//!
//! ```text
//! text ─parse→ Statement ─build→ LogicalPlan ─rewrite→ LogicalPlan
//!      ─lower→ PhysicalPlan ─execute→ rows / history spans
//! ```
//!
//! The rewrite pass applies three rules, each recorded by name so
//! `EXPLAIN` can show what fired:
//!
//! * **`projection_pruning`** — the projection is absorbed into the
//!   state scan, so fanned-out shards ship only projected columns.
//! * **`predicate_pushdown`** — `col == literal` conjuncts (string or
//!   boolean literals) become constant triple patterns inside the
//!   scan, executing below the shard fan-out instead of after it.
//!   Only equality is pushed: `==` never type-errors, so the rewrite
//!   is exactly semantics-preserving; ordering comparisons can error
//!   and stay in the filter stage.
//! * **`window_normalization`** — `sliding(s, s)` becomes
//!   `tumbling(s)`, and window durations normalize to milliseconds.
//!
//! Physical select plans fold back into a single [`Query`] executed by
//! the unchanged [`crate::exec`] machinery, which is what guarantees
//! legacy statements produce byte-identical replies through the
//! planner. Windowed statements lower to a [`WindowPhys`] whose fact
//! collection runs per shard and whose aggregation drives a
//! `fenestra-stream` window operator over the merged batch.

use crate::ast::{Query, Term, TimeSpec, TriplePattern};
use crate::exec::{Bindings, QueryOptions};
use crate::parser::{parse_query, ParsedQuery};
use crate::sql::{parse_select_stmt, AggName, SelectItem, SelectStmt, WindowKind};
use fenestra_base::error::{Error, Result};
use fenestra_base::expr::{BinOp, Expr, SliceScope};
use fenestra_base::parse::{lex, Tok};
use fenestra_base::record::{Event, Record};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::{Duration, Interval, Timestamp};
use fenestra_base::value::Value;
use fenestra_stream::aggregate::{AggFunc, AggSpec};
use fenestra_stream::oneshot::{run_window_batch, BatchWindow};
use fenestra_temporal::{Provenance, TemporalStore};
use std::sync::Arc;

/// One aggregate column of a window plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggField {
    /// The function.
    pub func: AggName,
    /// Input column (`None` for `count(*)`).
    pub column: Option<Symbol>,
    /// Output row field.
    pub output: Symbol,
}

impl std::fmt::Display for AggField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.column {
            Some(c) => write!(f, "{}({c}) AS {}", self.func.name(), self.output),
            None => write!(f, "{}(*) AS {}", self.func.name(), self.output),
        }
    }
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan the state repository with conjunctive triple patterns.
    StateScan {
        /// The patterns.
        patterns: Vec<TriplePattern>,
        /// Temporal qualifier.
        time: TimeSpec,
        /// Columns the scan emits (empty = all variables). Filled in
        /// by the `projection_pruning` rewrite.
        select: Vec<Symbol>,
    },
    /// Scan one attribute's full fact timeline across all entities.
    FactScan {
        /// The attribute.
        attr: Symbol,
        /// Validity-overlap restriction (`None` = all history).
        range: Option<(Timestamp, Timestamp)>,
    },
    /// Timeline of one `(entity, attribute)`.
    HistoryScan {
        /// Entity name.
        entity: Symbol,
        /// Attribute.
        attr: Symbol,
    },
    /// Keep rows satisfying every predicate.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// The predicates (conjunctive).
        predicates: Vec<Expr>,
    },
    /// Project to named columns, in order.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// Output columns (empty = all, first-mention order).
        columns: Vec<Symbol>,
    },
    /// Window the input by event time and aggregate per group.
    WindowAggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// The window.
        window: WindowKind,
        /// Grouping keys.
        keys: Vec<Symbol>,
        /// Aggregate columns.
        aggs: Vec<AggField>,
        /// Output columns, in statement order.
        columns: Vec<Symbol>,
    },
    /// Replace rows with their count.
    Count {
        /// Input.
        input: Box<LogicalPlan>,
    },
    /// Keep at most `n` rows.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// The bound.
        n: usize,
    },
}

/// A physical plan: what actually executes.
#[derive(Debug, Clone)]
pub enum PhysicalPlan {
    /// A conjunctive select, folded back into one [`Query`] so it runs
    /// on the existing executor (per shard, merged by the caller).
    Select {
        /// The folded query.
        query: Arc<Query>,
    },
    /// A history lookup (fanned out, merged by `(start, shard, seq)`).
    History {
        /// Entity name.
        entity: Symbol,
        /// Attribute.
        attr: Symbol,
    },
    /// A windowed aggregation over fact timelines.
    WindowAgg(Arc<WindowPhys>),
}

/// Physical windowed aggregation: per-shard fact collection feeding a
/// one-shot stream window operator on the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPhys {
    /// The attribute whose timeline is scanned.
    pub attr: Symbol,
    /// Row-level predicates over `{entity, attr}` (entity is the
    /// entity *name* here, unlike state scans).
    pub filters: Vec<Expr>,
    /// Validity-overlap restriction.
    pub range: Option<(Timestamp, Timestamp)>,
    /// The (normalized) window.
    pub window: WindowKind,
    /// Grouping keys (`entity` and/or the attribute column).
    pub keys: Vec<Symbol>,
    /// Aggregate columns.
    pub aggs: Vec<AggField>,
    /// Output columns, in statement order.
    pub columns: Vec<Symbol>,
    /// Row bound applied after aggregation.
    pub limit: Option<usize>,
}

/// The result of executing a plan.
#[derive(Debug, Clone)]
pub enum PlanOutput {
    /// Row output (selects and window aggregations).
    Rows(Vec<Bindings>),
    /// History spans of one `(entity, attribute)`.
    History(Vec<(Interval, Value, Provenance)>),
}

/// A compiled statement, as stored in the plan cache and shared by
/// every consumer of the same statement text (queries and watches).
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// The statement text (trimmed; empty for programmatic plans).
    pub text: String,
    /// `"legacy"` or `"sql"`.
    pub dialect: &'static str,
    /// The logical plan, before rewrites.
    pub logical: LogicalPlan,
    /// The physical plan, after rewrites and lowering.
    pub physical: PhysicalPlan,
    /// Names of the rewrite rules that fired, in application order.
    pub rules: Vec<&'static str>,
    /// Wall time the compile took (µs).
    pub compile_us: u64,
}

/// A statement in either dialect.
#[derive(Debug, Clone)]
pub enum Statement {
    /// Legacy query-language statement.
    Legacy(ParsedQuery),
    /// SQL-dialect statement.
    Sql(SelectStmt),
}

/// If `src` starts with the (case-insensitive) word `explain`, strip
/// it and return `(true, rest)`; the rest is the plan-cache key.
pub fn strip_explain(src: &str) -> (bool, &str) {
    let s = src.trim_start();
    if s.len() > 7
        && s[..7].eq_ignore_ascii_case("explain")
        && s.as_bytes()[7].is_ascii_whitespace()
    {
        (true, s[7..].trim_start())
    } else {
        (false, s)
    }
}

/// Parse a statement, deciding the dialect by shape: `select ?…` and
/// `select count ?…` and `history …` are the legacy language;
/// any other `SELECT` is the SQL dialect.
pub fn parse_statement(src: &str) -> Result<Statement> {
    let toks = lex(src)?;
    let t = |i: usize| toks.get(i).map(|t| &t.tok);
    let is_sql = match t(0) {
        Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("select") => {
            let legacy_vars = matches!(t(1), Some(Tok::Punct("?")));
            let legacy_count = matches!(t(1), Some(Tok::Ident(k)) if k == "count")
                && matches!(t(2), Some(Tok::Punct("?")));
            !legacy_vars && !legacy_count
        }
        _ => false,
    };
    if is_sql {
        Ok(Statement::Sql(parse_select_stmt(src)?))
    } else {
        Ok(Statement::Legacy(parse_query(src)?))
    }
}

// ----- logical plan construction --------------------------------------------

/// Build the logical plan of a legacy statement. Lossless: folding the
/// (unrewritten) plan back yields the same [`Query`].
pub fn build_legacy(parsed: &ParsedQuery) -> LogicalPlan {
    match parsed {
        ParsedQuery::History { entity, attr } => LogicalPlan::HistoryScan {
            entity: *entity,
            attr: *attr,
        },
        ParsedQuery::Select(q) => {
            let mut node = LogicalPlan::StateScan {
                patterns: q.patterns.clone(),
                time: q.time,
                select: Vec::new(),
            };
            if !q.filters.is_empty() {
                node = LogicalPlan::Filter {
                    input: Box::new(node),
                    predicates: q.filters.clone(),
                };
            }
            node = LogicalPlan::Project {
                input: Box::new(node),
                columns: q.select.clone(),
            };
            if let Some(n) = q.limit {
                node = LogicalPlan::Limit {
                    input: Box::new(node),
                    n,
                };
            }
            if q.count_only {
                node = LogicalPlan::Count {
                    input: Box::new(node),
                };
            }
            node
        }
    }
}

fn expr_names(e: &Expr, out: &mut Vec<Symbol>) {
    match e {
        Expr::Lit(_) => {}
        Expr::Name(n) => {
            if !out.contains(n) {
                out.push(*n);
            }
        }
        Expr::Unary(_, a) => expr_names(a, out),
        Expr::Binary(_, a, b) => {
            expr_names(a, out);
            expr_names(b, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_names(a, out);
            }
        }
    }
}

/// Split a predicate into its top-level conjuncts.
fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary(BinOp::And, a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// `name == literal` (either side order), if the conjunct has that shape.
fn as_eq_const(e: &Expr) -> Option<(Symbol, Value)> {
    let Expr::Binary(BinOp::Eq, a, b) = e else {
        return None;
    };
    match (a.as_ref(), b.as_ref()) {
        (Expr::Name(n), Expr::Lit(v)) | (Expr::Lit(v), Expr::Name(n)) => Some((*n, *v)),
        _ => None,
    }
}

fn entity_col() -> Symbol {
    Symbol::intern("entity")
}

fn window_cols() -> [Symbol; 2] {
    [Symbol::intern("window_start"), Symbol::intern("window_end")]
}

/// Build the logical plan of a SQL statement, validating it against
/// the dialect's planning rules.
pub fn build_sql(stmt: &SelectStmt) -> Result<LogicalPlan> {
    if stmt.source.as_str() != "state" {
        return Err(Error::Invalid(format!(
            "unknown source `{}` (the only queryable source is `state`)",
            stmt.source
        )));
    }
    if stmt.items.is_empty() {
        return Err(Error::Invalid("SELECT needs at least one item".into()));
    }
    match stmt.window {
        Some(window) => build_sql_windowed(stmt, window),
        None => build_sql_state(stmt),
    }
}

fn build_sql_state(stmt: &SelectStmt) -> Result<LogicalPlan> {
    let entity = entity_col();
    // A sole `count(*)` counts distinct rows; a sole `count(col)`
    // counts distinct values of that column. Any other aggregate needs
    // a window.
    let count_item: Option<Option<Symbol>> = match (stmt.items.len(), &stmt.items[0]) {
        (
            1,
            SelectItem::Agg {
                func: AggName::Count,
                column,
                ..
            },
        ) => Some(*column),
        _ => None,
    };
    if count_item.is_none()
        && stmt
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Agg { .. }))
    {
        return Err(Error::Invalid(
            "aggregates require a GROUP BY window function (tumbling/sliding/session); \
             only a bare count(*) / count(col) works without one"
                .into(),
        ));
    }
    if !stmt.keys.is_empty() {
        return Err(Error::Invalid(
            "GROUP BY without a window function is not supported; \
             add tumbling(...), sliding(...), or session(...)"
                .into(),
        ));
    }
    // Referenced columns, first-mention order: items, then WHERE.
    let mut referenced: Vec<Symbol> = Vec::new();
    for item in &stmt.items {
        if let SelectItem::Column(c) = item {
            if !referenced.contains(c) {
                referenced.push(*c);
            }
        }
    }
    if let Some(Some(c)) = count_item {
        if c != entity && !referenced.contains(&c) {
            referenced.push(c);
        }
    }
    let preds = stmt
        .where_clause
        .as_ref()
        .map(conjuncts)
        .unwrap_or_default();
    for p in &preds {
        expr_names(p, &mut referenced);
    }
    for w in window_cols() {
        if referenced.contains(&w) {
            return Err(Error::Invalid(format!(
                "`{w}` is only available under a GROUP BY window function"
            )));
        }
    }
    // The entity pseudo-column: an `entity = "name"` conjunct pins the
    // scan to one entity; any other WHERE use of `entity` is rejected
    // (entity variables bind to ids, not names, during matching).
    let mut entity_const: Option<Value> = None;
    let mut filters = Vec::new();
    for p in preds {
        let mut names = Vec::new();
        expr_names(&p, &mut names);
        if names.contains(&entity) {
            match as_eq_const(&p) {
                Some((n, v @ Value::Str(_))) if n == entity && entity_const.is_none() => {
                    entity_const = Some(v);
                }
                _ => {
                    return Err(Error::Invalid(
                        "the `entity` pseudo-column supports only one `entity = \"name\"` \
                         equality in WHERE"
                            .into(),
                    ));
                }
            }
        } else {
            filters.push(p);
        }
    }
    let attrs: Vec<Symbol> = referenced
        .iter()
        .copied()
        .filter(|c| *c != entity)
        .collect();
    if attrs.is_empty() {
        return Err(Error::Invalid(
            "the statement references no attribute columns; select or filter at least one".into(),
        ));
    }
    let entity_projected = stmt
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Column(c) if *c == entity));
    if entity_projected && entity_const.is_some() {
        return Err(Error::Invalid(
            "selecting `entity` while pinning it with `entity = \"...\"` is redundant; \
             drop one of the two"
                .into(),
        ));
    }
    let e_term = match entity_const {
        Some(v) => Term::Const(v),
        None => Term::Var(entity),
    };
    let patterns: Vec<TriplePattern> = attrs
        .iter()
        .map(|a| TriplePattern {
            e: e_term.clone(),
            a: *a,
            v: Term::Var(*a),
        })
        .collect();
    let mut node = LogicalPlan::StateScan {
        patterns,
        time: stmt.time,
        select: Vec::new(),
    };
    if !filters.is_empty() {
        node = LogicalPlan::Filter {
            input: Box::new(node),
            predicates: filters,
        };
    }
    let columns: Vec<Symbol> = match count_item {
        // count(*) counts distinct (entity, attrs) combinations — the
        // legacy `select count ?…` over every bound variable.
        Some(None) => {
            let mut cols = Vec::new();
            if matches!(e_term, Term::Var(_)) {
                cols.push(entity);
            }
            cols.extend(attrs.iter().copied());
            cols
        }
        // count(col) counts distinct values of that column.
        Some(Some(c)) => vec![c],
        None => stmt.items.iter().map(|i| i.output_name()).collect(),
    };
    node = LogicalPlan::Project {
        input: Box::new(node),
        columns,
    };
    if let Some(n) = stmt.limit {
        node = LogicalPlan::Limit {
            input: Box::new(node),
            n,
        };
    }
    if count_item.is_some() {
        node = LogicalPlan::Count {
            input: Box::new(node),
        };
    }
    Ok(node)
}

fn build_sql_windowed(stmt: &SelectStmt, window: WindowKind) -> Result<LogicalPlan> {
    let entity = entity_col();
    let [wstart, wend] = window_cols();
    // Exactly one attribute column may be referenced.
    let mut attrs: Vec<Symbol> = Vec::new();
    let mut note = |c: Symbol| {
        if c != entity && c != wstart && c != wend && !attrs.contains(&c) {
            attrs.push(c);
        }
    };
    for item in &stmt.items {
        match item {
            SelectItem::Column(c) => note(*c),
            SelectItem::Agg {
                column: Some(c), ..
            } => note(*c),
            SelectItem::Agg { .. } => {}
        }
    }
    for k in &stmt.keys {
        note(*k);
    }
    let mut where_names = Vec::new();
    if let Some(w) = &stmt.where_clause {
        expr_names(w, &mut where_names);
    }
    for n in &where_names {
        note(*n);
    }
    if attrs.len() != 1 {
        return Err(Error::Invalid(format!(
            "windowed statements read exactly one attribute column (got {})",
            if attrs.is_empty() {
                "none; name one, e.g. count(attr)".to_string()
            } else {
                attrs
                    .iter()
                    .map(|a| a.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        )));
    }
    let attr = attrs[0];
    for k in &stmt.keys {
        if *k != entity && *k != attr {
            return Err(Error::Invalid(format!(
                "GROUP BY key `{k}` must be `entity` or the scanned attribute column `{attr}`"
            )));
        }
    }
    let mut aggs = Vec::new();
    let mut outputs: Vec<Symbol> = Vec::new();
    for item in &stmt.items {
        let out = item.output_name();
        if outputs.contains(&out) {
            return Err(Error::Invalid(format!(
                "duplicate output column `{out}`; add AS aliases"
            )));
        }
        outputs.push(out);
        match item {
            SelectItem::Column(c) => {
                if *c != wstart && *c != wend && !stmt.keys.contains(c) {
                    return Err(Error::Invalid(format!(
                        "column `{c}` must appear in GROUP BY (or be window_start/window_end)"
                    )));
                }
            }
            SelectItem::Agg { func, column, .. } => {
                if *func != AggName::Count && *column != Some(attr) {
                    return Err(Error::Invalid(format!(
                        "aggregate input must be the scanned attribute column `{attr}`"
                    )));
                }
                aggs.push(AggField {
                    func: *func,
                    column: *column,
                    output: out,
                });
            }
        }
    }
    if aggs.is_empty() {
        return Err(Error::Invalid(
            "windowed statements need at least one aggregate item".into(),
        ));
    }
    let range = match stmt.time {
        TimeSpec::Current => None,
        TimeSpec::During(a, b) => Some((a, b)),
        TimeSpec::AsOf(_) => {
            return Err(Error::Invalid(
                "windowed statements take DURING a TO b (a time range), not AS OF".into(),
            ));
        }
    };
    let mut node = LogicalPlan::FactScan { attr, range };
    let preds = stmt
        .where_clause
        .as_ref()
        .map(conjuncts)
        .unwrap_or_default();
    if !preds.is_empty() {
        node = LogicalPlan::Filter {
            input: Box::new(node),
            predicates: preds,
        };
    }
    node = LogicalPlan::WindowAggregate {
        input: Box::new(node),
        window,
        keys: stmt.keys.clone(),
        aggs,
        columns: outputs,
    };
    if let Some(n) = stmt.limit {
        node = LogicalPlan::Limit {
            input: Box::new(node),
            n,
        };
    }
    Ok(node)
}

// ----- rewrites --------------------------------------------------------------

fn scan_variables(patterns: &[TriplePattern]) -> Vec<Symbol> {
    let mut out = Vec::new();
    for p in patterns {
        for t in [&p.e, &p.v] {
            if let Some(v) = t.as_var() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Apply the rewrite rules, returning the rewritten plan and the names
/// of the rules that fired.
pub fn rewrite(plan: LogicalPlan) -> (LogicalPlan, Vec<&'static str>) {
    let mut rules = Vec::new();
    let plan = rewrite_node(plan, &mut rules);
    (plan, rules)
}

fn note_rule(rules: &mut Vec<&'static str>, name: &'static str) {
    if !rules.contains(&name) {
        rules.push(name);
    }
}

fn rewrite_node(plan: LogicalPlan, rules: &mut Vec<&'static str>) -> LogicalPlan {
    match plan {
        // Window normalization: sliding with hop == size is tumbling.
        LogicalPlan::WindowAggregate {
            input,
            window,
            keys,
            aggs,
            columns,
        } => {
            let window = match window {
                WindowKind::Sliding { size_ms, hop_ms } if size_ms == hop_ms => {
                    note_rule(rules, "window_normalization");
                    WindowKind::Tumbling { size_ms }
                }
                other => other,
            };
            LogicalPlan::WindowAggregate {
                input: Box::new(rewrite_node(*input, rules)),
                window,
                keys,
                aggs,
                columns,
            }
        }
        // Projection pruning: absorb the projection into the scan so
        // shards ship only projected columns. Absorb *before* visiting
        // the children — predicate pushdown needs the scan's column
        // list to know a filtered column is not emitted.
        LogicalPlan::Project { input, columns } => match absorb_projection(*input, &columns, rules)
        {
            Ok(absorbed) => rewrite_node(absorbed, rules),
            Err(input) => LogicalPlan::Project {
                input: Box::new(rewrite_node(input, rules)),
                columns,
            },
        },
        LogicalPlan::Filter { input, predicates } => {
            let input = rewrite_node(*input, rules);
            push_predicates(input, predicates, rules)
        }
        LogicalPlan::Count { input } => LogicalPlan::Count {
            input: Box::new(rewrite_node(*input, rules)),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(rewrite_node(*input, rules)),
            n,
        },
        leaf => leaf,
    }
}

/// Try to absorb a projection into the scan below (possibly through a
/// filter). Returns the absorbed tree, or the untouched input on Err.
fn absorb_projection(
    input: LogicalPlan,
    columns: &[Symbol],
    rules: &mut Vec<&'static str>,
) -> std::result::Result<LogicalPlan, LogicalPlan> {
    match input {
        LogicalPlan::StateScan {
            patterns,
            time,
            select,
        } if select.is_empty() => {
            if !columns.is_empty() && columns.len() < scan_variables(&patterns).len() {
                note_rule(rules, "projection_pruning");
            }
            Ok(LogicalPlan::StateScan {
                patterns,
                time,
                select: columns.to_vec(),
            })
        }
        LogicalPlan::Filter { input, predicates } => {
            match absorb_projection(*input, columns, rules) {
                Ok(absorbed) => Ok(LogicalPlan::Filter {
                    input: Box::new(absorbed),
                    predicates,
                }),
                Err(inner) => Err(LogicalPlan::Filter {
                    input: Box::new(inner),
                    predicates,
                }),
            }
        }
        other => Err(other),
    }
}

/// Push `col == literal` conjuncts into the scan's triple patterns.
fn push_predicates(
    input: LogicalPlan,
    predicates: Vec<Expr>,
    rules: &mut Vec<&'static str>,
) -> LogicalPlan {
    let LogicalPlan::StateScan {
        mut patterns,
        time,
        select,
    } = input
    else {
        if predicates.is_empty() {
            return input;
        }
        return LogicalPlan::Filter {
            input: Box::new(input),
            predicates,
        };
    };
    let mut kept: Vec<Expr> = Vec::new();
    for (i, p) in predicates.iter().enumerate() {
        let pushed = (|| {
            let (n, v) = as_eq_const(p)?;
            // Only total-equality types: `==` on strings/booleans is
            // exactly the pattern-constant match, so substituting is
            // semantics-preserving. Numeric literals stay in the
            // filter (the numeric tower equates Int 3 and Float 3.0;
            // pattern constants would not).
            if !matches!(v, Value::Str(_) | Value::Bool(_)) {
                return None;
            }
            // The scan must not emit the column (pruned projection),
            // and no other predicate may reference it.
            if select.is_empty() || select.contains(&n) {
                return None;
            }
            for (j, other) in predicates.iter().enumerate() {
                if i != j {
                    let mut names = Vec::new();
                    expr_names(other, &mut names);
                    if names.contains(&n) {
                        return None;
                    }
                }
            }
            // Exactly one value-position binding, no entity-position use.
            let mut value_hits = Vec::new();
            for (pi, pat) in patterns.iter().enumerate() {
                if pat.e.as_var() == Some(n) {
                    return None;
                }
                if pat.v.as_var() == Some(n) {
                    value_hits.push(pi);
                }
            }
            if value_hits.len() != 1 {
                return None;
            }
            Some((value_hits[0], v))
        })();
        match pushed {
            Some((pi, v)) => {
                patterns[pi].v = Term::Const(v);
                note_rule(rules, "predicate_pushdown");
            }
            None => kept.push(p.clone()),
        }
    }
    let scan = LogicalPlan::StateScan {
        patterns,
        time,
        select,
    };
    if kept.is_empty() {
        scan
    } else {
        LogicalPlan::Filter {
            input: Box::new(scan),
            predicates: kept,
        }
    }
}

// ----- lowering ---------------------------------------------------------------

/// Fold a (rewritten) select tree back into one [`Query`]. `None` if
/// the tree is not a select shape.
pub fn fold_select(plan: &LogicalPlan) -> Option<Query> {
    let mut q = Query::new();
    fn walk(p: &LogicalPlan, q: &mut Query) -> Option<()> {
        match p {
            LogicalPlan::Count { input } => {
                q.count_only = true;
                walk(input, q)
            }
            LogicalPlan::Limit { input, n } => {
                q.limit = Some(*n);
                walk(input, q)
            }
            LogicalPlan::Project { input, columns } => {
                q.select = columns.clone();
                walk(input, q)
            }
            LogicalPlan::Filter { input, predicates } => {
                q.filters = predicates.clone();
                walk(input, q)
            }
            LogicalPlan::StateScan {
                patterns,
                time,
                select,
            } => {
                q.patterns = patterns.clone();
                q.time = *time;
                if q.select.is_empty() {
                    q.select = select.clone();
                }
                Some(())
            }
            _ => None,
        }
    }
    walk(plan, &mut q)?;
    Some(q)
}

/// Lower a rewritten logical plan to a physical plan.
pub fn lower(plan: &LogicalPlan) -> Result<PhysicalPlan> {
    if let LogicalPlan::HistoryScan { entity, attr } = plan {
        return Ok(PhysicalPlan::History {
            entity: *entity,
            attr: *attr,
        });
    }
    if let Some(phys) = lower_window(plan) {
        return Ok(PhysicalPlan::WindowAgg(Arc::new(phys)));
    }
    match fold_select(plan) {
        Some(q) => Ok(PhysicalPlan::Select { query: Arc::new(q) }),
        None => Err(Error::Invalid(
            "plan does not lower to a physical plan".into(),
        )),
    }
}

fn lower_window(plan: &LogicalPlan) -> Option<WindowPhys> {
    let (limit, inner) = match plan {
        LogicalPlan::Limit { input, n } => (Some(*n), input.as_ref()),
        other => (None, other),
    };
    let LogicalPlan::WindowAggregate {
        input,
        window,
        keys,
        aggs,
        columns,
    } = inner
    else {
        return None;
    };
    let (filters, scan) = match input.as_ref() {
        LogicalPlan::Filter { input, predicates } => (predicates.clone(), input.as_ref()),
        other => (Vec::new(), other),
    };
    let LogicalPlan::FactScan { attr, range } = scan else {
        return None;
    };
    Some(WindowPhys {
        attr: *attr,
        filters,
        range: *range,
        window: *window,
        keys: keys.clone(),
        aggs: aggs.clone(),
        columns: columns.clone(),
        limit,
    })
}

// ----- compilation ------------------------------------------------------------

/// Compile a statement text into a cached plan (parse → build →
/// rewrite → lower), timing itself.
pub fn compile(src: &str) -> Result<CachedPlan> {
    let started = std::time::Instant::now();
    let text = src.trim().to_string();
    let (dialect, logical) = match parse_statement(&text)? {
        Statement::Legacy(parsed) => ("legacy", build_legacy(&parsed)),
        Statement::Sql(stmt) => ("sql", build_sql(&stmt)?),
    };
    let (rewritten, rules) = rewrite(logical.clone());
    let physical = lower(&rewritten)?;
    Ok(CachedPlan {
        text,
        dialect,
        logical,
        physical,
        rules,
        compile_us: started.elapsed().as_micros() as u64,
    })
}

impl CachedPlan {
    /// Compile a programmatic [`Query`] (the embedded watch path).
    pub fn from_query(q: Query) -> CachedPlan {
        let started = std::time::Instant::now();
        let logical = build_legacy(&ParsedQuery::Select(q));
        let (rewritten, rules) = rewrite(logical.clone());
        let physical = lower(&rewritten).expect("select plans always lower");
        CachedPlan {
            text: String::new(),
            dialect: "legacy",
            logical,
            physical,
            rules,
            compile_us: started.elapsed().as_micros() as u64,
        }
    }

    /// Whether the plan produces rows (watchable); history plans don't.
    pub fn is_watchable(&self) -> bool {
        !matches!(self.physical, PhysicalPlan::History { .. })
    }

    /// Execute against one store.
    pub fn execute(&self, store: &TemporalStore, opts: QueryOptions) -> Result<PlanOutput> {
        match &self.physical {
            PhysicalPlan::Select { query } => Ok(PlanOutput::Rows(crate::exec::execute_with(
                store, query, opts,
            )?)),
            PhysicalPlan::History { entity, attr } => {
                let Some(e) = store.lookup_entity(*entity) else {
                    return Err(Error::Invalid(format!("unknown entity `{entity}`")));
                };
                Ok(PlanOutput::History(store.history(e, *attr)))
            }
            PhysicalPlan::WindowAgg(w) => Ok(PlanOutput::Rows(w.execute_local(store)?)),
        }
    }
}

// ----- window-plan execution --------------------------------------------------

impl WindowPhys {
    /// Pull this plan's facts out of one store as synthetic events
    /// (`{entity, <attr>}` stamped at each fact's validity start), in
    /// deterministic (entity-name, validity-start) order, with the
    /// plan's filters and range already applied.
    pub fn collect_facts(&self, store: &TemporalStore) -> Result<Vec<Event>> {
        let entity = entity_col();
        let mut named: Vec<(Symbol, fenestra_temporal::EntityId)> =
            store.named_entities().collect();
        named.sort_by_key(|(n, _)| n.as_str());
        let mut out = Vec::new();
        for (name, e) in named {
            for (interval, value, _prov) in store.history(e, self.attr) {
                if let Some((from, to)) = self.range {
                    if !interval.overlaps_range(from, to) {
                        continue;
                    }
                }
                let bindings = [(entity, Value::Str(name)), (self.attr, value)];
                let mut keep = true;
                for f in &self.filters {
                    if !f.eval_bool(&SliceScope(&bindings))? {
                        keep = false;
                        break;
                    }
                }
                if !keep {
                    continue;
                }
                let mut rec = Record::new();
                rec.set(entity, Value::Str(name));
                rec.set(self.attr, value);
                out.push(Event::new("facts", interval.start, rec));
            }
        }
        // Stable: equal timestamps keep entity-name order.
        out.sort_by_key(|ev| ev.ts);
        Ok(out)
    }

    /// Merge per-shard fact batches deterministically: stable-sort by
    /// timestamp, so equal timestamps keep (shard, seq) order.
    pub fn merge_fact_batches(batches: Vec<Vec<Event>>) -> Vec<Event> {
        let mut all: Vec<Event> = batches.into_iter().flatten().collect();
        all.sort_by_key(|ev| ev.ts);
        all
    }

    /// Aggregate a merged, timestamp-sorted fact batch into output
    /// rows (sorted, deduplicated, limited).
    pub fn aggregate(&self, events: Vec<Event>) -> Result<Vec<Bindings>> {
        let window = match self.window {
            WindowKind::Tumbling { size_ms } => BatchWindow::Tumbling(Duration::millis(size_ms)),
            WindowKind::Sliding { size_ms, hop_ms } => {
                BatchWindow::Sliding(Duration::millis(size_ms), Duration::millis(hop_ms))
            }
            WindowKind::Session { gap_ms } => BatchWindow::Session(Duration::millis(gap_ms)),
        };
        let specs: Vec<AggSpec> = self
            .aggs
            .iter()
            .map(|a| match (a.func, a.column) {
                (AggName::Count, _) => AggSpec::count(a.output),
                (AggName::Sum, Some(c)) => AggSpec::new(AggFunc::Sum, c, a.output),
                (AggName::Avg, Some(c)) => AggSpec::new(AggFunc::Avg, c, a.output),
                (AggName::Min, Some(c)) => AggSpec::new(AggFunc::Min, c, a.output),
                (AggName::Max, Some(c)) => AggSpec::new(AggFunc::Max, c, a.output),
                (f, None) => unreachable!("{} without input column", f.name()),
            })
            .collect();
        let records = run_window_batch(window, &self.keys, &specs, events)?;
        let mut rows: Vec<Bindings> = records
            .into_iter()
            .map(|rec| {
                self.columns
                    .iter()
                    .map(|c| (*c, rec.get_or_null(*c)))
                    .collect()
            })
            .collect();
        rows.sort();
        rows.dedup();
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        Ok(rows)
    }

    /// Collect + aggregate against one store.
    pub fn execute_local(&self, store: &TemporalStore) -> Result<Vec<Bindings>> {
        let facts = self.collect_facts(store)?;
        self.aggregate(facts)
    }
}

// ----- rendering (EXPLAIN) ----------------------------------------------------

fn fmt_term(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("?{v}"),
        Term::Const(v) => format!("{v}"),
    }
}

fn fmt_patterns(patterns: &[TriplePattern]) -> String {
    patterns
        .iter()
        .map(|p| format!("{} {} {}", fmt_term(&p.e), p.a, fmt_term(&p.v)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_time(t: TimeSpec) -> String {
    match t {
        TimeSpec::Current => "current".into(),
        TimeSpec::AsOf(t) => format!("asof {}", t.millis()),
        TimeSpec::During(a, b) => format!("during [{}, {})", a.millis(), b.millis()),
    }
}

fn fmt_symbols(syms: &[Symbol]) -> String {
    syms.iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_exprs(exprs: &[Expr]) -> String {
    exprs
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_aggs(aggs: &[AggField]) -> String {
    aggs.iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_range(range: &Option<(Timestamp, Timestamp)>) -> String {
    match range {
        None => "full".into(),
        Some((a, b)) => format!("[{}, {})", a.millis(), b.millis()),
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

/// Render a logical plan as an indented tree (one node per line).
pub fn render_logical(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    fn walk(p: &LogicalPlan, depth: usize, out: &mut String) {
        match p {
            LogicalPlan::StateScan {
                patterns,
                time,
                select,
            } => {
                let sel = if select.is_empty() {
                    "*".to_string()
                } else {
                    fmt_symbols(select)
                };
                line(
                    out,
                    depth,
                    &format!(
                        "StateScan patterns=[{}] time={} select=[{sel}]",
                        fmt_patterns(patterns),
                        fmt_time(*time)
                    ),
                );
            }
            LogicalPlan::FactScan { attr, range } => {
                line(
                    out,
                    depth,
                    &format!("FactScan attr={attr} range={}", fmt_range(range)),
                );
            }
            LogicalPlan::HistoryScan { entity, attr } => {
                line(
                    out,
                    depth,
                    &format!("HistoryScan entity=\"{entity}\" attr={attr}"),
                );
            }
            LogicalPlan::Filter { input, predicates } => {
                line(
                    out,
                    depth,
                    &format!("Filter preds=[{}]", fmt_exprs(predicates)),
                );
                walk(input, depth + 1, out);
            }
            LogicalPlan::Project { input, columns } => {
                let cols = if columns.is_empty() {
                    "*".to_string()
                } else {
                    fmt_symbols(columns)
                };
                line(out, depth, &format!("Project cols=[{cols}]"));
                walk(input, depth + 1, out);
            }
            LogicalPlan::WindowAggregate {
                input,
                window,
                keys,
                aggs,
                columns,
            } => {
                line(
                    out,
                    depth,
                    &format!(
                        "WindowAggregate window={window} keys=[{}] aggs=[{}] emit=[{}]",
                        fmt_symbols(keys),
                        fmt_aggs(aggs),
                        fmt_symbols(columns)
                    ),
                );
                walk(input, depth + 1, out);
            }
            LogicalPlan::Count { input } => {
                line(out, depth, "Count");
                walk(input, depth + 1, out);
            }
            LogicalPlan::Limit { input, n } => {
                line(out, depth, &format!("Limit n={n}"));
                walk(input, depth + 1, out);
            }
        }
    }
    walk(plan, 0, &mut out);
    out
}

/// Render a physical plan as an indented tree, showing the shard
/// fan-out / merge boundary for `shards > 1`.
pub fn render_physical(plan: &PhysicalPlan, shards: usize) -> String {
    let mut out = String::new();
    match plan {
        PhysicalPlan::Select { query } => {
            let mut depth = 0;
            if query.count_only {
                line(&mut out, depth, "Count");
                depth += 1;
            }
            if let Some(n) = query.limit {
                line(&mut out, depth, &format!("Limit n={n}"));
                depth += 1;
            }
            if shards > 1 {
                line(
                    &mut out,
                    depth,
                    &format!("Merge shards={shards} sort=rows dedup=true"),
                );
                depth += 1;
            }
            let partial = if shards > 1 { " partial" } else { "" };
            let sel = if query.select.is_empty() {
                "*".to_string()
            } else {
                fmt_symbols(&query.select)
            };
            line(
                &mut out,
                depth,
                &format!(
                    "StateScan{partial} patterns=[{}] filters=[{}] time={} select=[{sel}]",
                    fmt_patterns(&query.patterns),
                    fmt_exprs(&query.filters),
                    fmt_time(query.time)
                ),
            );
        }
        PhysicalPlan::History { entity, attr } => {
            let mut depth = 0;
            if shards > 1 {
                line(
                    &mut out,
                    depth,
                    &format!("HistoryMerge shards={shards} order=(start, shard, seq)"),
                );
                depth += 1;
            }
            line(
                &mut out,
                depth,
                &format!("HistoryScan entity=\"{entity}\" attr={attr}"),
            );
        }
        PhysicalPlan::WindowAgg(w) => {
            let mut depth = 0;
            if let Some(n) = w.limit {
                line(&mut out, depth, &format!("Limit n={n}"));
                depth += 1;
            }
            line(
                &mut out,
                depth,
                &format!(
                    "WindowAggregate window={} keys=[{}] aggs=[{}] emit=[{}]",
                    w.window,
                    fmt_symbols(&w.keys),
                    fmt_aggs(&w.aggs),
                    fmt_symbols(&w.columns)
                ),
            );
            depth += 1;
            if shards > 1 {
                line(
                    &mut out,
                    depth,
                    &format!("SortMerge shards={shards} order=(ts, shard, seq)"),
                );
                depth += 1;
            }
            line(
                &mut out,
                depth,
                &format!(
                    "FactScan attr={} range={} filters=[{}]",
                    w.attr,
                    fmt_range(&w.range),
                    fmt_exprs(&w.filters)
                ),
            );
        }
    }
    out
}

/// Render the `EXPLAIN` payload: the logical tree (pre-rewrite), the
/// physical tree (post-rewrite, with the shard boundary), and the
/// rewrite rules that fired.
pub fn render_explain(plan: &CachedPlan, shards: usize) -> (String, String) {
    (
        render_logical(&plan.logical),
        render_physical(&plan.physical, shards),
    )
}

/// One-line summary of a physical plan's kind (for logs and stats).
pub fn physical_kind(plan: &PhysicalPlan) -> &'static str {
    match plan {
        PhysicalPlan::Select { .. } => "select",
        PhysicalPlan::History { .. } => "history",
        PhysicalPlan::WindowAgg(_) => "window_agg",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_temporal::AttrSchema;

    fn store() -> TemporalStore {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v1 = s.named_entity("v1");
        let v2 = s.named_entity("v2");
        s.replace_at(v1, "room", "lobby", Timestamp::new(10))
            .unwrap();
        s.replace_at(v2, "room", "lab", Timestamp::new(20)).unwrap();
        s.replace_at(v1, "room", "lab", Timestamp::new(150))
            .unwrap();
        s
    }

    fn rows(plan: &CachedPlan, s: &TemporalStore) -> Vec<Bindings> {
        match plan.execute(s, QueryOptions::default()).unwrap() {
            PlanOutput::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn legacy_statements_compile_and_run() {
        let s = store();
        let plan = compile("select ?v where { ?v room \"lab\" }").unwrap();
        assert_eq!(plan.dialect, "legacy");
        assert_eq!(rows(&plan, &s).len(), 2);
        let plan = compile("history \"v1\" room").unwrap();
        match plan.execute(&s, QueryOptions::default()).unwrap() {
            PlanOutput::History(spans) => assert_eq!(spans.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn legacy_plan_matches_direct_execution() {
        let s = store();
        for src in [
            "select ?v where { ?v room ?r }",
            "select ?v ?r where { ?v room ?r } filter r != \"lobby\"",
            "select count ?v where { ?v room ?r } limit 1",
            "select ?v where { ?v room \"lab\" } asof 100",
            "select ?r where { \"v1\" room ?r } during 0 200",
            // Pushdown fires here; results must not change.
            "select ?v where { ?v room ?r } filter r == \"lab\"",
        ] {
            let direct = match parse_query(src).unwrap() {
                ParsedQuery::Select(q) => crate::exec::execute(&s, &q).unwrap(),
                _ => unreachable!(),
            };
            let plan = compile(src).unwrap();
            assert_eq!(rows(&plan, &s), direct, "plan != direct for `{src}`");
        }
    }

    #[test]
    fn sql_matches_legacy_equivalent() {
        let s = store();
        let sql = compile("SELECT entity, room FROM state WHERE room != \"lobby\"").unwrap();
        assert_eq!(sql.dialect, "sql");
        let legacy =
            compile("select ?entity ?room where { ?entity room ?room } filter room != \"lobby\"")
                .unwrap();
        assert_eq!(rows(&sql, &s), rows(&legacy, &s));
    }

    #[test]
    fn sql_entity_pin_becomes_pattern_constant() {
        let s = store();
        let plan = compile("SELECT room FROM state WHERE entity = \"v1\"").unwrap();
        let got = rows(&plan, &s);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0][0].1, Value::str("lab"));
        match &plan.physical {
            PhysicalPlan::Select { query } => {
                assert_eq!(query.patterns[0].e, Term::Const(Value::str("v1")));
                assert!(query.filters.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pushdown_rewrites_value_position() {
        let plan = compile("SELECT entity FROM state WHERE room = \"lab\"").unwrap();
        assert!(
            plan.rules.contains(&"predicate_pushdown"),
            "{:?}",
            plan.rules
        );
        match &plan.physical {
            PhysicalPlan::Select { query } => {
                assert_eq!(query.patterns[0].v, Term::Const(Value::str("lab")));
                assert!(query.filters.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pushdown_skips_projected_and_numeric_columns() {
        // Projected column: must stay a filter.
        let plan = compile("SELECT entity, room FROM state WHERE room = \"lab\"").unwrap();
        assert!(!plan.rules.contains(&"predicate_pushdown"));
        // Numeric literal: the numeric tower equates 3 and 3.0; a
        // pattern constant would not, so it stays a filter.
        let plan = compile("SELECT entity FROM state WHERE heat = 3").unwrap();
        assert!(!plan.rules.contains(&"predicate_pushdown"));
    }

    #[test]
    fn golden_explain_pushdown() {
        let plan = compile("SELECT entity FROM state WHERE room = \"lab\"").unwrap();
        let (logical, physical) = render_explain(&plan, 4);
        assert_eq!(
            logical,
            "Project cols=[entity]\n\
             \x20 Filter preds=[(room == \"lab\")]\n\
             \x20   StateScan patterns=[?entity room ?room] time=current select=[*]\n"
        );
        assert_eq!(
            physical,
            "Merge shards=4 sort=rows dedup=true\n\
             \x20 StateScan partial patterns=[?entity room \"lab\"] filters=[] time=current select=[entity]\n"
        );
    }

    #[test]
    fn golden_explain_window_normalization() {
        let plan = compile(
            "SELECT window_start, count(*) AS n FROM state WHERE room != \"hall\" \
             GROUP BY sliding(10s, 10s) DURING 0 TO 1m",
        )
        .unwrap();
        assert_eq!(plan.rules, vec!["window_normalization"]);
        let (_, physical) = render_explain(&plan, 2);
        assert_eq!(
            physical,
            "WindowAggregate window=tumbling(10000) keys=[] aggs=[count(*) AS n] emit=[window_start, n]\n\
             \x20 SortMerge shards=2 order=(ts, shard, seq)\n\
             \x20   FactScan attr=room range=[0, 60000) filters=[(room != \"hall\")]\n"
        );
    }

    #[test]
    fn windowed_plan_counts_transitions() {
        let s = store();
        let plan =
            compile("SELECT window_start, count(room) AS n FROM state GROUP BY tumbling(100)")
                .unwrap();
        let got = rows(&plan, &s);
        // Transitions at 10, 20 (window 0) and 150 (window 100).
        assert_eq!(got.len(), 2);
        assert_eq!(
            got[0],
            vec![
                (
                    Symbol::intern("window_start"),
                    Value::Time(Timestamp::new(0))
                ),
                (Symbol::intern("n"), Value::Int(2)),
            ]
        );
        assert_eq!(got[1][1].1, Value::Int(1));
    }

    #[test]
    fn windowed_group_by_entity() {
        let s = store();
        let plan =
            compile("SELECT entity, count(room) AS n FROM state GROUP BY tumbling(1000), entity")
                .unwrap();
        let got = rows(&plan, &s);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0][0].1, Value::str("v1"));
        assert_eq!(got[0][1].1, Value::Int(2));
    }

    #[test]
    fn sharded_fact_merge_is_deterministic() {
        let s = store();
        let plan =
            compile("SELECT window_start, count(room) AS n FROM state GROUP BY tumbling(100)")
                .unwrap();
        let PhysicalPlan::WindowAgg(w) = &plan.physical else {
            panic!("expected window plan");
        };
        let local = w.execute_local(&s).unwrap();
        // Simulate two shards: split facts, merge, aggregate.
        let facts = w.collect_facts(&s).unwrap();
        let (a, b): (Vec<_>, Vec<_>) = facts.into_iter().enumerate().partition(|(i, _)| i % 2 == 0);
        let strip = |v: Vec<(usize, Event)>| v.into_iter().map(|(_, e)| e).collect::<Vec<_>>();
        let merged = WindowPhys::merge_fact_batches(vec![strip(a), strip(b)]);
        assert_eq!(w.aggregate(merged).unwrap(), local);
    }

    #[test]
    fn sql_planning_errors() {
        for bad in [
            "SELECT x FROM nowhere",                                  // unknown source
            "SELECT sum(x) FROM state",                               // agg without window
            "SELECT x FROM state GROUP BY x",                         // group-by without window
            "SELECT entity FROM state",                               // no attribute columns
            "SELECT window_start FROM state",                         // window col without window
            "SELECT x FROM state WHERE entity != \"a\"",              // non-eq entity predicate
            "SELECT x, count(*) FROM state GROUP BY tumbling(1s)",    // x not grouped
            "SELECT count(*) FROM state GROUP BY tumbling(1s)",       // no attr col
            "SELECT sum(x) FROM state GROUP BY tumbling(1s) AS OF 5", // window + AS OF
            "SELECT sum(x), sum(x) FROM state GROUP BY tumbling(1s)", // dup outputs
        ] {
            assert!(compile(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn explain_strips() {
        assert!(strip_explain("explain select ?v where { ?v a ?b }").0);
        assert_eq!(
            strip_explain("EXPLAIN SELECT x FROM state"),
            (true, "SELECT x FROM state")
        );
        assert!(!strip_explain("select ?v where { ?v a ?b }").0);
        assert!(!strip_explain("explainx").0);
    }

    #[test]
    fn watchable_split() {
        assert!(compile("select ?v where { ?v room ?r }")
            .unwrap()
            .is_watchable());
        assert!(!compile("history \"v1\" room").unwrap().is_watchable());
    }
}
