//! The shared plan cache.
//!
//! Compilation (parse → build → rewrite → lower) is pure, so compiled
//! plans are keyed by their trimmed statement text and shared across
//! every consumer: repeated queries skip the planner entirely, and a
//! thousand watches of the same statement hold one [`CachedPlan`]
//! between them. Errors are *not* cached — a failing statement re-runs
//! the compiler (they're rare, and caching them would pin arbitrary
//! garbage keys).

use crate::plan::{compile, CachedPlan};
use fenestra_base::error::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on distinct cached statements.
pub const DEFAULT_CACHE_CAP: usize = 1024;

/// Counters a cache exposes to stats and Prometheus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled.
    pub misses: u64,
    /// Statements currently cached.
    pub entries: u64,
}

/// A statement-keyed, bounded plan cache. Cheap to clone behind an
/// `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct PlanCache {
    plans: Mutex<HashMap<String, Arc<CachedPlan>>>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_CACHE_CAP)
    }
}

impl PlanCache {
    /// A cache bounded to `cap` distinct statements.
    pub fn new(cap: usize) -> PlanCache {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `src` (trimmed), compiling on miss. Returns the shared
    /// plan and whether this was a cache hit.
    pub fn get_or_compile(&self, src: &str) -> Result<(Arc<CachedPlan>, bool)> {
        let key = src.trim();
        if let Some(plan) = self.plans.lock().unwrap().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((plan, true));
        }
        // Compile outside the lock: misses are the slow path and must
        // not serialize behind each other (or block hits).
        let plan = Arc::new(compile(key)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut plans = self.plans.lock().unwrap();
        if let Some(existing) = plans.get(key) {
            // A racing thread beat us; share its plan.
            return Ok((existing.clone(), false));
        }
        if plans.len() >= self.cap {
            // Bounded: evict an arbitrary entry. The cache is a
            // dedup, not an LRU — any eviction policy is correct, and
            // arbitrary keeps the hot path free of bookkeeping.
            if let Some(k) = plans.keys().next().cloned() {
                plans.remove(&k);
            }
        }
        plans.insert(key.to_string(), plan.clone());
        Ok((plan, false))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.plans.lock().unwrap().len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: &str = "select ?v where { ?v room ?r }";

    #[test]
    fn hit_shares_the_same_plan() {
        let cache = PlanCache::default();
        let (a, hit_a) = cache.get_or_compile(Q).unwrap();
        let (b, hit_b) = cache.get_or_compile(&format!("  {Q}  ")).unwrap();
        assert!(!hit_a);
        assert!(hit_b, "trimmed text must key the same entry");
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = PlanCache::default();
        assert!(cache.get_or_compile("select nothing sensible").is_err());
        assert!(cache.get_or_compile("select nothing sensible").is_err());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.misses, 0, "failed compiles count as neither hit nor miss");
    }

    #[test]
    fn cap_bounds_entries() {
        let cache = PlanCache::new(4);
        for i in 0..10 {
            let src = format!("select ?v where {{ ?v attr{i} ?x }}");
            cache.get_or_compile(&src).unwrap();
        }
        assert!(cache.stats().entries <= 4);
        // The cache still works after evictions.
        let (_, hit) = cache.get_or_compile(Q).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_compile(Q).unwrap();
        assert!(hit);
    }
}
