//! Query AST.

use fenestra_base::expr::Expr;
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use fenestra_temporal::AttrId;

/// A term in a triple pattern: a variable or a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable (`?x`).
    Var(Symbol),
    /// A constant value. In entity position, a `Value::Str` constant
    /// names an entity through the store's directory; a `Value::Id`
    /// references it directly.
    Const(Value),
}

impl Term {
    /// Variable helper.
    pub fn var(name: impl Into<Symbol>) -> Term {
        Term::Var(name.into())
    }

    /// Constant helper.
    pub fn val(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<Symbol> {
        match self {
            Term::Var(s) => Some(*s),
            Term::Const(_) => None,
        }
    }
}

/// One conjunct: `entity attr value` with variables in entity/value
/// position (attributes are fixed — they select the index).
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    /// Entity term.
    pub e: Term,
    /// Attribute (fixed).
    pub a: AttrId,
    /// Value term.
    pub v: Term,
}

impl TriplePattern {
    /// Construct a pattern.
    pub fn new(e: Term, a: impl Into<Symbol>, v: Term) -> TriplePattern {
        TriplePattern { e, a: a.into(), v }
    }
}

/// The temporal qualifier of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeSpec {
    /// The currently valid state (default).
    #[default]
    Current,
    /// The state valid at one past instant.
    AsOf(Timestamp),
    /// Bindings whose facts' validity overlaps `[from, to)`.
    During(Timestamp, Timestamp),
}

/// A conjunctive query over the state repository.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Triple patterns (conjunctive).
    pub patterns: Vec<TriplePattern>,
    /// Filters over the bindings.
    pub filters: Vec<Expr>,
    /// Projected variables (empty = all, in first-mention order).
    pub select: Vec<Symbol>,
    /// Temporal qualifier.
    pub time: TimeSpec,
    /// Return only the number of (distinct, projected) rows instead of
    /// the rows themselves.
    pub count_only: bool,
    /// Keep at most this many rows (applied after sorting/dedup).
    pub limit: Option<usize>,
}

impl Query {
    /// Start an empty query.
    pub fn new() -> Query {
        Query::default()
    }

    /// Add a pattern (chainable).
    pub fn pattern(mut self, e: Term, a: impl Into<Symbol>, v: Term) -> Query {
        self.patterns.push(TriplePattern::new(e, a, v));
        self
    }

    /// Add a filter (chainable).
    pub fn filter(mut self, f: Expr) -> Query {
        self.filters.push(f);
        self
    }

    /// Project these variables (chainable).
    pub fn select_vars(mut self, vars: impl IntoIterator<Item = impl Into<Symbol>>) -> Query {
        self.select = vars.into_iter().map(Into::into).collect();
        self
    }

    /// Set the temporal qualifier (chainable).
    pub fn at(mut self, time: TimeSpec) -> Query {
        self.time = time;
        self
    }

    /// Return a count instead of rows (chainable).
    pub fn count(mut self) -> Query {
        self.count_only = true;
        self
    }

    /// Keep at most `n` rows (chainable).
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// All variables, in first-mention order.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for p in &self.patterns {
            for t in [&p.e, &p.v] {
                if let Some(v) = t.as_var() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_in_order() {
        let q = Query::new()
            .pattern(Term::var("u"), "status", Term::val("active"))
            .pattern(Term::var("u"), "room", Term::var("r"));
        let vars: Vec<&str> = q.variables().iter().map(|s| s.as_str()).collect();
        assert_eq!(vars, vec!["u", "r"]);
    }

    #[test]
    fn term_helpers() {
        assert_eq!(Term::var("x").as_var().unwrap().as_str(), "x");
        assert_eq!(Term::val(3i64).as_var(), None);
    }
}
