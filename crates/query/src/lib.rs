#![warn(missing_docs)]
//! # fenestra-query
//!
//! On-demand queries over the state repository — the paper's
//! "queryable state" benefit (§3.2): "the proposed model enables the
//! users to query the state on-demand, potentially referring to
//! historical data", which "would not be possible using only stream
//! processing technologies".
//!
//! Queries are conjunctive triple patterns with variables, filters,
//! projection, and a **temporal qualifier**:
//!
//! * `current` — the open facts (default);
//! * `asof t` — the state as it was valid at instant `t`;
//! * `during a b` — bindings whose facts' validity overlaps `[a, b)`;
//! * `history e attr` — the full timeline of one (entity, attribute).
//!
//! ```text
//! select ?u ?room
//! where { ?u status "active" . ?u room ?room }
//! filter ?room != "lobby"
//! asof 150
//! ```
//!
//! Because the reasoner materializes derived facts *into* the store
//! (with `Derived` provenance), queries transparently see inferred
//! knowledge; pass [`exec::QueryOptions::exclude_derived`] to restrict
//! results to asserted facts.

pub mod ast;
pub mod cache;
pub mod exec;
pub mod parser;
pub mod plan;
pub mod sql;

pub use ast::{Query, Term, TimeSpec, TriplePattern};
pub use cache::{CacheStats, PlanCache};
pub use exec::{execute, Bindings, QueryOptions};
pub use parser::{parse_query, ParsedQuery};
pub use plan::{
    compile, parse_statement, physical_kind, render_explain, strip_explain, CachedPlan,
    LogicalPlan, PhysicalPlan, PlanOutput, Statement, WindowPhys,
};
pub use sql::{parse_select_stmt, SelectStmt, WindowKind};
