//! Query evaluation: greedy join ordering over the store's indexes.

use crate::ast::{Query, Term, TimeSpec, TriplePattern};
use fenestra_base::error::{Error, Result};
use fenestra_base::expr::{Scope, SliceScope};
use fenestra_base::symbol::Symbol;
use fenestra_base::value::{EntityId, Value};
use fenestra_temporal::TemporalStore;

/// One result row: `(variable, value)` pairs. Entity variables bind to
/// [`Value::Id`].
pub type Bindings = Vec<(Symbol, Value)>;

/// Evaluation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryOptions {
    /// Skip facts written by the reasoner (`Derived` provenance),
    /// answering from asserted state only.
    pub exclude_derived: bool,
}

/// Execute with default options.
pub fn execute(store: &TemporalStore, q: &Query) -> Result<Vec<Bindings>> {
    execute_with(store, q, QueryOptions::default())
}

/// Execute a query, returning deterministic (sorted) rows.
pub fn execute_with(store: &TemporalStore, q: &Query, opts: QueryOptions) -> Result<Vec<Bindings>> {
    if q.patterns.is_empty() {
        return Err(Error::Invalid("query has no patterns".into()));
    }
    // Greedy join order: repeatedly pick the most-bound pattern.
    let mut remaining: Vec<&TriplePattern> = q.patterns.iter().collect();
    let mut bound_vars: Vec<Symbol> = Vec::new();
    let mut order: Vec<&TriplePattern> = Vec::new();
    while !remaining.is_empty() {
        let (best_i, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, p)| (i, selectivity(p, &bound_vars)))
            .max_by_key(|(_, s)| *s)
            .expect("non-empty");
        let p = remaining.remove(best_i);
        for t in [&p.e, &p.v] {
            if let Some(v) = t.as_var() {
                if !bound_vars.contains(&v) {
                    bound_vars.push(v);
                }
            }
        }
        order.push(p);
    }

    let mut rows: Vec<Bindings> = vec![Vec::new()];
    for p in order {
        let mut next: Vec<Bindings> = Vec::new();
        for row in &rows {
            extend(store, q.time, opts, p, row, &mut next)?;
        }
        rows = next;
        if rows.is_empty() {
            break;
        }
    }

    // Filters.
    let mut out: Vec<Bindings> = Vec::new();
    'rows: for row in rows {
        let scope = SliceScope(&row);
        for f in &q.filters {
            match f.eval_bool(&scope) {
                Ok(true) => {}
                Ok(false) => continue 'rows,
                Err(e) => return Err(e),
            }
        }
        out.push(row);
    }

    // Projection.
    let projected: Vec<Symbol> = if q.select.is_empty() {
        q.variables()
    } else {
        q.select.clone()
    };
    let mut final_rows: Vec<Bindings> = out
        .into_iter()
        .map(|row| {
            projected
                .iter()
                .map(|v| {
                    let scope = SliceScope(&row);
                    (*v, scope.lookup(*v).unwrap_or(Value::Null))
                })
                .collect()
        })
        .collect();
    final_rows.sort();
    final_rows.dedup();
    if let Some(n) = q.limit {
        final_rows.truncate(n);
    }
    if q.count_only {
        return Ok(vec![vec![(
            Symbol::intern("count"),
            Value::Int(final_rows.len() as i64),
        )]]);
    }
    Ok(final_rows)
}

fn selectivity(p: &TriplePattern, bound: &[Symbol]) -> u32 {
    let is_bound = |t: &Term| match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
    };
    let mut s = 0;
    if is_bound(&p.e) {
        s += 2; // entity-bound lookups are the cheapest
    }
    if is_bound(&p.v) {
        s += 1;
    }
    s
}

fn term_value(t: &Term, row: &Bindings) -> Option<Value> {
    match t {
        Term::Const(v) => Some(*v),
        Term::Var(name) => row.iter().find(|(n, _)| n == name).map(|(_, v)| *v),
    }
}

/// Resolve an entity-position value to an entity id.
fn as_entity(store: &TemporalStore, v: Value) -> Option<EntityId> {
    match v {
        Value::Id(e) => Some(e),
        Value::Str(name) => store.lookup_entity(name),
        _ => None,
    }
}

fn extend(
    store: &TemporalStore,
    time: TimeSpec,
    opts: QueryOptions,
    p: &TriplePattern,
    row: &Bindings,
    out: &mut Vec<Bindings>,
) -> Result<()> {
    let e_known = term_value(&p.e, row).map(|v| as_entity(store, v));
    if let Some(None) = e_known {
        return Ok(()); // named entity doesn't exist: no matches
    }
    let e_known = e_known.flatten();
    let v_known = term_value(&p.v, row);

    let mut push = |e: EntityId, v: Value| {
        let mut new_row = row.clone();
        if let Term::Var(name) = &p.e {
            if !new_row.iter().any(|(n, _)| n == name) {
                new_row.push((*name, Value::Id(e)));
            }
        }
        if let Term::Var(name) = &p.v {
            if !new_row.iter().any(|(n, _)| n == name) {
                new_row.push((*name, v));
            } else if new_row.iter().any(|(n, val)| n == name && *val != v) {
                // Same variable in both positions with conflicting
                // values: not a match.
                return;
            }
        }
        out.push(new_row);
    };

    let matches = |fe: EntityId, fv: Value| -> bool {
        if let Some(e) = e_known {
            if fe != e {
                return false;
            }
        }
        if let Some(v) = v_known {
            if fv != v {
                return false;
            }
        }
        true
    };

    match time {
        TimeSpec::Current => {
            let cur = store.current();
            if let Some(e) = e_known {
                for f in cur.entity_facts(e) {
                    if f.fact.attr == p.a
                        && !(opts.exclude_derived && f.provenance.is_derived())
                        && matches(f.fact.entity, f.fact.value)
                    {
                        push(f.fact.entity, f.fact.value);
                    }
                }
            } else {
                for f in cur.attr_facts(p.a) {
                    if !(opts.exclude_derived && f.provenance.is_derived())
                        && matches(f.fact.entity, f.fact.value)
                    {
                        push(f.fact.entity, f.fact.value);
                    }
                }
            }
        }
        TimeSpec::AsOf(t) => {
            for f in store.as_of(t).attr_facts(p.a) {
                if !(opts.exclude_derived && f.provenance.is_derived())
                    && matches(f.fact.entity, f.fact.value)
                {
                    push(f.fact.entity, f.fact.value);
                }
            }
        }
        TimeSpec::During(from, to) => {
            for f in store.during(from, to) {
                if f.fact.attr == p.a
                    && !(opts.exclude_derived && f.provenance.is_derived())
                    && matches(f.fact.entity, f.fact.value)
                {
                    push(f.fact.entity, f.fact.value);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::expr::Expr;
    use fenestra_base::time::Timestamp;
    use fenestra_temporal::AttrSchema;

    fn ts(v: u64) -> Timestamp {
        Timestamp::new(v)
    }

    fn building_store() -> TemporalStore {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v1 = s.named_entity("v1");
        let v2 = s.named_entity("v2");
        let v3 = s.named_entity("v3");
        s.replace_at(v1, "room", "lobby", ts(10)).unwrap();
        s.replace_at(v2, "room", "lobby", ts(12)).unwrap();
        s.replace_at(v3, "room", "lab", ts(14)).unwrap();
        s.replace_at(v1, "room", "lab", ts(20)).unwrap();
        s.assert_at(v1, "badge", "gold", ts(10)).unwrap();
        s.assert_at(v2, "badge", "silver", ts(12)).unwrap();
        s.assert_at(v3, "badge", "gold", ts(14)).unwrap();
        s
    }

    #[test]
    fn who_is_where_now() {
        let s = building_store();
        let q = Query::new().pattern(Term::var("v"), "room", Term::val("lab"));
        let rows = execute(&s, &q).unwrap();
        assert_eq!(rows.len(), 2, "v1 and v3 in the lab now");
    }

    #[test]
    fn join_two_patterns() {
        let s = building_store();
        // Gold-badged visitors in the lab.
        let q = Query::new()
            .pattern(Term::var("v"), "room", Term::val("lab"))
            .pattern(Term::var("v"), "badge", Term::val("gold"));
        let rows = execute(&s, &q).unwrap();
        assert_eq!(rows.len(), 2);
        // Gold-badged visitors in the lobby: only v2 is in lobby but
        // has silver.
        let q = Query::new()
            .pattern(Term::var("v"), "room", Term::val("lobby"))
            .pattern(Term::var("v"), "badge", Term::val("gold"));
        assert!(execute(&s, &q).unwrap().is_empty());
    }

    #[test]
    fn as_of_sees_the_past() {
        let s = building_store();
        let q = Query::new()
            .pattern(Term::var("v"), "room", Term::val("lobby"))
            .at(TimeSpec::AsOf(ts(15)));
        let rows = execute(&s, &q).unwrap();
        assert_eq!(rows.len(), 2, "v1 and v2 were in the lobby at t15");
    }

    #[test]
    fn during_finds_overlapping_validity() {
        let s = building_store();
        let q = Query::new()
            .pattern(Term::val("v1"), "room", Term::var("r"))
            .at(TimeSpec::During(ts(0), ts(100)));
        let rows = execute(&s, &q).unwrap();
        let values: Vec<Value> = rows.iter().map(|r| r[0].1).collect();
        assert!(values.contains(&Value::str("lobby")));
        assert!(values.contains(&Value::str("lab")));
    }

    #[test]
    fn named_entity_constants() {
        let s = building_store();
        let q = Query::new().pattern(Term::val("v1"), "room", Term::var("r"));
        let rows = execute(&s, &q).unwrap();
        assert_eq!(rows, vec![vec![(Symbol::intern("r"), Value::str("lab"))]]);
        // Unknown entity: empty, not an error.
        let q = Query::new().pattern(Term::val("ghost"), "room", Term::var("r"));
        assert!(execute(&s, &q).unwrap().is_empty());
    }

    #[test]
    fn filters_and_projection() {
        let s = building_store();
        let q = Query::new()
            .pattern(Term::var("v"), "badge", Term::var("b"))
            .filter(Expr::name("b").ne(Expr::lit("silver")))
            .select_vars(["b"]);
        let rows = execute(&s, &q).unwrap();
        assert_eq!(rows.len(), 1, "projection dedups the two gold rows");
        assert_eq!(rows[0], vec![(Symbol::intern("b"), Value::str("gold"))]);
    }

    #[test]
    fn value_variable_join_across_entities() {
        let s = building_store();
        // Pairs of distinct visitors in the same room.
        let q = Query::new()
            .pattern(Term::var("x"), "room", Term::var("r"))
            .pattern(Term::var("y"), "room", Term::var("r"))
            .filter(Expr::name("x").ne(Expr::name("y")));
        let rows = execute(&s, &q).unwrap();
        assert_eq!(rows.len(), 2, "(v1,v3) and (v3,v1) share the lab");
    }

    #[test]
    fn count_and_limit() {
        let s = building_store();
        let q = Query::new()
            .pattern(Term::var("v"), "badge", Term::var("b"))
            .count();
        let rows = execute(&s, &q).unwrap();
        assert_eq!(rows, vec![vec![(Symbol::intern("count"), Value::Int(3))]]);
        let q = Query::new()
            .pattern(Term::var("v"), "badge", Term::var("b"))
            .limit(2);
        assert_eq!(execute(&s, &q).unwrap().len(), 2);
        // Count respects limit (count of the limited rows).
        let q = Query::new()
            .pattern(Term::var("v"), "badge", Term::var("b"))
            .limit(2)
            .count();
        assert_eq!(execute(&s, &q).unwrap()[0][0].1, Value::Int(2));
    }

    #[test]
    fn empty_query_rejected() {
        let s = building_store();
        assert!(execute(&s, &Query::new()).is_err());
    }

    #[test]
    fn exclude_derived_option() {
        use fenestra_temporal::Provenance;
        let mut s = building_store();
        let v1 = s.lookup_entity("v1").unwrap();
        s.assert_with(
            v1,
            Symbol::intern("type"),
            Value::str("visitor"),
            ts(30),
            Provenance::Derived(Symbol::intern("ontology")),
        )
        .unwrap();
        let q = Query::new().pattern(Term::var("x"), "type", Term::val("visitor"));
        assert_eq!(execute(&s, &q).unwrap().len(), 1);
        let rows = execute_with(
            &s,
            &q,
            QueryOptions {
                exclude_derived: true,
            },
        )
        .unwrap();
        assert!(rows.is_empty());
    }
}
