//! Textual query language.
//!
//! ```text
//! query   := "select" ["count"] var+ "where" "{" pattern ("." pattern)* "}"
//!            ("filter" expr)* [timespec] ["limit" INT]
//!          | "history" term IDENT
//! pattern := term IDENT term
//! term    := "?" IDENT | literal
//! timespec:= "asof" instant | "during" instant instant | "current"
//! instant := INT | DURATION     # durations read as ms since epoch
//! ```
//!
//! Variables in filters are referenced *without* the `?` sigil:
//! `filter room != "lobby"`.

use crate::ast::{Query, Term, TimeSpec};
use fenestra_base::error::{Error, Result};
use fenestra_base::parse::{lex, Cursor, Tok};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;

/// A parsed query text: a select query or a history lookup.
#[derive(Debug, Clone)]
pub enum ParsedQuery {
    /// Conjunctive select query.
    Select(Query),
    /// Timeline of one `(entity, attribute)`.
    History {
        /// Entity name.
        entity: Symbol,
        /// Attribute.
        attr: Symbol,
    },
}

/// Parse a query text.
pub fn parse_query(src: &str) -> Result<ParsedQuery> {
    let toks = lex(src)?;
    let mut c = Cursor::new(&toks);
    if c.eat_kw("history") {
        let entity = match c.next() {
            Some(Tok::Str(s)) => *s,
            Some(Tok::Ident(s)) => Symbol::intern(s),
            other => return Err(c.error(format!("expected entity name, found {other:?}"))),
        };
        let attr = Symbol::intern(&c.expect_ident()?);
        if !c.at_end() {
            return Err(c.error("trailing input after history query"));
        }
        return Ok(ParsedQuery::History { entity, attr });
    }
    c.expect_kw("select")?;
    let mut q = Query::new();
    if c.eat_kw("count") {
        q.count_only = true;
    }
    let mut select = Vec::new();
    while c.eat_punct("?") {
        select.push(Symbol::intern(&c.expect_ident()?));
    }
    if select.is_empty() {
        return Err(c.error("select needs at least one variable"));
    }
    q.select = select;
    c.expect_kw("where")?;
    c.expect_punct("{")?;
    loop {
        let e = parse_term(&mut c)?;
        let a = Symbol::intern(&c.expect_ident()?);
        let v = parse_term(&mut c)?;
        q.patterns.push(crate::ast::TriplePattern { e, a, v });
        if c.eat_punct(".") {
            if c.eat_punct("}") {
                break; // trailing dot
            }
            continue;
        }
        c.expect_punct("}")?;
        break;
    }
    while c.eat_kw("filter") {
        q.filters.push(c.expression()?);
    }
    if c.eat_kw("asof") {
        q.time = TimeSpec::AsOf(parse_instant(&mut c)?);
    } else if c.eat_kw("during") {
        let from = parse_instant(&mut c)?;
        let to = parse_instant(&mut c)?;
        if to <= from {
            return Err(Error::Invalid("during range is empty".into()));
        }
        q.time = TimeSpec::During(from, to);
    } else if c.eat_kw("current") {
        q.time = TimeSpec::Current;
    }
    if c.eat_kw("limit") {
        match c.next() {
            Some(Tok::Int(n)) if *n > 0 => q.limit = Some(*n as usize),
            other => return Err(c.error(format!("expected positive limit, found {other:?}"))),
        }
    }
    if !c.at_end() {
        return Err(c.error("trailing input after query"));
    }
    // Every selected variable must occur in a pattern.
    let vars = q.variables();
    for s in &q.select {
        if !vars.contains(s) {
            return Err(Error::Invalid(format!(
                "selected variable ?{s} is not bound by any pattern"
            )));
        }
    }
    Ok(ParsedQuery::Select(q))
}

fn parse_term(c: &mut Cursor<'_>) -> Result<Term> {
    if c.eat_punct("?") {
        return Ok(Term::var(c.expect_ident()?.as_str()));
    }
    match c.next() {
        Some(Tok::Str(s)) => Ok(Term::Const(Value::Str(*s))),
        Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(*i))),
        Some(Tok::Float(f)) => Ok(Term::Const(Value::Float(*f))),
        Some(Tok::Ident(s)) if s == "true" => Ok(Term::Const(Value::Bool(true))),
        Some(Tok::Ident(s)) if s == "false" => Ok(Term::Const(Value::Bool(false))),
        Some(Tok::Ident(s)) if s == "null" => Ok(Term::Const(Value::Null)),
        Some(Tok::Duration(ms)) => Ok(Term::Const(Value::Int(*ms as i64))),
        other => Err(c.error(format!("expected term, found {other:?}"))),
    }
}

fn parse_instant(c: &mut Cursor<'_>) -> Result<Timestamp> {
    match c.next() {
        Some(Tok::Int(i)) if *i >= 0 => Ok(Timestamp::new(*i as u64)),
        Some(Tok::Duration(ms)) => Ok(Timestamp::new(*ms)),
        other => Err(c.error(format!("expected instant, found {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use fenestra_base::time::Timestamp;
    use fenestra_temporal::{AttrSchema, TemporalStore};

    fn store() -> TemporalStore {
        let mut s = TemporalStore::new();
        s.declare_attr("room", AttrSchema::one());
        let v1 = s.named_entity("v1");
        let v2 = s.named_entity("v2");
        s.replace_at(v1, "room", "lobby", Timestamp::new(10))
            .unwrap();
        s.replace_at(v2, "room", "lab", Timestamp::new(10)).unwrap();
        s.replace_at(v1, "room", "lab", Timestamp::new(20)).unwrap();
        s
    }

    fn run(src: &str, s: &TemporalStore) -> Vec<crate::exec::Bindings> {
        match parse_query(src).unwrap() {
            ParsedQuery::Select(q) => execute(s, &q).unwrap(),
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parse_and_run_select() {
        let s = store();
        let rows = run("select ?v where { ?v room \"lab\" }", &s);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn parse_asof() {
        let s = store();
        let rows = run("select ?v where { ?v room \"lobby\" } asof 15", &s);
        assert_eq!(rows.len(), 1);
        let rows = run("select ?v where { ?v room \"lobby\" } asof 15s", &s);
        assert!(rows.is_empty(), "asof 15000: nobody in lobby");
    }

    #[test]
    fn parse_during_and_filter() {
        let s = store();
        let rows = run(
            "select ?r where { \"v1\" room ?r } filter r != \"lobby\" during 0 100",
            &s,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0].1, fenestra_base::value::Value::str("lab"));
    }

    #[test]
    fn parse_multi_pattern_with_dots() {
        let s = store();
        let rows = run("select ?x ?y where { ?x room ?r . ?y room ?r . }", &s);
        // Now both v1 and v2 are in the lab: pairs (v1,v1),(v1,v2),(v2,v1),(v2,v2).
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn parse_history() {
        match parse_query("history \"v1\" room").unwrap() {
            ParsedQuery::History { entity, attr } => {
                assert_eq!(entity.as_str(), "v1");
                assert_eq!(attr.as_str(), "room");
            }
            other => panic!("{other:?}"),
        }
        // Bare identifier entity also accepted.
        assert!(matches!(
            parse_query("history v1 room").unwrap(),
            ParsedQuery::History { .. }
        ));
    }

    #[test]
    fn parse_count_and_limit() {
        let s = store();
        let rows = run("select count ?v where { ?v room ?r }", &s);
        assert_eq!(rows[0][0].1, fenestra_base::value::Value::Int(2));
        let rows = run("select ?v where { ?v room ?r } limit 1", &s);
        assert_eq!(rows.len(), 1);
        assert!(parse_query("select ?v where { ?v room ?r } limit 0").is_err());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "select where { ?v room \"x\" }",               // no vars
            "select ?v where { }",                          // no patterns
            "select ?v where { ?v room }",                  // incomplete pattern
            "select ?v where { ?x room \"l\" }",            // unbound select var
            "select ?v where { ?v room \"l\" } during 5 5", // empty range
            "select ?v where { ?v room \"l\" } garbage",    // trailing
        ] {
            assert!(parse_query(bad).is_err(), "should fail: {bad}");
        }
    }
}
