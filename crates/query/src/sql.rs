//! The streaming SQL dialect.
//!
//! ```text
//! stmt      := SELECT item ("," item)* FROM ident
//!              [WHERE expr]
//!              [GROUP BY group_item ("," group_item)*]
//!              [AS OF instant | DURING instant TO instant]
//!              [LIMIT INT]
//! item      := COUNT "(" "*" ")" [AS ident]
//!            | agg "(" ident ")" [AS ident]        # sum/avg/min/max
//!            | ident
//! group_item:= TUMBLING "(" dur ")"
//!            | SLIDING "(" dur "," dur ")"
//!            | SESSION "(" dur ")"
//!            | ident
//! instant   := INT | DURATION                      # millis
//! dur       := INT | DURATION                      # millis, > 0
//! ```
//!
//! Keywords and function names are case-insensitive; column names are
//! case-sensitive attribute names from the state store, plus the
//! pseudo-columns `entity` (the entity an attribute belongs to) and —
//! under a window — `window_start`/`window_end`. `WHERE` uses the
//! shared expression grammar (`=` and `==` both mean equality).
//!
//! Statements display in a canonical form that re-parses to the same
//! AST (property-tested), which is also the plan-cache key shape.

use crate::ast::TimeSpec;
use fenestra_base::error::{Error, Result};
use fenestra_base::expr::Expr;
use fenestra_base::parse::{lex, Cursor, Tok};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use std::fmt;

/// Aggregate functions the dialect accepts. All are order-insensitive,
/// so distributed fact collection needs no per-shard ordering beyond
/// the deterministic merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// `count(*)` — rows per group.
    Count,
    /// `sum(col)`.
    Sum,
    /// `avg(col)`.
    Avg,
    /// `min(col)`.
    Min,
    /// `max(col)`.
    Max,
}

impl AggName {
    /// Canonical (lowercase) name.
    pub fn name(self) -> &'static str {
        match self {
            AggName::Count => "count",
            AggName::Sum => "sum",
            AggName::Avg => "avg",
            AggName::Min => "min",
            AggName::Max => "max",
        }
    }

    /// Case-insensitive lookup.
    pub fn by_name(name: &str) -> Option<AggName> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggName::Count,
            "sum" => AggName::Sum,
            "avg" => AggName::Avg,
            "min" => AggName::Min,
            "max" => AggName::Max,
            _ => return None,
        })
    }
}

/// One projected item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// A plain column (attribute, `entity`, or window pseudo-column).
    Column(Symbol),
    /// An aggregate: `func(column)` (`column` is `None` for
    /// `count(*)`), optionally `AS alias`.
    Agg {
        /// The function.
        func: AggName,
        /// Input column; `None` means `count(*)`.
        column: Option<Symbol>,
        /// Output name override.
        alias: Option<Symbol>,
    },
}

impl SelectItem {
    /// The name this item gets in output rows: the column name, the
    /// alias, or `func` / `func_col` for unaliased aggregates.
    pub fn output_name(&self) -> Symbol {
        match self {
            SelectItem::Column(c) => *c,
            SelectItem::Agg { alias: Some(a), .. } => *a,
            SelectItem::Agg {
                func,
                column: Some(c),
                ..
            } => Symbol::intern(&format!("{}_{c}", func.name())),
            SelectItem::Agg { func, .. } => Symbol::intern(func.name()),
        }
    }
}

/// A window function from the GROUP BY list. Durations are stored in
/// milliseconds (the canonical display unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// `tumbling(size)`.
    Tumbling {
        /// Window size, ms.
        size_ms: u64,
    },
    /// `sliding(size, hop)`.
    Sliding {
        /// Window size, ms.
        size_ms: u64,
        /// Hop between window starts, ms.
        hop_ms: u64,
    },
    /// `session(gap)`.
    Session {
        /// Inactivity gap that closes a session, ms.
        gap_ms: u64,
    },
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projected items, in order.
    pub items: Vec<SelectItem>,
    /// The FROM source (`state` is the only queryable source).
    pub source: Symbol,
    /// WHERE predicate, if any.
    pub where_clause: Option<Expr>,
    /// Non-window GROUP BY columns, in order.
    pub keys: Vec<Symbol>,
    /// The window function, if any appeared in GROUP BY.
    pub window: Option<WindowKind>,
    /// Temporal qualifier (`AS OF` / `DURING … TO …`).
    pub time: TimeSpec,
    /// LIMIT, if any.
    pub limit: Option<usize>,
}

fn eat_kw_ci(c: &mut Cursor<'_>, kw: &str) -> bool {
    matches!(c.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw)) && {
        c.next();
        true
    }
}

fn expect_kw_ci(c: &mut Cursor<'_>, kw: &str) -> Result<()> {
    if eat_kw_ci(c, kw) {
        Ok(())
    } else {
        Err(c.error(format!("expected `{}`, found {:?}", kw, c.peek())))
    }
}

fn parse_instant(c: &mut Cursor<'_>) -> Result<Timestamp> {
    match c.next() {
        Some(Tok::Int(i)) if *i >= 0 => Ok(Timestamp::new(*i as u64)),
        Some(Tok::Duration(ms)) => Ok(Timestamp::new(*ms)),
        other => Err(c.error(format!("expected instant, found {other:?}"))),
    }
}

fn parse_dur_ms(c: &mut Cursor<'_>) -> Result<u64> {
    let ms = match c.next() {
        Some(Tok::Int(i)) if *i >= 0 => *i as u64,
        Some(Tok::Duration(ms)) => *ms,
        other => return Err(c.error(format!("expected duration, found {other:?}"))),
    };
    if ms == 0 {
        return Err(Error::Invalid("window durations must be positive".into()));
    }
    Ok(ms)
}

fn parse_item(c: &mut Cursor<'_>) -> Result<SelectItem> {
    let name = c.expect_ident()?;
    if !c.eat_punct("(") {
        return Ok(SelectItem::Column(Symbol::intern(&name)));
    }
    let Some(func) = AggName::by_name(&name) else {
        return Err(c.error(format!(
            "unknown aggregate `{name}` (expected count, sum, avg, min, max)"
        )));
    };
    let column = if func == AggName::Count && c.eat_punct("*") {
        None
    } else {
        Some(Symbol::intern(&c.expect_ident()?))
    };
    c.expect_punct(")")?;
    let alias = if eat_kw_ci(c, "as") {
        Some(Symbol::intern(&c.expect_ident()?))
    } else {
        None
    };
    Ok(SelectItem::Agg {
        func,
        column,
        alias,
    })
}

const WINDOW_FNS: [&str; 3] = ["tumbling", "sliding", "session"];

/// Parse one SQL statement. The leading `SELECT` must already be known
/// to be SQL-dialect (see [`crate::plan::parse_statement`] for the
/// dialect split); this parser re-checks it anyway.
pub fn parse_select_stmt(src: &str) -> Result<SelectStmt> {
    let toks = lex(src)?;
    let mut c = Cursor::new(&toks);
    expect_kw_ci(&mut c, "select")?;
    let mut items = vec![parse_item(&mut c)?];
    while c.eat_punct(",") {
        items.push(parse_item(&mut c)?);
    }
    expect_kw_ci(&mut c, "from")?;
    let source = Symbol::intern(&c.expect_ident()?);
    let where_clause = if eat_kw_ci(&mut c, "where") {
        Some(c.expression()?)
    } else {
        None
    };
    let mut keys = Vec::new();
    let mut window = None;
    if eat_kw_ci(&mut c, "group") {
        expect_kw_ci(&mut c, "by")?;
        loop {
            let name = c.expect_ident()?;
            let lower = name.to_ascii_lowercase();
            if WINDOW_FNS.contains(&lower.as_str()) && matches!(c.peek(), Some(Tok::Punct("("))) {
                if window.is_some() {
                    return Err(c.error("GROUP BY allows at most one window function"));
                }
                c.expect_punct("(")?;
                window = Some(match lower.as_str() {
                    "tumbling" => WindowKind::Tumbling {
                        size_ms: parse_dur_ms(&mut c)?,
                    },
                    "sliding" => {
                        let size_ms = parse_dur_ms(&mut c)?;
                        c.expect_punct(",")?;
                        WindowKind::Sliding {
                            size_ms,
                            hop_ms: parse_dur_ms(&mut c)?,
                        }
                    }
                    _ => WindowKind::Session {
                        gap_ms: parse_dur_ms(&mut c)?,
                    },
                });
                c.expect_punct(")")?;
            } else {
                keys.push(Symbol::intern(&name));
            }
            if !c.eat_punct(",") {
                break;
            }
        }
    }
    let time = if eat_kw_ci(&mut c, "as") {
        expect_kw_ci(&mut c, "of")?;
        TimeSpec::AsOf(parse_instant(&mut c)?)
    } else if eat_kw_ci(&mut c, "during") {
        let from = parse_instant(&mut c)?;
        expect_kw_ci(&mut c, "to")?;
        let to = parse_instant(&mut c)?;
        if to <= from {
            return Err(Error::Invalid("DURING range is empty".into()));
        }
        TimeSpec::During(from, to)
    } else {
        TimeSpec::Current
    };
    let limit = if eat_kw_ci(&mut c, "limit") {
        match c.next() {
            Some(Tok::Int(n)) if *n > 0 => Some(*n as usize),
            other => return Err(c.error(format!("expected positive limit, found {other:?}"))),
        }
    } else {
        None
    };
    if !c.at_end() {
        return Err(c.error("trailing input after statement"));
    }
    Ok(SelectStmt {
        items,
        source,
        where_clause,
        keys,
        window,
        time,
        limit,
    })
}

impl fmt::Display for WindowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowKind::Tumbling { size_ms } => write!(f, "tumbling({size_ms})"),
            WindowKind::Sliding { size_ms, hop_ms } => write!(f, "sliding({size_ms}, {hop_ms})"),
            WindowKind::Session { gap_ms } => write!(f, "session({gap_ms})"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Agg {
                func,
                column,
                alias,
            } => {
                match column {
                    Some(c) => write!(f, "{}({c})", func.name())?,
                    None => write!(f, "{}(*)", func.name())?,
                }
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM {}", self.source)?;
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if self.window.is_some() || !self.keys.is_empty() {
            write!(f, " GROUP BY ")?;
            let mut first = true;
            if let Some(w) = &self.window {
                write!(f, "{w}")?;
                first = false;
            }
            for k in &self.keys {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{k}")?;
                first = false;
            }
        }
        match self.time {
            TimeSpec::Current => {}
            TimeSpec::AsOf(t) => write!(f, " AS OF {}", t.millis())?,
            TimeSpec::During(a, b) => write!(f, " DURING {} TO {}", a.millis(), b.millis())?,
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::value::Value;

    fn roundtrip(src: &str) -> SelectStmt {
        let stmt = parse_select_stmt(src).unwrap();
        let printed = stmt.to_string();
        let again = parse_select_stmt(&printed)
            .unwrap_or_else(|e| panic!("display `{printed}` did not re-parse: {e}"));
        assert_eq!(stmt, again, "round-trip via `{printed}`");
        stmt
    }

    #[test]
    fn parses_plain_select() {
        let stmt = roundtrip("SELECT entity, room FROM state WHERE room != \"lobby\" LIMIT 3");
        assert_eq!(stmt.items.len(), 2);
        assert_eq!(stmt.source.as_str(), "state");
        assert!(stmt.where_clause.is_some());
        assert_eq!(stmt.limit, Some(3));
        assert_eq!(stmt.time, TimeSpec::Current);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let a = parse_select_stmt("select entity from state").unwrap();
        let b = parse_select_stmt("SELECT entity FROM state").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_equals_is_equality() {
        let stmt = parse_select_stmt("SELECT entity FROM state WHERE room = \"lab\"").unwrap();
        let w = stmt.where_clause.unwrap();
        assert_eq!(
            w,
            Expr::Binary(
                fenestra_base::expr::BinOp::Eq,
                Box::new(Expr::name("room")),
                Box::new(Expr::Lit(Value::str("lab"))),
            )
        );
    }

    #[test]
    fn parses_windowed_group_by() {
        let stmt = roundtrip(
            "SELECT window_start, room, count(*) AS n FROM state \
             GROUP BY tumbling(10s), room DURING 0 TO 1m",
        );
        assert_eq!(stmt.window, Some(WindowKind::Tumbling { size_ms: 10_000 }));
        assert_eq!(stmt.keys, vec![Symbol::intern("room")]);
        assert_eq!(
            stmt.time,
            TimeSpec::During(Timestamp::new(0), Timestamp::new(60_000))
        );
    }

    #[test]
    fn window_position_in_group_by_is_free() {
        let a =
            parse_select_stmt("SELECT room, count(*) FROM state GROUP BY room, sliding(10s, 5s)")
                .unwrap();
        let b =
            parse_select_stmt("SELECT room, count(*) FROM state GROUP BY sliding(10s, 5s), room")
                .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn as_of_parses() {
        let stmt = roundtrip("SELECT entity FROM state AS OF 1500");
        assert_eq!(stmt.time, TimeSpec::AsOf(Timestamp::new(1500)));
    }

    #[test]
    fn output_names() {
        let stmt = parse_select_stmt(
            "SELECT count(*), sum(x), avg(x) AS mean FROM state GROUP BY tumbling(1s)",
        )
        .unwrap();
        let names: Vec<&str> = stmt
            .items
            .iter()
            .map(|i| i.output_name().as_str())
            .collect();
        assert_eq!(names, vec!["count", "sum_x", "mean"]);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "SELECT FROM state",                                      // no items
            "SELECT x state",                                         // missing FROM
            "SELECT frobnicate(x) FROM state",                        // unknown aggregate
            "SELECT x FROM state GROUP BY tumbling(0)",               // zero window
            "SELECT x FROM state GROUP BY tumbling(1s), session(1s)", // two windows
            "SELECT x FROM state DURING 5 TO 5",                      // empty range
            "SELECT x FROM state LIMIT 0",                            // bad limit
            "SELECT x FROM state garbage",                            // trailing
        ] {
            assert!(parse_select_stmt(bad).is_err(), "should fail: {bad}");
        }
    }
}
