//! Robustness: the query parser is total (never panics) on arbitrary
//! and DSL-plausible inputs.

use fenestra_query::parse_query;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_total_on_arbitrary_strings(s in "\\PC*") {
        let _ = parse_query(&s);
    }

    #[test]
    fn parser_total_on_token_soup(
        parts in prop::collection::vec(
            prop_oneof![
                Just("select"), Just("count"), Just("where"), Just("{"),
                Just("}"), Just("?"), Just("."), Just("filter"), Just("asof"),
                Just("during"), Just("current"), Just("limit"), Just("history"),
                Just("x"), Just("attr"), Just("\"v\""), Just("1"), Just("5s"),
            ],
            0..28,
        )
    ) {
        let s = parts.join(" ");
        let _ = parse_query(&s);
    }
}
