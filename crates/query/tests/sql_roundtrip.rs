//! Property test: the SQL dialect's `Display` is canonical — parsing
//! what a statement prints yields the same statement
//! (parse → display → parse is the identity on the AST).
//!
//! Golden `EXPLAIN` tests for the rewrite rules (predicate pushdown,
//! window normalization) live next to the planner in
//! `crates/query/src/plan.rs`.

use fenestra_base::expr::{BinOp, Expr};
use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use fenestra_query::sql::{AggName, SelectItem};
use fenestra_query::{parse_select_stmt, SelectStmt, TimeSpec, WindowKind};
use proptest::prelude::*;

/// Safe column names: no dialect keywords, no window-function names.
const COLS: [&str; 5] = ["room", "badge", "heat", "speed", "zone"];

fn col(i: u8) -> Symbol {
    Symbol::intern(COLS[i as usize % COLS.len()])
}

fn item_strategy() -> BoxedStrategy<SelectItem> {
    prop_oneof![
        (0..5u8).prop_map(|c| SelectItem::Column(col(c))),
        (0..5u8, 0..6u8, 0..6u8).prop_map(|(f, c, a)| {
            let func = [
                AggName::Count,
                AggName::Sum,
                AggName::Avg,
                AggName::Min,
                AggName::Max,
            ][f as usize];
            // Only count takes `*`; everything else needs a column.
            let column = if func == AggName::Count && c == 5 {
                None
            } else {
                Some(col(c))
            };
            let alias = if a == 5 { None } else { Some(col(a)) };
            SelectItem::Agg {
                func,
                column,
                alias,
            }
        }),
    ]
    .boxed()
}

fn leaf_pred(c: u8, op: u8, v: u8) -> Expr {
    let op = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ][op as usize % 6];
    let lit = match v % 3 {
        0 => Value::Int(i64::from(v)),
        1 => Value::str(COLS[v as usize % COLS.len()]),
        _ => Value::Bool(v.is_multiple_of(2)),
    };
    Expr::Binary(op, Box::new(Expr::Name(col(c))), Box::new(Expr::Lit(lit)))
}

fn where_strategy() -> BoxedStrategy<Expr> {
    prop_oneof![
        (0..5u8, 0..6u8, 0..9u8).prop_map(|(c, op, v)| leaf_pred(c, op, v)),
        ((0..5u8, 0..6u8, 0..9u8), (0..5u8, 0..6u8, 0..9u8), 0..2u8).prop_map(
            |((c1, o1, v1), (c2, o2, v2), conj)| {
                let a = leaf_pred(c1, o1, v1);
                let b = leaf_pred(c2, o2, v2);
                if conj == 0 {
                    a.and(b)
                } else {
                    a.or(b)
                }
            }
        ),
    ]
    .boxed()
}

fn window_strategy() -> BoxedStrategy<Option<WindowKind>> {
    prop_oneof![
        Just(None),
        (1..10_000u64).prop_map(|size_ms| Some(WindowKind::Tumbling { size_ms })),
        (1..10_000u64, 1..10_000u64)
            .prop_map(|(size_ms, hop_ms)| Some(WindowKind::Sliding { size_ms, hop_ms })),
        (1..10_000u64).prop_map(|gap_ms| Some(WindowKind::Session { gap_ms })),
    ]
    .boxed()
}

fn time_strategy() -> BoxedStrategy<TimeSpec> {
    prop_oneof![
        Just(TimeSpec::Current),
        (0..100_000u64).prop_map(|t| TimeSpec::AsOf(Timestamp::new(t))),
        (0..50_000u64, 1..50_000u64)
            .prop_map(|(a, gap)| TimeSpec::During(Timestamp::new(a), Timestamp::new(a + gap))),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse(display(stmt)) == stmt for arbitrary statements.
    #[test]
    fn display_reparses_to_same_ast(
        items in prop::collection::vec(item_strategy(), 1..4),
        where_clause in prop_oneof![Just(None), where_strategy().prop_map(Some)],
        keys in prop::collection::vec((0..5u8).prop_map(col), 0..3),
        window in window_strategy(),
        time in time_strategy(),
        limit in prop_oneof![Just(None), (1..1000usize).prop_map(Some)],
    ) {
        let stmt = SelectStmt {
            items,
            source: Symbol::intern("state"),
            where_clause,
            keys,
            window,
            time,
            limit,
        };
        let printed = stmt.to_string();
        let reparsed = parse_select_stmt(&printed);
        prop_assert!(reparsed.is_ok(), "`{}` failed to re-parse: {:?}", printed, reparsed.err());
        prop_assert_eq!(&stmt, &reparsed.unwrap(), "round-trip via `{}`", printed);
    }

    /// Parsed statements survive a display round-trip too (the other
    /// direction: text → AST → text → AST).
    #[test]
    fn parsed_text_roundtrips(
        c in 0..5u8,
        v in 0..5u8,
        size in 1..5_000u64,
        n in 1..100usize,
    ) {
        let src = format!(
            "SELECT {col}, count(*) AS total FROM state WHERE {col} != \"{val}\" \
             GROUP BY tumbling({size}), {col} LIMIT {n}",
            col = col(c),
            val = COLS[v as usize],
        );
        let stmt = parse_select_stmt(&src).unwrap();
        let again = parse_select_stmt(&stmt.to_string()).unwrap();
        prop_assert_eq!(stmt, again);
    }
}
