//! Property tests for the query engine: results are independent of
//! syntactic pattern order (the planner may reorder joins freely), and
//! temporal qualifiers agree with the store's own views.

use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use fenestra_query::{execute, Query, Term, TimeSpec};
use fenestra_temporal::{AttrSchema, TemporalStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Replace { e: u8, attr: u8, v: u8 },
    Retract { e: u8, attr: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..5u8, 0..2u8, 0..4u8).prop_map(|(e, attr, v)| Op::Replace { e, attr, v }),
        (0..5u8, 0..2u8).prop_map(|(e, attr)| Op::Retract { e, attr }),
    ]
}

const ATTRS: [&str; 2] = ["room", "badge"];

fn build(ops: &[Op]) -> TemporalStore {
    let mut s = TemporalStore::new();
    for a in ATTRS {
        s.declare_attr(a, AttrSchema::one());
    }
    let mut t = 0u64;
    for op in ops {
        t += 1;
        match op {
            Op::Replace { e, attr, v } => {
                let ent = s.named_entity(format!("e{e}").as_str());
                s.replace_at(
                    ent,
                    ATTRS[*attr as usize],
                    format!("v{v}").as_str(),
                    Timestamp::new(t),
                )
                .unwrap();
            }
            Op::Retract { e, attr } => {
                let ent = s.named_entity(format!("e{e}").as_str());
                let cur = s.current().value(ent, ATTRS[*attr as usize]);
                if let Some(v) = cur {
                    s.retract_at(ent, ATTRS[*attr as usize], v, Timestamp::new(t))
                        .unwrap();
                }
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pattern order never changes the result set.
    #[test]
    fn join_order_invariance(ops in prop::collection::vec(op_strategy(), 1..40), v in 0..4u8) {
        let store = build(&ops);
        let val = format!("v{v}");
        let forward = Query::new()
            .pattern(Term::var("x"), "room", Term::var("r"))
            .pattern(Term::var("x"), "badge", Term::val(val.as_str()))
            .pattern(Term::var("y"), "room", Term::var("r"));
        let backward = Query::new()
            .pattern(Term::var("y"), "room", Term::var("r"))
            .pattern(Term::var("x"), "badge", Term::val(val.as_str()))
            .pattern(Term::var("x"), "room", Term::var("r"));
        let a = execute(&store, &forward).unwrap();
        let b = execute(&store, &backward).unwrap();
        // Same variables in different first-mention order: normalize
        // each row into a sorted map before comparing.
        let norm = |rows: Vec<Vec<(fenestra_base::symbol::Symbol, Value)>>| {
            let mut out: Vec<Vec<(String, Value)>> = rows
                .into_iter()
                .map(|r| {
                    let mut r: Vec<(String, Value)> =
                        r.into_iter().map(|(n, v)| (n.as_str().to_owned(), v)).collect();
                    r.sort();
                    r
                })
                .collect();
            out.sort();
            out
        };
        prop_assert_eq!(norm(a), norm(b));
    }

    /// `current` equals `asof` at any time at or past the last
    /// transition.
    #[test]
    fn current_equals_asof_now(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let store = build(&ops);
        let now = store.last_transition();
        for attr in ATTRS {
            let q_cur = Query::new().pattern(Term::var("x"), attr, Term::var("v"));
            let q_asof = Query::new()
                .pattern(Term::var("x"), attr, Term::var("v"))
                .at(TimeSpec::AsOf(now));
            let a = execute(&store, &q_cur).unwrap();
            let b = execute(&store, &q_asof).unwrap();
            prop_assert_eq!(a, b, "attr {}", attr);
        }
    }

    /// A `during` query over the full trace covers every row any
    /// `asof` probe inside the range returns.
    #[test]
    fn during_covers_every_asof(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let store = build(&ops);
        let end = store.last_transition().millis() + 1;
        let during = execute(
            &store,
            &Query::new()
                .pattern(Term::var("x"), "room", Term::var("v"))
                .at(TimeSpec::During(Timestamp::new(0), Timestamp::new(end))),
        )
        .unwrap();
        for t in 0..end {
            let at = execute(
                &store,
                &Query::new()
                    .pattern(Term::var("x"), "room", Term::var("v"))
                    .at(TimeSpec::AsOf(Timestamp::new(t))),
            )
            .unwrap();
            for row in at {
                prop_assert!(
                    during.contains(&row),
                    "asof({}) row {:?} missing from during",
                    t,
                    row
                );
            }
        }
    }
}
