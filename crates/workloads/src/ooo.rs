//! Bounded out-of-order perturbation of an event stream.
//!
//! Real feeds deliver events late; this module shuffles a sorted
//! stream so each event is displaced by at most a bounded delay, to
//! exercise the watermark/reorder machinery (failure-injection in the
//! test suites, and knobs for the benchmarks).

use fenestra_base::record::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Perturb arrival order: each event's *arrival position* corresponds
/// to `ts + delay` with `delay` uniform in `[0, max_delay_ms]`. The
/// events' timestamps are unchanged; only the order they are delivered
/// in changes.
pub fn perturb(events: &[Event], max_delay_ms: u64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keyed: Vec<(u64, usize, Event)> = events
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let delay = if max_delay_ms == 0 {
                0
            } else {
                rng.gen_range(0..=max_delay_ms)
            };
            (e.ts.millis().saturating_add(delay), i, e.clone())
        })
        .collect();
    keyed.sort_by_key(|(arrival, i, _)| (*arrival, *i));
    keyed.into_iter().map(|(_, _, e)| e).collect()
}

/// Duplicate a fraction of events (at-least-once delivery simulation).
pub fn with_duplicates(events: &[Event], dup_prob: f64, seed: u64) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(events.len());
    for e in events {
        out.push(e.clone());
        if rng.gen_bool(dup_prob) {
            out.push(e.clone());
        }
    }
    out
}

/// Maximum displacement (in ms of event time) between the perturbed
/// order and timestamp order — useful to pick a sufficient lateness
/// bound in tests.
pub fn max_disorder(events: &[Event]) -> u64 {
    let mut max_seen = 0u64;
    let mut worst = 0u64;
    for e in events {
        let t = e.ts.millis();
        if t > max_seen {
            max_seen = t;
        } else {
            worst = worst.max(max_seen - t);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenestra_base::record::Record;

    fn evs(n: u64) -> Vec<Event> {
        (0..n)
            .map(|i| Event::new("s", i * 10, Record::from_pairs([("i", i as i64)])))
            .collect()
    }

    #[test]
    fn zero_delay_is_identity() {
        let e = evs(20);
        assert_eq!(perturb(&e, 0, 1), e);
        assert_eq!(max_disorder(&e), 0);
    }

    #[test]
    fn perturbation_is_bounded() {
        let e = evs(200);
        let p = perturb(&e, 35, 9);
        assert_ne!(p, e, "should actually shuffle");
        assert!(max_disorder(&p) <= 35, "disorder bounded by max delay");
        // Same multiset of events.
        let mut a = e.clone();
        let mut b = p.clone();
        a.sort_by_key(|x| x.ts);
        b.sort_by_key(|x| x.ts);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicates_are_injected() {
        let e = evs(100);
        let d = with_duplicates(&e, 0.5, 3);
        assert!(d.len() > 120 && d.len() < 180, "got {}", d.len());
    }
}
