#![warn(missing_docs)]
//! # fenestra-workloads
//!
//! Seeded synthetic workload generators for the paper's three
//! motivating scenarios (the paper has no public datasets; these
//! generators parameterize exactly the structural properties its
//! arguments rest on — see DESIGN.md "Substitutions"):
//!
//! * [`clickstream`] — e-commerce click streams with lognormal session
//!   lengths (§1: "trace a user from the moment when she enters the
//!   Web site to the moment when she leaves");
//! * [`building`] — visitors random-walking rooms, each sensor event
//!   invalidating the previous position (§1 security service);
//! * [`ecommerce`] — sales with Zipf product popularity plus a slow
//!   catalog-reclassification stream (§3.1 case study).
//!
//! Every generator is deterministic given its seed and returns both
//! the event stream and an **oracle** (ground truth) against which
//! window-based and state-based systems are scored. [`ooo`] perturbs
//! any stream with bounded out-of-orderness.

pub mod building;
pub mod clickstream;
pub mod ecommerce;
pub mod ooo;

pub use building::{BuildingConfig, BuildingWorkload};
pub use clickstream::{ClickstreamConfig, ClickstreamWorkload};
pub use ecommerce::{EcommerceConfig, EcommerceWorkload};
