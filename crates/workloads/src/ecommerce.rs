//! E-commerce decision-support workload (paper §3.1 case study):
//! a fast `sales` stream (Zipf product popularity) interleaved with a
//! slow `catalog` stream that (re)classifies products.
//!
//! The oracle is each product's classification timeline: a sale's true
//! class is the classification valid at the sale's timestamp. A
//! window-joined baseline loses classifications older than its window;
//! the explicit-state system never does (experiment E3).

use fenestra_base::record::Event;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// Configuration for the e-commerce generator.
#[derive(Debug, Clone)]
pub struct EcommerceConfig {
    /// Number of products.
    pub products: usize,
    /// Number of classes products can belong to.
    pub classes: usize,
    /// Number of sale events.
    pub sales: usize,
    /// Mean gap between sales (ms).
    pub sale_gap_ms: u64,
    /// Probability that a step also emits a reclassification event.
    pub reclass_prob: f64,
    /// Zipf exponent for product popularity.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EcommerceConfig {
    fn default() -> Self {
        EcommerceConfig {
            products: 200,
            classes: 10,
            sales: 2_000,
            sale_gap_ms: 100,
            reclass_prob: 0.02,
            zipf_exponent: 1.1,
            seed: 11,
        }
    }
}

/// One classification interval in the ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleClass {
    /// Product name (`p<i>`).
    pub product: String,
    /// Class name (`class<i>`).
    pub class: String,
    /// Valid from.
    pub from: Timestamp,
    /// Valid until (`None` = current).
    pub until: Option<Timestamp>,
}

/// Generated workload: interleaved sales + catalog events and the
/// classification ground truth.
#[derive(Debug, Clone)]
pub struct EcommerceWorkload {
    /// Events on streams `sales` (fields `product`, `qty`, `price`) and
    /// `catalog` (fields `product`, `class`), sorted by timestamp. All
    /// products are classified at t=0 before the first sale.
    pub events: Vec<Event>,
    /// Classification timeline, sorted by `from`.
    pub classifications: Vec<OracleClass>,
    /// Number of sale events.
    pub sale_count: usize,
    /// Number of catalog events (including the initial classification).
    pub catalog_count: usize,
}

impl EcommerceWorkload {
    /// Generate a workload.
    pub fn generate(cfg: &EcommerceConfig) -> EcommerceWorkload {
        assert!(cfg.products > 0 && cfg.classes > 1 && cfg.sales > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let product_dist = Zipf::new(cfg.products as u64, cfg.zipf_exponent).expect("valid zipf");
        let mut events = Vec::new();
        let mut classifications: Vec<OracleClass> = Vec::new();
        // Open classification index per product (into classifications).
        let mut open: Vec<usize> = Vec::with_capacity(cfg.products);
        // Initial classification of every product at t=0.
        for p in 0..cfg.products {
            let class = rng.gen_range(0..cfg.classes);
            events.push(Event::from_pairs(
                "catalog",
                0u64,
                [
                    ("product", Value::str(&format!("p{p}"))),
                    ("class", Value::str(&format!("class{class}"))),
                ],
            ));
            open.push(classifications.len());
            classifications.push(OracleClass {
                product: format!("p{p}"),
                class: format!("class{class}"),
                from: Timestamp::new(0),
                until: None,
            });
        }
        let mut catalog_count = cfg.products;
        let mut t: u64 = 0;
        for _ in 0..cfg.sales {
            t += 1 + rng.gen_range(0..=cfg.sale_gap_ms * 2);
            // Maybe reclassify a random product first.
            if rng.gen_bool(cfg.reclass_prob) {
                let p = rng.gen_range(0..cfg.products);
                let current = &classifications[open[p]];
                let mut class = rng.gen_range(0..cfg.classes);
                if format!("class{class}") == current.class {
                    class = (class + 1) % cfg.classes;
                }
                classifications[open[p]].until = Some(Timestamp::new(t));
                events.push(Event::from_pairs(
                    "catalog",
                    t,
                    [
                        ("product", Value::str(&format!("p{p}"))),
                        ("class", Value::str(&format!("class{class}"))),
                    ],
                ));
                open[p] = classifications.len();
                classifications.push(OracleClass {
                    product: format!("p{p}"),
                    class: format!("class{class}"),
                    from: Timestamp::new(t),
                    until: None,
                });
                catalog_count += 1;
                t += 1; // sales strictly after the reclassification
            }
            let p = (product_dist.sample(&mut rng) as usize).saturating_sub(1);
            let qty = rng.gen_range(1..=5i64);
            let price = rng.gen_range(5..=500i64);
            events.push(Event::from_pairs(
                "sales",
                t,
                [
                    ("product", Value::str(&format!("p{p}"))),
                    ("qty", Value::Int(qty)),
                    ("price", Value::Int(price)),
                ],
            ));
        }
        events.sort_by_key(|e| e.ts);
        classifications.sort_by_key(|c| c.from);
        EcommerceWorkload {
            events,
            classifications,
            sale_count: cfg.sales,
            catalog_count,
        }
    }

    /// The true class of `product` at instant `t` (oracle).
    pub fn true_class_at(&self, product: &str, t: Timestamp) -> Option<&str> {
        self.classifications
            .iter()
            .find(|c| c.product == product && c.from <= t && c.until.is_none_or(|u| t < u))
            .map(|c| c.class.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = EcommerceConfig {
            sales: 300,
            ..Default::default()
        };
        let a = EcommerceWorkload::generate(&cfg);
        let b = EcommerceWorkload::generate(&cfg);
        assert_eq!(a.events, b.events);
        assert!(a.events.windows(2).all(|p| p[0].ts <= p[1].ts));
        assert_eq!(a.sale_count, 300);
    }

    #[test]
    fn every_product_classified_from_t0() {
        let w = EcommerceWorkload::generate(&EcommerceConfig {
            products: 20,
            sales: 100,
            ..Default::default()
        });
        for p in 0..20 {
            assert!(
                w.true_class_at(&format!("p{p}"), Timestamp::new(1))
                    .is_some(),
                "p{p} unclassified"
            );
        }
    }

    #[test]
    fn classification_timeline_tiles() {
        let w = EcommerceWorkload::generate(&EcommerceConfig {
            products: 10,
            sales: 500,
            reclass_prob: 0.2,
            ..Default::default()
        });
        for p in 0..10 {
            let product = format!("p{p}");
            let mine: Vec<_> = w
                .classifications
                .iter()
                .filter(|c| c.product == product)
                .collect();
            for pair in mine.windows(2) {
                assert_eq!(pair[0].until, Some(pair[1].from));
                assert_ne!(pair[0].class, pair[1].class, "reclass changes class");
            }
            assert!(mine.last().unwrap().until.is_none());
        }
    }

    #[test]
    fn sales_reference_existing_products() {
        let w = EcommerceWorkload::generate(&EcommerceConfig {
            products: 15,
            sales: 200,
            ..Default::default()
        });
        for e in w.events.iter().filter(|e| e.stream.as_str() == "sales") {
            let p = e.get("product").unwrap().as_str().unwrap();
            let idx: usize = p[1..].parse().unwrap();
            assert!(idx < 15, "sale for unknown product {p}");
            assert!(
                w.true_class_at(p, e.ts).is_some(),
                "sale at {} for unclassified {p}",
                e.ts
            );
        }
    }

    #[test]
    fn zipf_skews_sales() {
        let w = EcommerceWorkload::generate(&EcommerceConfig {
            products: 100,
            sales: 2_000,
            ..Default::default()
        });
        let mut counts = vec![0usize; 100];
        for e in w.events.iter().filter(|e| e.stream.as_str() == "sales") {
            let p = e.get("product").unwrap().as_str().unwrap();
            counts[p[1..].parse::<usize>().unwrap()] += 1;
        }
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(
            head > tail * 3,
            "popular products should dominate (head={head}, tail={tail})"
        );
    }
}
