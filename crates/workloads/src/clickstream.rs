//! Click-stream workload: users with lognormally distributed session
//! lengths interacting with an e-commerce site.
//!
//! Every session is `enter`, a number of `browse`/`view`/`add` events,
//! then `leave`. The oracle records the true sessions, so fixed-window
//! session detection can be scored for recall (too-short windows split
//! sessions) and over-retention (too-long windows hold users after
//! they left) — the paper's §1 claim that "fixed-size windows are not
//! always adequate".

use fenestra_base::record::Event;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Zipf};

/// Configuration for the click-stream generator.
#[derive(Debug, Clone)]
pub struct ClickstreamConfig {
    /// Number of distinct users.
    pub users: usize,
    /// Total sessions to generate.
    pub sessions: usize,
    /// Mean of the session-length distribution (ms); lengths are
    /// lognormal around this scale.
    pub mean_session_ms: f64,
    /// Sigma of the lognormal (larger = heavier tail).
    pub session_sigma: f64,
    /// Mean gap between consecutive events inside a session (ms).
    pub intra_event_gap_ms: u64,
    /// Mean gap between session starts (ms) — controls concurrency.
    pub session_arrival_gap_ms: u64,
    /// Number of distinct pages, browsed with Zipf popularity.
    pub pages: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClickstreamConfig {
    fn default() -> Self {
        ClickstreamConfig {
            users: 100,
            sessions: 500,
            mean_session_ms: 60_000.0,
            session_sigma: 1.0,
            intra_event_gap_ms: 5_000,
            session_arrival_gap_ms: 500,
            pages: 50,
            seed: 42,
        }
    }
}

/// One ground-truth session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleSession {
    /// User name (`u<i>`).
    pub user: String,
    /// Timestamp of the `enter` event.
    pub start: Timestamp,
    /// Timestamp of the `leave` event.
    pub end: Timestamp,
    /// Total events in the session (including enter/leave).
    pub events: usize,
}

/// Generated workload: the event stream plus ground truth.
#[derive(Debug, Clone)]
pub struct ClickstreamWorkload {
    /// Events on stream `clicks`, sorted by timestamp.
    pub events: Vec<Event>,
    /// True sessions, sorted by start.
    pub sessions: Vec<OracleSession>,
}

impl ClickstreamWorkload {
    /// Generate a workload.
    pub fn generate(cfg: &ClickstreamConfig) -> ClickstreamWorkload {
        assert!(cfg.users > 0 && cfg.sessions > 0 && cfg.pages > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Lognormal parameterized so the mean is ~mean_session_ms.
        let mu = cfg.mean_session_ms.ln() - cfg.session_sigma * cfg.session_sigma / 2.0;
        let len_dist = LogNormal::new(mu, cfg.session_sigma).expect("valid lognormal");
        let page_dist = Zipf::new(cfg.pages as u64, 1.1).expect("valid zipf");

        let mut events: Vec<Event> = Vec::new();
        let mut sessions: Vec<OracleSession> = Vec::new();
        let mut clock: u64 = 0;
        // A user can only have one live session at a time: track the
        // end of each user's last session.
        let mut busy_until: Vec<u64> = vec![0; cfg.users];

        for _ in 0..cfg.sessions {
            clock += 1 + rng.gen_range(0..=cfg.session_arrival_gap_ms * 2);
            let user_idx = rng.gen_range(0..cfg.users);
            let start = clock.max(busy_until[user_idx] + 1);
            let length = (len_dist.sample(&mut rng) as u64).max(2);
            let end = start + length;
            busy_until[user_idx] = end;
            let user = format!("u{user_idx}");

            let mut n = 0usize;
            let mut push = |ts: u64, action: &str, page: Option<u64>, n: &mut usize| {
                let mut pairs = vec![("user", Value::str(&user)), ("action", Value::str(action))];
                if let Some(p) = page {
                    pairs.push(("page", Value::str(&format!("page{p}"))));
                }
                events.push(Event::from_pairs("clicks", ts, pairs));
                *n += 1;
            };
            push(start, "enter", None, &mut n);
            let mut t = start;
            loop {
                let gap = 1 + rng.gen_range(0..=cfg.intra_event_gap_ms * 2);
                t += gap;
                if t >= end {
                    break;
                }
                let action = match rng.gen_range(0..10) {
                    0..=5 => "browse",
                    6..=7 => "view",
                    8 => "add",
                    _ => "purchase",
                };
                let page = page_dist.sample(&mut rng) as u64;
                push(t, action, Some(page), &mut n);
            }
            push(end, "leave", None, &mut n);
            sessions.push(OracleSession {
                user,
                start: Timestamp::new(start),
                end: Timestamp::new(end),
                events: n,
            });
        }
        events.sort_by_key(|e| e.ts);
        sessions.sort_by_key(|s| s.start);
        ClickstreamWorkload { events, sessions }
    }

    /// Mean true session length in milliseconds.
    pub fn mean_session_len(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions
            .iter()
            .map(|s| (s.end - s.start).as_millis() as f64)
            .sum::<f64>()
            / self.sessions.len() as f64
    }

    /// Number of users with an open session at instant `t` (oracle).
    pub fn active_at(&self, t: Timestamp) -> usize {
        self.sessions
            .iter()
            .filter(|s| s.start <= t && t < s.end)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = ClickstreamConfig {
            sessions: 50,
            ..Default::default()
        };
        let a = ClickstreamWorkload::generate(&cfg);
        let b = ClickstreamWorkload::generate(&cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sessions, b.sessions);
        let c = ClickstreamWorkload::generate(&ClickstreamConfig { seed: 43, ..cfg });
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn events_sorted_and_sessions_well_formed() {
        let w = ClickstreamWorkload::generate(&ClickstreamConfig {
            sessions: 100,
            ..Default::default()
        });
        assert!(w.events.windows(2).all(|p| p[0].ts <= p[1].ts));
        for s in &w.sessions {
            assert!(s.start < s.end);
            assert!(s.events >= 2, "at least enter+leave");
        }
        assert_eq!(w.sessions.len(), 100);
    }

    #[test]
    fn sessions_per_user_do_not_overlap() {
        let w = ClickstreamWorkload::generate(&ClickstreamConfig {
            users: 5,
            sessions: 80,
            ..Default::default()
        });
        for u in 0..5 {
            let user = format!("u{u}");
            let mut mine: Vec<_> = w.sessions.iter().filter(|s| s.user == user).collect();
            mine.sort_by_key(|s| s.start);
            for pair in mine.windows(2) {
                assert!(pair[0].end < pair[1].start, "overlap for {user}");
            }
        }
    }

    #[test]
    fn session_lengths_are_dispersed() {
        let w = ClickstreamWorkload::generate(&ClickstreamConfig {
            sessions: 300,
            ..Default::default()
        });
        let lens: Vec<u64> = w
            .sessions
            .iter()
            .map(|s| (s.end - s.start).as_millis())
            .collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(
            max > min * 10,
            "lognormal tail should disperse lengths (min={min}, max={max})"
        );
    }

    #[test]
    fn enter_leave_bracket_every_session() {
        let w = ClickstreamWorkload::generate(&ClickstreamConfig {
            sessions: 30,
            ..Default::default()
        });
        let enters = w
            .events
            .iter()
            .filter(|e| e.get("action") == Some(&Value::str("enter")))
            .count();
        let leaves = w
            .events
            .iter()
            .filter(|e| e.get("action") == Some(&Value::str("leave")))
            .count();
        assert_eq!(enters, 30);
        assert_eq!(leaves, 30);
    }

    #[test]
    fn active_at_oracle() {
        let w = ClickstreamWorkload::generate(&ClickstreamConfig {
            sessions: 50,
            ..Default::default()
        });
        let s = &w.sessions[0];
        assert!(w.active_at(s.start) >= 1);
        assert_eq!(w.active_at(Timestamp::new(0)), 0);
    }
}
