//! Building-security workload: visitors random-walk rooms; each sensor
//! event gives a visitor's *new* room and invalidates the previous one.
//!
//! The oracle is each visitor's position timeline, so systems can be
//! scored for contradictions: a fixed time window that contains two
//! moves of the same visitor "would lead to the erroneous conclusion
//! that the visitor is simultaneously in multiple rooms" (paper §1).

use fenestra_base::record::Event;
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the building generator.
#[derive(Debug, Clone)]
pub struct BuildingConfig {
    /// Number of visitors.
    pub visitors: usize,
    /// Number of rooms.
    pub rooms: usize,
    /// Mean dwell time in a room before moving (ms).
    pub mean_dwell_ms: u64,
    /// Total duration of the trace (ms).
    pub duration_ms: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BuildingConfig {
    fn default() -> Self {
        BuildingConfig {
            visitors: 20,
            rooms: 10,
            mean_dwell_ms: 60_000,
            duration_ms: 3_600_000,
            seed: 7,
        }
    }
}

/// One position interval in the ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleStay {
    /// Visitor name (`v<i>`).
    pub visitor: String,
    /// Room name (`room<i>`).
    pub room: String,
    /// Entry time.
    pub from: Timestamp,
    /// Exit time (`None` = still there at trace end).
    pub until: Option<Timestamp>,
}

/// Generated workload: sensor events plus the position ground truth.
#[derive(Debug, Clone)]
pub struct BuildingWorkload {
    /// Events on stream `sensors`, sorted by timestamp; fields
    /// `visitor`, `room`.
    pub events: Vec<Event>,
    /// Ground-truth stays, sorted by `from`.
    pub stays: Vec<OracleStay>,
    /// Trace duration.
    pub duration: Timestamp,
}

impl BuildingWorkload {
    /// Generate a workload.
    pub fn generate(cfg: &BuildingConfig) -> BuildingWorkload {
        assert!(cfg.visitors > 0 && cfg.rooms > 1 && cfg.mean_dwell_ms > 0);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut events = Vec::new();
        let mut stays = Vec::new();
        for v in 0..cfg.visitors {
            let visitor = format!("v{v}");
            // Stagger arrivals through the first quarter of the trace.
            let mut t = rng.gen_range(0..=cfg.duration_ms / 4);
            let mut room = rng.gen_range(0..cfg.rooms);
            loop {
                if t >= cfg.duration_ms {
                    break;
                }
                let room_name = format!("room{room}");
                events.push(Event::from_pairs(
                    "sensors",
                    t,
                    [
                        ("visitor", Value::str(&visitor)),
                        ("room", Value::str(&room_name)),
                    ],
                ));
                let dwell = 1 + rng.gen_range(0..=cfg.mean_dwell_ms * 2);
                let leave_at = t + dwell;
                stays.push(OracleStay {
                    visitor: visitor.clone(),
                    room: room_name,
                    from: Timestamp::new(t),
                    until: if leave_at < cfg.duration_ms {
                        Some(Timestamp::new(leave_at))
                    } else {
                        None
                    },
                });
                t = leave_at;
                // Move to a different room.
                let next = rng.gen_range(0..cfg.rooms - 1);
                room = if next >= room { next + 1 } else { next };
            }
        }
        events.sort_by_key(|e| e.ts);
        stays.sort_by_key(|s| s.from);
        BuildingWorkload {
            events,
            stays,
            duration: Timestamp::new(cfg.duration_ms),
        }
    }

    /// The true room of `visitor` at instant `t` (oracle).
    pub fn true_room_at(&self, visitor: &str, t: Timestamp) -> Option<&str> {
        self.stays
            .iter()
            .find(|s| s.visitor == visitor && s.from <= t && s.until.is_none_or(|u| t < u))
            .map(|s| s.room.as_str())
    }

    /// Number of moves (sensor events) per visitor, averaged.
    pub fn mean_moves_per_visitor(&self) -> f64 {
        let visitors: std::collections::HashSet<&str> =
            self.stays.iter().map(|s| s.visitor.as_str()).collect();
        if visitors.is_empty() {
            0.0
        } else {
            self.events.len() as f64 / visitors.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sorted() {
        let cfg = BuildingConfig::default();
        let a = BuildingWorkload::generate(&cfg);
        let b = BuildingWorkload::generate(&cfg);
        assert_eq!(a.events, b.events);
        assert!(a.events.windows(2).all(|p| p[0].ts <= p[1].ts));
        assert!(!a.events.is_empty());
    }

    #[test]
    fn stays_are_contiguous_and_exclusive_per_visitor() {
        let w = BuildingWorkload::generate(&BuildingConfig {
            visitors: 5,
            duration_ms: 600_000,
            ..Default::default()
        });
        for v in 0..5 {
            let visitor = format!("v{v}");
            let mine: Vec<_> = w.stays.iter().filter(|s| s.visitor == visitor).collect();
            for pair in mine.windows(2) {
                assert_eq!(
                    pair[0].until,
                    Some(pair[1].from),
                    "stays must tile the timeline"
                );
                assert_ne!(pair[0].room, pair[1].room, "moves change rooms");
            }
            assert!(mine.last().unwrap().until.is_none(), "last stay open");
        }
    }

    #[test]
    fn oracle_lookup_matches_stays() {
        let w = BuildingWorkload::generate(&BuildingConfig::default());
        let s = &w.stays[0];
        assert_eq!(w.true_room_at(&s.visitor, s.from), Some(s.room.as_str()));
        if let Some(u) = s.until {
            let after = w.true_room_at(&s.visitor, u);
            assert_ne!(after, Some(s.room.as_str()), "moved away at `until`");
        }
    }

    #[test]
    fn one_event_per_stay() {
        let w = BuildingWorkload::generate(&BuildingConfig::default());
        assert_eq!(w.events.len(), w.stays.len());
    }
}
