//! End-to-end shipping over a real socket and real WAL files: a
//! leader session serving a [`FollowerClient`], without a server on
//! either side. The server integration tests (tests/replication.rs at
//! the workspace root) cover the full daemon; these pin the crate's
//! own contract — bootstrap, tailing, rotation, re-bootstrap, and
//! fencing.

use fenestra_base::symbol::Symbol;
use fenestra_base::time::Timestamp;
use fenestra_base::value::{EntityId, Value};
use fenestra_obs::ReplObs;
use fenestra_replica::{serve_follower, AckTracker, FollowerClient, LeaderConfig, ReplPaths};
use fenestra_temporal::persist;
use fenestra_temporal::wal_file::{scan_frames, segment_path, FsyncPolicy, WalWriter};
use fenestra_temporal::{Provenance, TemporalStore, WalOp};
use fenestra_wire::repl::{ReplFrame, ShardPosition};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fenestra-replica-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ops(range: std::ops::Range<u64>) -> Vec<WalOp> {
    range
        .map(|i| WalOp::Assert {
            entity: EntityId(i),
            attr: Symbol::intern("x"),
            value: Value::Int(i as i64),
            t: Timestamp::new(i),
            provenance: Provenance::External,
        })
        .collect()
}

struct Leader {
    addr: String,
    epoch: Arc<AtomicU64>,
    obs: Arc<ReplObs>,
    acks: Arc<AckTracker>,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl Leader {
    /// Bind a listener and serve every connection with
    /// `serve_follower` until shut down.
    fn start(wal_base: PathBuf, snapshot: Option<PathBuf>, epoch0: u64) -> Leader {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let epoch = Arc::new(AtomicU64::new(epoch0));
        let obs = Arc::new(ReplObs::default());
        let acks = Arc::new(AckTracker::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let cfg = LeaderConfig {
            paths: ReplPaths {
                wal_base,
                snapshot,
                shards: 1,
            },
            epoch: Arc::clone(&epoch),
            obs: Arc::clone(&obs),
            acks: Arc::clone(&acks),
            shutdown: Arc::clone(&shutdown),
            poll: Duration::from_millis(2),
            heartbeat: Duration::from_millis(50),
        };
        let stop = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || {
            listener.set_nonblocking(true).unwrap();
            let mut sessions = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let cfg = cfg.clone();
                        sessions.push(std::thread::spawn(move || {
                            let _ = serve_follower(stream, cfg);
                        }));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            for s in sessions {
                let _ = s.join();
            }
        });
        Leader {
            addr,
            epoch,
            obs,
            acks,
            shutdown,
            accept: Some(accept),
        }
    }
}

impl Drop for Leader {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

/// Pull frames until `pred` accepts one, failing after 5 seconds.
fn next_matching(
    client: &mut FollowerClient,
    what: &str,
    mut pred: impl FnMut(&ReplFrame) -> bool,
) -> ReplFrame {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Some(f) = client.recv().unwrap() {
            if pred(&f) {
                return f;
            }
        }
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn bootstraps_tails_and_rotates() {
    let dir = tmp_dir("ship");
    let base = dir.join("log");
    let snap = dir.join("state.json");

    // Leader state: ops 0..3 snapshotted (gen already rotated to 1),
    // ops 3..6 in segment 1.
    let mut store = TemporalStore::new();
    for op in ops(0..3) {
        store.apply(&op).unwrap();
    }
    persist::save_compact(&store, &snap, 1).unwrap();
    let mut w = WalWriter::create(&segment_path(&base, 1), FsyncPolicy::Always).unwrap();
    w.append(&ops(3..6)).unwrap();

    let leader = Leader::start(base.clone(), Some(snap.clone()), 0);
    let mut client =
        FollowerClient::connect(&leader.addr, 0, 1, vec![], Duration::from_millis(20)).unwrap();
    assert_eq!(client.epoch, 0);

    // Bootstrap snapshot first: gen 1, parseable, 3 ops.
    let f = next_matching(&mut client, "Snapshot", |f| {
        matches!(f, ReplFrame::Snapshot { .. })
    });
    let ReplFrame::Snapshot { gen, bytes, .. } = f else {
        unreachable!()
    };
    assert_eq!(gen, 1);
    let loaded = persist::from_json_with_meta(std::str::from_utf8(&bytes).unwrap()).unwrap();
    assert_eq!(loaded.op_count, 3);

    // Then the segment tail, as verbatim frames from offset 0.
    let f = next_matching(&mut client, "Frames", |f| {
        matches!(f, ReplFrame::Frames { .. })
    });
    let ReplFrame::Frames {
        gen, offset, bytes, ..
    } = f
    else {
        unreachable!()
    };
    assert_eq!((gen, offset), (1, 0));
    let tail = scan_frames(&bytes);
    assert_eq!(tail.discarded_bytes, 0);
    assert_eq!(tail.ops, ops(3..6));
    let mut acks = client.ack_sender().unwrap();
    let applied = ShardPosition {
        shard: 0,
        gen: 1,
        offset: bytes.len() as u64,
    };
    acks.send(applied, fenestra_replica::now_us().saturating_sub(1))
        .unwrap();
    // A durable-coverage claim lands in the leader's tracker: this
    // session now covers the position (and everything before it), but
    // nothing past it.
    acks.send_covered(applied, 0).unwrap();
    let deadline = Instant::now() + Duration::from_secs(2);
    while leader.acks.covering(0, 1, applied.offset) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(leader.acks.covering(0, 1, applied.offset), 1);
    assert_eq!(leader.acks.covering(0, 1, applied.offset + 1), 0);

    // Live tailing: new appends arrive without reconnecting.
    w.append(&ops(6..8)).unwrap();
    let f = next_matching(&mut client, "tailed Frames", |f| {
        matches!(f, ReplFrame::Frames { .. })
    });
    let ReplFrame::Frames { offset, bytes, .. } = f else {
        unreachable!()
    };
    assert!(offset > 0, "tail continues past the first batch");
    assert_eq!(scan_frames(&bytes).ops, ops(6..8));

    // Rotation: create segment 2, land a snapshot covering gen 2, then
    // unlink segment 1 — the leader must ship Rotate{new_gen: 2} and
    // follow the new segment.
    for op in ops(3..8) {
        store.apply(&op).unwrap();
    }
    let mut w2 = WalWriter::create(&segment_path(&base, 2), FsyncPolicy::Always).unwrap();
    persist::save_compact(&store, &snap, 2).unwrap();
    std::fs::remove_file(segment_path(&base, 1)).unwrap();
    let f = next_matching(&mut client, "Rotate", |f| {
        matches!(f, ReplFrame::Rotate { .. })
    });
    assert_eq!(
        f,
        ReplFrame::Rotate {
            shard: 0,
            new_gen: 2,
            epoch: 0
        }
    );
    w2.append(&ops(8..10)).unwrap();
    let f = next_matching(&mut client, "post-rotation Frames", |f| {
        matches!(f, ReplFrame::Frames { .. })
    });
    let ReplFrame::Frames { gen, bytes, .. } = f else {
        unreachable!()
    };
    assert_eq!(gen, 2);
    assert_eq!(scan_frames(&bytes).ops, ops(8..10));

    // Heartbeats flow throughout.
    next_matching(&mut client, "Heartbeat", |f| {
        matches!(f, ReplFrame::Heartbeat { .. })
    });

    // The ack sent above reached the lag histogram.
    let deadline = Instant::now() + Duration::from_secs(2);
    while leader.obs.ack_lag_us.snapshot().count == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(leader.obs.ack_lag_us.snapshot().count, 1);
    assert_eq!(leader.obs.snapshots_shipped.load(Ordering::Relaxed), 1);
    assert!(leader.obs.ship_frames.load(Ordering::Relaxed) >= 3);
    drop(client);
    drop(leader);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_skips_bootstrap_and_ships_only_new_bytes() {
    let dir = tmp_dir("resume");
    let base = dir.join("log");
    let mut w = WalWriter::create(&segment_path(&base, 0), FsyncPolicy::Always).unwrap();
    w.append(&ops(0..4)).unwrap();
    let held = w.segment_len();
    w.append(&ops(4..6)).unwrap();

    let leader = Leader::start(base.clone(), None, 0);
    let resume = vec![ShardPosition {
        shard: 0,
        gen: 0,
        offset: held,
    }];
    let mut client =
        FollowerClient::connect(&leader.addr, 0, 1, resume, Duration::from_millis(20)).unwrap();
    let f = next_matching(&mut client, "resumed Frames", |f| {
        !matches!(f, ReplFrame::Heartbeat { .. })
    });
    let ReplFrame::Frames {
        gen, offset, bytes, ..
    } = f
    else {
        panic!("expected Frames first (no bootstrap on resume), got {f:?}");
    };
    assert_eq!((gen, offset), (0, held));
    assert_eq!(scan_frames(&bytes).ops, ops(4..6));
    drop(client);
    drop(leader);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn without_snapshots_a_fresh_follower_gets_an_empty_bootstrap() {
    let dir = tmp_dir("nosnap");
    let base = dir.join("log");
    let mut w = WalWriter::create(&segment_path(&base, 0), FsyncPolicy::Always).unwrap();
    w.append(&ops(0..2)).unwrap();

    let leader = Leader::start(base.clone(), None, 0);
    let mut client =
        FollowerClient::connect(&leader.addr, 0, 1, vec![], Duration::from_millis(20)).unwrap();
    let f = next_matching(&mut client, "empty Snapshot", |f| {
        matches!(f, ReplFrame::Snapshot { .. })
    });
    let ReplFrame::Snapshot { gen, bytes, .. } = f else {
        unreachable!()
    };
    assert_eq!(gen, 0);
    assert!(bytes.is_empty(), "no snapshot configured ⇒ start empty");
    let f = next_matching(&mut client, "Frames", |f| {
        matches!(f, ReplFrame::Frames { .. })
    });
    let ReplFrame::Frames { bytes, .. } = f else {
        unreachable!()
    };
    assert_eq!(scan_frames(&bytes).ops, ops(0..2));
    drop(client);
    drop(leader);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn higher_epoch_follower_is_fenced_and_stale_leader_is_refused() {
    let dir = tmp_dir("fence");
    let base = dir.join("log");
    WalWriter::create(&segment_path(&base, 0), FsyncPolicy::Always).unwrap();
    let leader = Leader::start(base.clone(), None, 2);

    // A promoted node (epoch 5) greeting the old leader (epoch 2) gets
    // Fenced back — the demoted side learns it has been superseded.
    let err =
        FollowerClient::connect(&leader.addr, 5, 1, vec![], Duration::from_millis(20)).unwrap_err();
    assert!(err.to_string().contains("fenced"), "got: {err}");
    assert_eq!(leader.obs.fenced.load(Ordering::Relaxed), 1);

    // Equal-or-lower epochs handshake fine, and the session carries
    // the leader's epoch for the follower to adopt.
    let client =
        FollowerClient::connect(&leader.addr, 0, 1, vec![], Duration::from_millis(20)).unwrap();
    assert_eq!(client.epoch, 2);

    // Shard-count mismatch: the leader drops the connection during the
    // handshake rather than shipping a mispartitioned stream.
    let err =
        FollowerClient::connect(&leader.addr, 0, 4, vec![], Duration::from_millis(20)).unwrap_err();
    assert!(err.to_string().contains("handshake"), "got: {err}");

    // An epoch move on the leader (it was itself promoted, or adopted
    // a new epoch) terminates live sessions: stale sessions must not
    // keep shipping under the old epoch.
    let mut client = client;
    leader.epoch.store(6, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(5);
    let err = loop {
        assert!(Instant::now() < deadline, "session outlived the epoch move");
        match client.recv() {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    assert!(
        err.to_string().contains("closed") || err.to_string().contains("mid-frame"),
        "got: {err}"
    );
    drop(client);
    drop(leader);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn frames_with_wrong_epoch_tear_the_session_down() {
    // A fake leader that welcomes at epoch 3 but then ships a frame
    // stamped epoch 2 (a demoted node's buffered write): the client
    // must refuse it rather than apply it.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let hello = ReplFrame::read_from(&mut s).unwrap();
        assert!(matches!(hello, Some(ReplFrame::Hello { .. })));
        ReplFrame::Welcome {
            epoch: 3,
            shards: 1,
        }
        .write_to(&mut s)
        .unwrap();
        ReplFrame::Frames {
            shard: 0,
            gen: 0,
            offset: 0,
            epoch: 2,
            sent_at_us: 0,
            bytes: vec![],
        }
        .write_to(&mut s)
        .unwrap();
        // Hold the socket open so the error comes from the epoch
        // check, not EOF.
        std::thread::sleep(Duration::from_millis(200));
        drop(s);
    });
    let mut client =
        FollowerClient::connect(&addr, 1, 1, vec![], Duration::from_millis(20)).unwrap();
    assert_eq!(client.epoch, 3);
    let err = loop {
        match client.recv() {
            Ok(Some(_)) => panic!("mismatched-epoch frame must not be delivered"),
            Ok(None) => continue,
            Err(e) => break e,
        }
    };
    assert!(err.to_string().contains("fenced mid-stream"), "got: {err}");
    fake.join().unwrap();
}
