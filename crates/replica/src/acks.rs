//! Follower coverage tracking for synchronous ack mode.
//!
//! Every shipping session registers itself with the node-wide
//! [`AckTracker`] and feeds it the follower's
//! [`Covered`](fenestra_wire::repl::ReplFrame::Covered) claims — "this
//! shard is applied **and fsynced** on my disk through byte `offset` of
//! segment `gen`". The server's sync-ack gate then asks the inverse
//! question: *how many currently-connected followers durably hold shard
//! S at least through `(gen, offset)`?* A held durable ack under
//! `--sync-replicas N` is released only when that count reaches N for
//! every shard the frame touched.
//!
//! Positions compare generation-first: a follower past the target's
//! generation holds everything the target's segment ever contained
//! (rotation only commits once the covering snapshot lands), so
//! `(gen', _)` with `gen' > gen` covers `(gen, offset)` for any offset.
//!
//! Sessions are ephemeral on purpose. A disconnected follower's
//! coverage vanishes with its session — the gate must not count bytes
//! on a node that may never come back — and a session that resumes
//! (same epoch, positions validated against the on-disk segments)
//! seeds its coverage from the resume positions, because those bytes
//! are already fsynced on the follower's disk from the previous
//! session.

use fenestra_wire::repl::ShardPosition;
use std::collections::HashMap;
use std::sync::Mutex;

/// Node-wide registry of per-follower durable coverage, shared between
/// the shipping sessions (writers) and the server's sync-ack gate
/// (reader). Plain mutex-guarded maps: updates are a few dozen bytes
/// per shipped batch, reads a handful per gate poll.
#[derive(Default)]
pub struct AckTracker {
    inner: Mutex<Inner>,
    /// Called after every coverage advance (see [`AckTracker::record`]).
    notify: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for AckTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AckTracker")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct Inner {
    next_session: u64,
    /// session id → (shard → covered (gen, offset)).
    sessions: HashMap<u64, HashMap<u32, (u64, u64)>>,
}

impl AckTracker {
    /// A fresh tracker with no sessions.
    pub fn new() -> AckTracker {
        AckTracker::default()
    }

    /// Register a shipping session. `initial` carries the follower's
    /// validated resume positions (shards the leader accepted as
    /// already held, byte for byte, on the follower's disk) — they
    /// count as covered from the first instant; bootstrapped shards
    /// start uncovered until the follower acks the snapshot.
    pub fn begin_session(&self, initial: &[ShardPosition]) -> u64 {
        let mut inner = self.inner.lock().expect("ack tracker poisoned");
        inner.next_session += 1;
        let id = inner.next_session;
        let covered = initial
            .iter()
            .map(|p| (p.shard, (p.gen, p.offset)))
            .collect();
        inner.sessions.insert(id, covered);
        id
    }

    /// Record a follower's covered-position claim. Positions only move
    /// forward (a stale or reordered claim is ignored); claims for an
    /// ended session are dropped. When the claim advances coverage, the
    /// hook installed via [`AckTracker::set_notify`] fires so the sync
    /// gate re-checks its held acks immediately instead of on its next
    /// timeout tick.
    pub fn record(&self, session: u64, pos: ShardPosition) {
        let advanced = {
            let mut inner = self.inner.lock().expect("ack tracker poisoned");
            match inner.sessions.get_mut(&session) {
                Some(covered) => {
                    let entry = covered.entry(pos.shard).or_insert((0, 0));
                    if (pos.gen, pos.offset) > *entry {
                        *entry = (pos.gen, pos.offset);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            }
        };
        if advanced {
            if let Some(f) = self.notify.lock().expect("notify poisoned").as_ref() {
                f();
            }
        }
    }

    /// Install the coverage-advance hook (at most one; later calls
    /// replace it). The tracker calls it *outside* its coverage lock,
    /// after any claim that moved a position forward.
    pub fn set_notify(&self, f: impl Fn() + Send + Sync + 'static) {
        *self.notify.lock().expect("notify poisoned") = Some(Box::new(f));
    }

    /// Drop a session's coverage (the follower disconnected).
    pub fn end_session(&self, session: u64) {
        let mut inner = self.inner.lock().expect("ack tracker poisoned");
        inner.sessions.remove(&session);
    }

    /// How many live sessions durably cover shard `shard` through byte
    /// `offset` of segment `gen`.
    pub fn covering(&self, shard: u32, gen: u64, offset: u64) -> u32 {
        let inner = self.inner.lock().expect("ack tracker poisoned");
        inner
            .sessions
            .values()
            .filter(|covered| {
                covered
                    .get(&shard)
                    .is_some_and(|&(g, o)| g > gen || (g == gen && o >= offset))
            })
            .count() as u32
    }

    /// Live session count (diagnostics).
    pub fn sessions(&self) -> usize {
        self.inner
            .lock()
            .expect("ack tracker poisoned")
            .sessions
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(shard: u32, gen: u64, offset: u64) -> ShardPosition {
        ShardPosition { shard, gen, offset }
    }

    #[test]
    fn coverage_counts_generation_first_and_dies_with_the_session() {
        let t = AckTracker::new();
        assert_eq!(t.covering(0, 1, 0), 0, "no sessions, no coverage");

        let a = t.begin_session(&[]);
        assert_eq!(t.covering(0, 1, 0), 0, "bootstrap starts uncovered");
        t.record(a, pos(0, 1, 100));
        assert_eq!(t.covering(0, 1, 100), 1);
        assert_eq!(t.covering(0, 1, 101), 0, "one byte past the claim");
        assert_eq!(t.covering(0, 0, 999_999), 1, "earlier gen always covered");
        assert_eq!(t.covering(1, 1, 0), 0, "other shard untouched");

        // Stale claims do not move the position backwards.
        t.record(a, pos(0, 1, 50));
        assert_eq!(t.covering(0, 1, 100), 1);

        // A later generation covers every offset of earlier ones.
        t.record(a, pos(0, 2, 0));
        assert_eq!(t.covering(0, 1, u64::MAX), 1);

        let b = t.begin_session(&[pos(0, 2, 10)]);
        assert_eq!(t.covering(0, 2, 0), 2, "resume positions seed coverage");
        assert_eq!(t.sessions(), 2);

        t.end_session(a);
        assert_eq!(t.covering(0, 2, 0), 1, "coverage dies with the session");
        t.record(a, pos(0, 9, 9));
        assert_eq!(t.covering(0, 9, 9), 0, "ended sessions drop claims");
        t.end_session(b);
        assert_eq!(t.sessions(), 0);
    }

    #[test]
    fn notify_fires_only_on_coverage_advance() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let t = AckTracker::new();
        let fired = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&fired);
        t.set_notify(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let s = t.begin_session(&[]);
        t.record(s, pos(0, 1, 100));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "advance notifies");
        t.record(s, pos(0, 1, 50));
        assert_eq!(fired.load(Ordering::Relaxed), 1, "stale claim is silent");
        t.record(s, pos(0, 2, 0));
        assert_eq!(fired.load(Ordering::Relaxed), 2, "gen bump notifies");
        t.record(99, pos(0, 9, 9));
        assert_eq!(
            fired.load(Ordering::Relaxed),
            2,
            "unknown session is silent"
        );
    }
}
