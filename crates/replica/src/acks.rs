//! Follower coverage tracking for synchronous ack mode.
//!
//! Every shipping session registers itself with the node-wide
//! [`AckTracker`] and feeds it the follower's
//! [`Covered`](fenestra_wire::repl::ReplFrame::Covered) claims — "this
//! shard is applied **and fsynced** on my disk through byte `offset` of
//! segment `gen`". The server's sync-ack gate then asks the inverse
//! question: *how many currently-connected followers durably hold shard
//! S at least through `(gen, offset)`?* A held durable ack under
//! `--sync-replicas N` is released only when that count reaches N for
//! every shard the frame touched.
//!
//! Positions compare generation-first: a follower past the target's
//! generation holds everything the target's segment ever contained
//! (rotation only commits once the covering snapshot lands), so
//! `(gen', _)` with `gen' > gen` covers `(gen, offset)` for any offset.
//!
//! Sessions are ephemeral on purpose. A disconnected follower's
//! coverage vanishes with its session — the gate must not count bytes
//! on a node that may never come back — and a session that resumes
//! (same epoch, positions validated against the on-disk segments)
//! seeds its coverage from the resume positions, because those bytes
//! are already fsynced on the follower's disk from the previous
//! session.

use fenestra_wire::repl::ShardPosition;
use std::collections::HashMap;
use std::sync::Mutex;

/// Node-wide registry of per-follower durable coverage, shared between
/// the shipping sessions (writers) and the server's sync-ack gate
/// (reader). Plain mutex-guarded maps: updates are a few dozen bytes
/// per shipped batch, reads a handful per gate poll.
#[derive(Debug, Default)]
pub struct AckTracker {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    next_session: u64,
    /// session id → (shard → covered (gen, offset)).
    sessions: HashMap<u64, HashMap<u32, (u64, u64)>>,
}

impl AckTracker {
    /// A fresh tracker with no sessions.
    pub fn new() -> AckTracker {
        AckTracker::default()
    }

    /// Register a shipping session. `initial` carries the follower's
    /// validated resume positions (shards the leader accepted as
    /// already held, byte for byte, on the follower's disk) — they
    /// count as covered from the first instant; bootstrapped shards
    /// start uncovered until the follower acks the snapshot.
    pub fn begin_session(&self, initial: &[ShardPosition]) -> u64 {
        let mut inner = self.inner.lock().expect("ack tracker poisoned");
        inner.next_session += 1;
        let id = inner.next_session;
        let covered = initial
            .iter()
            .map(|p| (p.shard, (p.gen, p.offset)))
            .collect();
        inner.sessions.insert(id, covered);
        id
    }

    /// Record a follower's covered-position claim. Positions only move
    /// forward (a stale or reordered claim is ignored); claims for an
    /// ended session are dropped.
    pub fn record(&self, session: u64, pos: ShardPosition) {
        let mut inner = self.inner.lock().expect("ack tracker poisoned");
        if let Some(covered) = inner.sessions.get_mut(&session) {
            let entry = covered.entry(pos.shard).or_insert((0, 0));
            if (pos.gen, pos.offset) > *entry {
                *entry = (pos.gen, pos.offset);
            }
        }
    }

    /// Drop a session's coverage (the follower disconnected).
    pub fn end_session(&self, session: u64) {
        let mut inner = self.inner.lock().expect("ack tracker poisoned");
        inner.sessions.remove(&session);
    }

    /// How many live sessions durably cover shard `shard` through byte
    /// `offset` of segment `gen`.
    pub fn covering(&self, shard: u32, gen: u64, offset: u64) -> u32 {
        let inner = self.inner.lock().expect("ack tracker poisoned");
        inner
            .sessions
            .values()
            .filter(|covered| {
                covered
                    .get(&shard)
                    .is_some_and(|&(g, o)| g > gen || (g == gen && o >= offset))
            })
            .count() as u32
    }

    /// Live session count (diagnostics).
    pub fn sessions(&self) -> usize {
        self.inner
            .lock()
            .expect("ack tracker poisoned")
            .sessions
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(shard: u32, gen: u64, offset: u64) -> ShardPosition {
        ShardPosition { shard, gen, offset }
    }

    #[test]
    fn coverage_counts_generation_first_and_dies_with_the_session() {
        let t = AckTracker::new();
        assert_eq!(t.covering(0, 1, 0), 0, "no sessions, no coverage");

        let a = t.begin_session(&[]);
        assert_eq!(t.covering(0, 1, 0), 0, "bootstrap starts uncovered");
        t.record(a, pos(0, 1, 100));
        assert_eq!(t.covering(0, 1, 100), 1);
        assert_eq!(t.covering(0, 1, 101), 0, "one byte past the claim");
        assert_eq!(t.covering(0, 0, 999_999), 1, "earlier gen always covered");
        assert_eq!(t.covering(1, 1, 0), 0, "other shard untouched");

        // Stale claims do not move the position backwards.
        t.record(a, pos(0, 1, 50));
        assert_eq!(t.covering(0, 1, 100), 1);

        // A later generation covers every offset of earlier ones.
        t.record(a, pos(0, 2, 0));
        assert_eq!(t.covering(0, 1, u64::MAX), 1);

        let b = t.begin_session(&[pos(0, 2, 10)]);
        assert_eq!(t.covering(0, 2, 0), 2, "resume positions seed coverage");
        assert_eq!(t.sessions(), 2);

        t.end_session(a);
        assert_eq!(t.covering(0, 2, 0), 1, "coverage dies with the session");
        t.record(a, pos(0, 9, 9));
        assert_eq!(t.covering(0, 9, 9), 0, "ended sessions drop claims");
        t.end_session(b);
        assert_eq!(t.sessions(), 0);
    }
}
