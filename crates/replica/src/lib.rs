//! # fenestra-replica — WAL shipping to warm followers
//!
//! The replication subsystem: a leader streams its committed per-shard
//! WAL segments (and bootstrap snapshots) to followers over the
//! [`fenestra_wire::repl`] frame protocol; followers mirror the
//! leader's on-disk layout byte for byte, serve reads, and can be
//! promoted behind a fencing epoch when the leader dies.
//!
//! Three pieces, glued together by `fenestrad`:
//!
//! * [`leader`] — one [`serve_follower`] session per connected
//!   follower. It tails the segment *files* (not the shard threads), so
//!   shipping never blocks ingest: an open file handle keeps serving
//!   residual bytes even after rotation unlinks the segment, partial
//!   frames fail CRC and are simply re-read, and rotation is detected
//!   from the snapshot header's `wal_gen` advancing — the same commit
//!   point recovery trusts.
//! * [`follower`] — [`FollowerClient`], the connection half of follower
//!   mode: handshake with resume positions, epoch checks on every data
//!   frame, and an [`AckSender`] for applied-and-durable positions.
//! * [`epoch`] — the fencing epoch's sidecar file
//!   (`<wal_base>.epoch`). Promotion bumps the epoch and persists it
//!   *before* the promoted node accepts writes; a demoted ex-leader's
//!   frames then fail the epoch check on both ends.
//! * [`acks`] — [`AckTracker`], the per-session registry of follower
//!   durable coverage that synchronous ack mode (`--sync-replicas N`)
//!   votes against.
//!
//! The crate is deliberately server-agnostic: it sees paths, sockets,
//! and observability handles, never the engine. `fenestrad` owns the
//! apply side (feeding shipped frames through its shard loops) and the
//! promotion state machine.

#![warn(missing_docs)]

pub mod acks;
pub mod epoch;
pub mod follower;
pub mod leader;

pub use acks::AckTracker;
pub use epoch::{epoch_path, load_epoch, read_epoch, store_epoch};
pub use follower::{AckSender, FollowerClient};
pub use leader::{serve_follower, LeaderConfig, ReplPaths};

/// Leader heartbeat cadence, in milliseconds. Shared so the follower's
/// dead-session deadline ([`DEAD_SESSION_HEARTBEATS`]) is keyed off the
/// interval the leader actually ships at.
pub const HEARTBEAT_MS: u64 = 500;

/// A follower tears a session down after this many silent heartbeat
/// intervals: a live leader sends *something* (data or heartbeat) every
/// [`HEARTBEAT_MS`], so this much silence means the connection is dead
/// — often half-open TCP after the leader's machine vanished — and the
/// follower must reconnect rather than block forever.
pub const DEAD_SESSION_HEARTBEATS: u64 = 6;

/// Wall-clock microseconds since the Unix epoch — the timestamp shipped
/// in `Frames.sent_at_us` and echoed back in acks. Leader and follower
/// clocks both feed the same-machine lag histograms in the bench
/// harness; across real machines the skew is the operator's to bound.
pub fn now_us() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}
