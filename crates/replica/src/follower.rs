//! Follower-side connection: handshake, epoch-checked frame stream,
//! and the ack channel.
//!
//! [`FollowerClient`] owns only the socket and the session epoch; the
//! server's follower loop owns everything stateful (applying frames
//! through its shard threads, persisting epochs, deciding when to
//! promote). The client enforces the fencing protocol at the
//! connection boundary: a handshake with a stale leader fails loudly,
//! and every data frame's epoch must match the session's — a mismatch
//! mid-stream means leadership moved while we were connected, and the
//! only safe reaction is to tear down and re-handshake.

use crate::now_us;
use fenestra_base::error::{Error, Result};
use fenestra_wire::repl::{ReplFrame, ShardPosition, MAX_FRAME};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// The write half of a follower connection, cloned off so the apply
/// loop can send acks without blocking the frame reader.
#[derive(Debug)]
pub struct AckSender {
    stream: TcpStream,
}

impl AckSender {
    /// Report `position` as applied *and durable* locally, echoing the
    /// `sent_at_us` of the batch it covers (0 for snapshot acks).
    pub fn send(&mut self, position: ShardPosition, echo_us: u64) -> Result<()> {
        ReplFrame::Ack { position, echo_us }.write_to(&mut self.stream)?;
        self.stream.flush().map_err(Error::from)
    }

    /// Claim `position` as applied *and fsynced* on local disk — the
    /// coverage claim the leader's synchronous ack mode
    /// (`--sync-replicas N`) votes against. Only send this when the
    /// local fsync policy actually made the applied bytes durable.
    pub fn send_covered(&mut self, position: ShardPosition, echo_us: u64) -> Result<()> {
        ReplFrame::Covered { position, echo_us }.write_to(&mut self.stream)?;
        self.stream.flush().map_err(Error::from)
    }
}

/// A live replication session with a leader, post-handshake.
#[derive(Debug)]
pub struct FollowerClient {
    stream: TcpStream,
    /// The session epoch — the leader's, which the handshake guarantees
    /// is ≥ ours. The server adopts and persists it when higher.
    pub epoch: u64,
    /// The leader's shard count (validated equal to ours).
    pub shards: u32,
}

impl FollowerClient {
    /// Connect and handshake. `resume` carries our per-shard positions
    /// (empty forces a bootstrap); `my_epoch` is our persisted fencing
    /// epoch. `tick` bounds how long [`recv`](Self::recv) blocks before
    /// returning `Ok(None)` so the caller can check liveness deadlines
    /// and stop flags.
    pub fn connect(
        addr: &str,
        my_epoch: u64,
        shards: u32,
        resume: Vec<ShardPosition>,
        tick: Duration,
    ) -> Result<FollowerClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        ReplFrame::Hello {
            epoch: my_epoch,
            shards,
            resume,
        }
        .write_to(&mut &stream)?;
        let reply = ReplFrame::read_from(&mut &stream)?;
        let client = match reply {
            Some(ReplFrame::Welcome {
                epoch,
                shards: leader_shards,
            }) => {
                if leader_shards != shards {
                    return Err(Error::Invalid(format!(
                        "leader runs {leader_shards} shards, we run {shards}"
                    )));
                }
                if epoch < my_epoch {
                    // The leader should have fenced us; refuse from our
                    // side too rather than follow a stale epoch.
                    return Err(Error::Invalid(format!(
                        "leader epoch {epoch} is below ours ({my_epoch}): stale leader"
                    )));
                }
                FollowerClient {
                    stream,
                    epoch,
                    shards,
                }
            }
            Some(ReplFrame::Fenced { epoch }) => {
                return Err(Error::Invalid(format!(
                    "fenced: leader at epoch {epoch} refuses us at epoch {my_epoch} \
                     (it believes itself superseded)"
                )))
            }
            Some(other) => return Err(Error::Invalid(format!("expected Welcome, got {other:?}"))),
            None => {
                return Err(Error::Io(
                    "leader closed during handshake (shard-count mismatch?)".into(),
                ))
            }
        };
        client.stream.set_read_timeout(Some(tick))?;
        Ok(client)
    }

    /// Clone the write half for acks.
    pub fn ack_sender(&self) -> Result<AckSender> {
        Ok(AckSender {
            stream: self.stream.try_clone()?,
        })
    }

    /// Receive the next frame. `Ok(None)` is a quiet tick (nothing
    /// arrived within the configured timeout — check deadlines and call
    /// again); errors mean the session is dead (leader closed, I/O
    /// failure, or a fencing violation) and the caller should tear down
    /// and reconnect.
    pub fn recv(&mut self) -> Result<Option<ReplFrame>> {
        // First byte separately: a timeout here consumed nothing, so
        // frame alignment is intact and we can report a quiet tick. A
        // timeout *inside* a frame is a real error (the leader stalled
        // mid-write or died) and tears the session down.
        let mut first = [0u8; 1];
        loop {
            match (&self.stream).read(&mut first) {
                Ok(0) => {
                    return Err(Error::Io("leader closed the replication stream".into()));
                }
                Ok(_) => break,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(None);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(Error::from(e)),
            }
        }
        let mut rest = [0u8; 3];
        (&self.stream)
            .read_exact(&mut rest)
            .map_err(|e| Error::Io(format!("mid-frame: {e}")))?;
        let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]);
        if len == 0 || len > MAX_FRAME {
            return Err(Error::Corrupt(format!(
                "replication frame length {len} out of range"
            )));
        }
        let mut framed = vec![0u8; 4 + len as usize];
        framed[..4].copy_from_slice(&len.to_be_bytes());
        (&self.stream)
            .read_exact(&mut framed[4..])
            .map_err(|e| Error::Io(format!("mid-frame: {e}")))?;
        // The buffer holds exactly one length-prefixed frame, so a
        // `None` here would mean the codec saw EOF where bytes exist —
        // degrade to a corrupt-session error (tear down, reconnect,
        // possibly re-bootstrap) rather than panicking the follower.
        let frame = match ReplFrame::read_from(&mut &framed[..])? {
            Some(frame) => frame,
            None => {
                return Err(Error::Corrupt(
                    "replication frame bytes did not decode to a frame".into(),
                ))
            }
        };
        if let Some(frame_epoch) = data_frame_epoch(&frame) {
            if frame_epoch != self.epoch {
                return Err(Error::Invalid(format!(
                    "fenced mid-stream: frame epoch {frame_epoch} ≠ session epoch {}",
                    self.epoch
                )));
            }
        }
        if let ReplFrame::Fenced { epoch } = frame {
            return Err(Error::Invalid(format!(
                "fenced mid-stream by epoch {epoch}"
            )));
        }
        Ok(Some(frame))
    }

    /// Tear the connection down (unblocks any concurrent reader).
    pub fn shutdown(&self) {
        self.stream.shutdown(Shutdown::Both).ok();
    }
}

/// The epoch a leader→follower data frame carries, if it is one.
fn data_frame_epoch(frame: &ReplFrame) -> Option<u64> {
    match frame {
        ReplFrame::Snapshot { epoch, .. }
        | ReplFrame::Frames { epoch, .. }
        | ReplFrame::Rotate { epoch, .. }
        | ReplFrame::Heartbeat { epoch, .. } => Some(*epoch),
        _ => None,
    }
}

/// Convenience for lag math: micros elapsed since a shipped
/// `sent_at_us`, clamped at zero against clock skew.
pub fn lag_since_us(sent_at_us: u64) -> u64 {
    now_us().saturating_sub(sent_at_us)
}
