//! Leader-side shipping: one [`serve_follower`] session per connected
//! follower.
//!
//! The shipper is a *file tailer*, deliberately decoupled from the
//! shard threads: it opens the same segment files the shard loops
//! append to and streams whatever complete CRC-framed bytes it finds.
//! That costs a poll interval of latency but buys three properties the
//! in-line alternative can't offer:
//!
//! * ingest never blocks on a slow follower (no channel from the hot
//!   path into a socket write),
//! * a torn read (the writer mid-append) fails the CRC scan and is
//!   simply re-read next poll — [`SegmentReader`] only ever advances
//!   past complete frames,
//! * rotation needs no coordination: the open handle keeps serving the
//!   unlinked old segment's residue, and the *committed* switch is
//!   observed the same way recovery observes it — the covering
//!   snapshot's `wal_gen` advancing.
//!
//! When a follower is too far behind to catch up from files still on
//! disk (the segment it needs was rotated away), the session falls back
//! to shipping the current snapshot wholesale and resumes framing from
//! the generation it covers.

use crate::acks::AckTracker;
use crate::now_us;
use fenestra_base::error::{Error, Result};
use fenestra_obs::ReplObs;
use fenestra_temporal::persist;
use fenestra_temporal::wal_file::{
    list_segment_gens, segment_path, shard_segment_path, shard_snapshot_path, SegmentReader,
};
use fenestra_wire::repl::{ReplFrame, ShardPosition};
use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bytes of segment tail shipped per `Frames` message — small enough
/// for per-batch lag measurements, large enough to drain a backlog in
/// few round trips.
const SHIP_CHUNK: usize = 256 * 1024;

/// How the leader's state files are named: mirrors the server's layout
/// rule (one shard ⇒ legacy flat names, N shards ⇒ shard-addressed
/// names), so followers reproduce the leader's directory byte for byte.
#[derive(Debug, Clone)]
pub struct ReplPaths {
    /// WAL segment base path (the server's `--wal`).
    pub wal_base: PathBuf,
    /// Snapshot path (the server's `--snapshot`), when durable
    /// checkpoints are configured.
    pub snapshot: Option<PathBuf>,
    /// Shard count.
    pub shards: u32,
}

impl ReplPaths {
    fn legacy(&self) -> bool {
        self.shards == 1
    }

    /// The segment file for `(shard, gen)`.
    pub fn segment(&self, shard: u32, gen: u64) -> PathBuf {
        if self.legacy() {
            segment_path(&self.wal_base, gen)
        } else {
            shard_segment_path(&self.wal_base, shard, gen)
        }
    }

    /// The snapshot file for `shard`, if snapshots are configured.
    pub fn snapshot(&self, shard: u32) -> Option<PathBuf> {
        self.snapshot.as_ref().map(|p| {
            if self.legacy() {
                p.clone()
            } else {
                shard_snapshot_path(p, shard)
            }
        })
    }

    /// Segment generations on disk for `shard`, ascending.
    pub fn gens(&self, shard: u32) -> Vec<u64> {
        let shard = if self.legacy() { None } else { Some(shard) };
        list_segment_gens(&self.wal_base, shard)
    }
}

/// Everything a shipping session needs from the server.
#[derive(Clone)]
pub struct LeaderConfig {
    /// File layout of the state directory being shipped.
    pub paths: ReplPaths,
    /// The node's live fencing epoch. Sessions capture it at handshake
    /// and terminate if it moves (the follower reconnects and
    /// re-handshakes at the new epoch).
    pub epoch: Arc<AtomicU64>,
    /// Replication counters (`followers`, `ship_*`, `ack_lag_us`, …).
    pub obs: Arc<ReplObs>,
    /// Per-session follower durable coverage, fed by `Covered` frames;
    /// the server's sync-ack gate reads it. Always wired up — it costs
    /// a map insert per session when no one reads it.
    pub acks: Arc<AckTracker>,
    /// Server shutdown flag; sessions exit promptly when set.
    pub shutdown: Arc<AtomicBool>,
    /// Segment poll interval while idle.
    pub poll: Duration,
    /// Heartbeat cadence (liveness + the follower's lag reference).
    pub heartbeat: Duration,
}

/// One shard's shipping cursor.
struct ShardShip {
    shard: u32,
    gen: u64,
    offset: u64,
    reader: Option<SegmentReader>,
    /// `(mtime, len)` of the snapshot when last parsed — gates
    /// re-parsing, not the rotation decision itself.
    snap_stamp: Option<(Option<std::time::SystemTime>, u64)>,
    /// `wal_gen` from the last parsed snapshot header.
    snap_gen: u64,
}

/// Run one follower session to completion. Returns when the follower
/// disconnects, the server shuts down, the epoch moves, or I/O fails;
/// the error (if any) is the reason, for the server's log line.
pub fn serve_follower(stream: TcpStream, cfg: LeaderConfig) -> Result<()> {
    stream.set_nodelay(true).ok();

    // Handshake, bounded so a silent client can't pin the thread.
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let hello = match ReplFrame::read_from(&mut &stream)? {
        Some(f) => f,
        None => return Err(Error::Io("follower closed before Hello".into())),
    };
    let ReplFrame::Hello {
        epoch: hello_epoch,
        shards: hello_shards,
        resume,
    } = hello
    else {
        return Err(Error::Invalid(format!("expected Hello, got {hello:?}")));
    };
    let epoch = cfg.epoch.load(Ordering::SeqCst);
    let mut writer = BufWriter::new(stream.try_clone()?);
    if hello_epoch > epoch {
        ReplFrame::Fenced { epoch }.write_to(&mut writer)?;
        writer.flush()?;
        cfg.obs.fenced.fetch_add(1, Ordering::Relaxed);
        return Err(Error::Invalid(format!(
            "fenced: follower is at epoch {hello_epoch}, we are a stale leader at {epoch}"
        )));
    }
    if hello_shards != cfg.paths.shards {
        // No refusal frame in the protocol: drop the connection; the
        // follower logs "leader closed during handshake".
        return Err(Error::Invalid(format!(
            "follower runs {hello_shards} shards, leader runs {}; refusing to ship",
            cfg.paths.shards
        )));
    }
    ReplFrame::Welcome {
        epoch,
        shards: cfg.paths.shards,
    }
    .write_to(&mut writer)?;

    // Per-shard start positions: resume where the follower already
    // holds our bytes (same epoch and the segment is still on disk),
    // bootstrap from a snapshot otherwise.
    let resume: HashMap<u32, ShardPosition> = if hello_epoch == epoch {
        resume.into_iter().map(|p| (p.shard, p)).collect()
    } else {
        HashMap::new()
    };
    let mut ships = Vec::with_capacity(cfg.paths.shards as usize);
    let mut resumed = Vec::new();
    for shard in 0..cfg.paths.shards {
        let ship = match resume.get(&shard) {
            Some(p) if segment_len(&cfg, shard, p.gen).is_some_and(|len| len >= p.offset) => {
                // The follower durably holds our bytes through this
                // position from its previous session — it counts as
                // covered before a single new frame ships.
                resumed.push(*p);
                ShardShip {
                    shard,
                    gen: p.gen,
                    offset: p.offset,
                    reader: None,
                    snap_stamp: None,
                    snap_gen: 0,
                }
            }
            _ => bootstrap(&cfg, shard, epoch, &mut writer)?,
        };
        ships.push(ship);
    }
    writer.flush()?;

    cfg.obs.followers.fetch_add(1, Ordering::Relaxed);
    let _count = Decrement(&cfg.obs.followers);
    let session = cfg.acks.begin_session(&resumed);
    let _session = EndSession(&cfg.acks, session);

    // Acks arrive asynchronously; a dedicated reader feeds the lag
    // histogram and the coverage tracker, and flags disconnection. No
    // read timeout: the writer half shuts the socket down on exit,
    // which unblocks the read.
    stream.set_read_timeout(None)?;
    let conn_done = Arc::new(AtomicBool::new(false));
    let acker = {
        let stream = stream.try_clone()?;
        let done = Arc::clone(&conn_done);
        let obs = Arc::clone(&cfg.obs);
        let acks = Arc::clone(&cfg.acks);
        std::thread::spawn(move || {
            read_acks(stream, &obs, &acks, session);
            done.store(true, Ordering::SeqCst);
        })
    };

    let result = ship_loop(&cfg, epoch, &mut ships, &mut writer, &conn_done);
    stream.shutdown(Shutdown::Both).ok();
    acker.join().ok();
    result
}

/// Decrement an atomic counter on drop (follower-count bookkeeping
/// survives every exit path).
struct Decrement<'a>(&'a AtomicU64);

impl Drop for Decrement<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// End a coverage session on drop: a disconnected follower must stop
/// counting toward `--sync-replicas N` on every exit path.
struct EndSession<'a>(&'a AckTracker, u64);

impl Drop for EndSession<'_> {
    fn drop(&mut self) {
        self.0.end_session(self.1);
    }
}

fn segment_len(cfg: &LeaderConfig, shard: u32, gen: u64) -> Option<u64> {
    std::fs::metadata(cfg.paths.segment(shard, gen))
        .ok()
        .map(|m| m.len())
}

/// Ship a wholesale bootstrap for one shard: the current snapshot when
/// one exists (the follower replaces its shard state and mirrors the
/// file), an empty snapshot otherwise (the follower starts the shard
/// empty at the oldest on-disk generation).
fn bootstrap(
    cfg: &LeaderConfig,
    shard: u32,
    epoch: u64,
    writer: &mut impl Write,
) -> Result<ShardShip> {
    let snap = cfg.paths.snapshot(shard).filter(|p| p.exists());
    let (gen, bytes) = match snap {
        Some(path) => {
            let bytes = std::fs::read(&path)?;
            let text = std::str::from_utf8(&bytes)
                .map_err(|_| Error::Corrupt("snapshot is not UTF-8".into()))?;
            let meta = persist::meta_from_json(text)?;
            (meta.wal_gen, bytes)
        }
        None => (
            cfg.paths.gens(shard).first().copied().unwrap_or(0),
            Vec::new(),
        ),
    };
    ReplFrame::Snapshot {
        shard,
        gen,
        epoch,
        bytes,
    }
    .write_to(writer)?;
    cfg.obs.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
    Ok(ShardShip {
        shard,
        gen,
        offset: 0,
        reader: None,
        snap_stamp: None,
        snap_gen: 0,
    })
}

fn read_acks(mut stream: TcpStream, obs: &ReplObs, acks: &AckTracker, session: u64) {
    while let Ok(Some(frame)) = ReplFrame::read_from(&mut stream) {
        match frame {
            ReplFrame::Ack { echo_us, .. } => {
                let now = now_us();
                if echo_us > 0 && now >= echo_us {
                    obs.ack_lag_us.record(now - echo_us);
                }
            }
            ReplFrame::Covered { position, .. } => acks.record(session, position),
            _ => {}
        }
    }
}

fn ship_loop(
    cfg: &LeaderConfig,
    epoch: u64,
    ships: &mut [ShardShip],
    writer: &mut BufWriter<TcpStream>,
    conn_done: &AtomicBool,
) -> Result<()> {
    let mut last_heartbeat = Instant::now();
    loop {
        if cfg.shutdown.load(Ordering::SeqCst) || conn_done.load(Ordering::SeqCst) {
            return Ok(());
        }
        if cfg.epoch.load(Ordering::SeqCst) != epoch {
            return Err(Error::Invalid(
                "epoch moved mid-session; follower must re-handshake".into(),
            ));
        }
        let mut sent = false;
        for ship in ships.iter_mut() {
            sent |= pump(cfg, epoch, ship, writer)?;
        }
        if last_heartbeat.elapsed() >= cfg.heartbeat {
            last_heartbeat = Instant::now();
            let positions = ships
                .iter()
                .map(|s| ShardPosition {
                    shard: s.shard,
                    gen: s.gen,
                    offset: segment_len(cfg, s.shard, s.gen).unwrap_or(s.offset),
                })
                .collect();
            ReplFrame::Heartbeat { epoch, positions }.write_to(writer)?;
            sent = true;
        }
        if sent {
            writer.flush()?;
        } else {
            std::thread::sleep(cfg.poll);
        }
    }
}

/// Advance one shard's cursor: ship new frames if the segment grew,
/// otherwise look for a committed rotation (or, when the follower's
/// segment was rotated out from under the session, re-bootstrap).
/// Returns whether anything was written.
fn pump(
    cfg: &LeaderConfig,
    epoch: u64,
    ship: &mut ShardShip,
    writer: &mut impl Write,
) -> Result<bool> {
    if ship.reader.is_none() {
        // The segment may briefly not exist (rotated away before we
        // caught up); that case falls through to the rotation check.
        if let Ok(r) = SegmentReader::open(&cfg.paths.segment(ship.shard, ship.gen), ship.offset) {
            ship.reader = Some(r);
        }
    }
    if ship_growth(cfg, epoch, ship, writer)? {
        return Ok(true);
    }

    // Segment idle. Rotation commits when the covering snapshot's
    // wal_gen advances past our gen — the new segment file existing is
    // NOT the commit point (it is created before the snapshot lands).
    let Some(snap) = cfg.paths.snapshot(ship.shard) else {
        return Ok(false);
    };
    let stamp = std::fs::metadata(&snap)
        .ok()
        .map(|m| (m.modified().ok(), m.len()));
    if stamp != ship.snap_stamp {
        ship.snap_stamp = stamp;
        if let Ok(meta) = persist::peek_meta(&snap) {
            ship.snap_gen = meta.wal_gen;
        }
    }
    if ship.snap_gen <= ship.gen {
        return Ok(false);
    }
    // Rotation committed past us: the writer has closed the old
    // segment for good, so one more empty read through the (possibly
    // unlinked) open handle proves the follower has every byte of it.
    if ship.reader.is_none() {
        // Never opened it and the file is gone — its tail is
        // unreachable, so resync wholesale.
        *ship = bootstrap(cfg, ship.shard, epoch, writer)?;
        return Ok(true);
    }
    if ship_growth(cfg, epoch, ship, writer)? {
        return Ok(true);
    }
    if ship.snap_gen == ship.gen + 1 || cfg.paths.segment(ship.shard, ship.gen + 1).exists() {
        ship.gen += 1;
        ship.offset = 0;
        ship.reader = None;
        ship.snap_stamp = None;
        ReplFrame::Rotate {
            shard: ship.shard,
            new_gen: ship.gen,
            epoch,
        }
        .write_to(writer)?;
        Ok(true)
    } else {
        // The generations between us and the snapshot are gone —
        // re-bootstrap wholesale.
        *ship = bootstrap(cfg, ship.shard, epoch, writer)?;
        Ok(true)
    }
}

/// Ship whatever complete frames sit past the cursor; returns whether
/// any were written.
fn ship_growth(
    cfg: &LeaderConfig,
    epoch: u64,
    ship: &mut ShardShip,
    writer: &mut impl Write,
) -> Result<bool> {
    let Some(reader) = &mut ship.reader else {
        return Ok(false);
    };
    let bytes = reader.read_frames(SHIP_CHUNK)?;
    if bytes.is_empty() {
        return Ok(false);
    }
    let offset = ship.offset;
    ship.offset = reader.offset();
    cfg.obs.ship_frames.fetch_add(1, Ordering::Relaxed);
    cfg.obs
        .ship_bytes
        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
    ReplFrame::Frames {
        shard: ship.shard,
        gen: ship.gen,
        offset,
        epoch,
        sent_at_us: now_us(),
        bytes,
    }
    .write_to(writer)?;
    Ok(true)
}
