//! The fencing epoch's sidecar file.
//!
//! Promotion must survive a crash *between* bumping the epoch and the
//! next checkpoint stamping it into every shard snapshot — otherwise a
//! promoted node could reboot believing it is still a follower of the
//! dead leader's epoch. The sidecar (`<wal_base>.epoch`, a one-line
//! JSON object) is written atomically first; boot takes the max of the
//! sidecar and every recovered snapshot's stamped epoch.

use fenestra_base::error::Result;
use fenestra_temporal::persist;
use std::path::{Path, PathBuf};

/// The sidecar path for a WAL base: `<wal_base>.epoch`.
pub fn epoch_path(wal_base: &Path) -> PathBuf {
    let mut s = wal_base.as_os_str().to_os_string();
    s.push(".epoch");
    PathBuf::from(s)
}

/// Read the persisted epoch. Missing or unreadable sidecars are epoch
/// 0 — a node that has never been promoted — never an error: fencing
/// only needs the *promoted* side's bump to be durable, and
/// [`store_epoch`] writes atomically.
pub fn load_epoch(wal_base: &Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(epoch_path(wal_base)) else {
        return 0;
    };
    serde_json::from_str(&text)
        .ok()
        .and_then(|v| v.get("epoch").and_then(|e| e.as_u64()))
        .unwrap_or(0)
}

/// Persist the epoch (atomic write-then-rename, fsynced).
pub fn store_epoch(wal_base: &Path, epoch: u64) -> Result<()> {
    let bytes = format!("{{\"epoch\":{epoch}}}\n");
    persist::write_atomic(&epoch_path(wal_base), bytes.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_sidecar_round_trips_and_defaults_to_zero() {
        let dir = std::env::temp_dir().join(format!("fenestra-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("log");
        assert_eq!(load_epoch(&base), 0, "missing sidecar is epoch 0");
        store_epoch(&base, 3).unwrap();
        assert_eq!(load_epoch(&base), 3);
        store_epoch(&base, 7).unwrap();
        assert_eq!(load_epoch(&base), 7);
        assert_eq!(epoch_path(&base), dir.join("log.epoch"));
        std::fs::write(epoch_path(&base), b"garbage").unwrap();
        assert_eq!(load_epoch(&base), 0, "corrupt sidecar is epoch 0");
        std::fs::remove_dir_all(&dir).ok();
    }
}
