//! The fencing epoch's sidecar file.
//!
//! Promotion must survive a crash *between* bumping the epoch and the
//! next checkpoint stamping it into every shard snapshot — otherwise a
//! promoted node could reboot believing it is still a follower of the
//! dead leader's epoch. The sidecar (`<wal_base>.epoch`, a one-line
//! JSON object) is written atomically first; boot takes the max of the
//! sidecar and every recovered snapshot's stamped epoch.
//!
//! [`store_epoch`] is deliberately stricter than the generic
//! atomic-write helper: after the rename it fsyncs the parent
//! directory and treats *any* failure as an error. A snapshot that
//! loses its rename to a power cut is merely stale; an epoch bump that
//! silently evaporates un-fences a demoted leader — the promoted node
//! would reboot at the old epoch and happily accept the ex-leader's
//! frames. Promotion therefore refuses to flip roles until the bump is
//! provably on disk.

use fenestra_base::error::{Error, Result};
use fenestra_temporal::persist;
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

/// The sidecar path for a WAL base: `<wal_base>.epoch`.
pub fn epoch_path(wal_base: &Path) -> PathBuf {
    let mut s = wal_base.as_os_str().to_os_string();
    s.push(".epoch");
    PathBuf::from(s)
}

/// Read the persisted epoch, distinguishing the three cases: a node
/// that was never promoted (`Ok(None)`), a valid sidecar
/// (`Ok(Some(epoch))`), and a sidecar that exists but cannot be read
/// or parsed (`Err` — the caller decides whether that degrades or
/// aborts).
pub fn read_epoch(wal_base: &Path) -> Result<Option<u64>> {
    let path = epoch_path(wal_base);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(Error::Io(format!("read {}: {e}", path.display()))),
    };
    let value: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| Error::Corrupt(format!("epoch sidecar {}: not JSON: {e}", path.display())))?;
    value
        .get("epoch")
        .and_then(|e| e.as_u64())
        .map(Some)
        .ok_or_else(|| {
            Error::Corrupt(format!(
                "epoch sidecar {}: no integer `epoch` field",
                path.display()
            ))
        })
}

/// Boot-time read: missing sidecars are epoch 0 (a node that was never
/// promoted), and a corrupt sidecar degrades to 0 with a warning
/// rather than refusing to boot — the recovered snapshots' stamped
/// epochs supply the real value when it is higher, and fencing only
/// needs the *promoted* side's bump to be durable.
pub fn load_epoch(wal_base: &Path) -> u64 {
    match read_epoch(wal_base) {
        Ok(Some(epoch)) => epoch,
        Ok(None) => 0,
        Err(e) => {
            eprintln!(
                "fenestra-replica: {e}; booting at epoch 0 (snapshot stamps override if higher)"
            );
            0
        }
    }
}

/// Persist the epoch durably: atomic write-then-rename (file fsynced)
/// *plus* a mandatory fsync of the parent directory, so the rename
/// itself survives power loss. Errors — including the directory fsync
/// failing — must stop a promotion: an epoch bump that is not provably
/// on disk can resurrect the old epoch on reboot and un-fence the
/// demoted leader.
pub fn store_epoch(wal_base: &Path, epoch: u64) -> Result<()> {
    let path = epoch_path(wal_base);
    let bytes = format!("{{\"epoch\":{epoch}}}\n");
    persist::write_atomic(&path, bytes.as_bytes())?;
    // write_atomic's own parent-directory sync is best-effort; redo it
    // strictly here. `.` covers a bare relative filename.
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let d = std::fs::File::open(&dir)
        .map_err(|e| Error::Io(format!("open {} for fsync: {e}", dir.display())))?;
    d.sync_all()
        .map_err(|e| Error::Io(format!("fsync {}: {e}", dir.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_sidecar_round_trips_and_defaults_to_zero() {
        let dir = std::env::temp_dir().join(format!("fenestra-epoch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("log");
        assert_eq!(load_epoch(&base), 0, "missing sidecar is epoch 0");
        assert_eq!(read_epoch(&base).unwrap(), None, "missing is None, not 0");
        store_epoch(&base, 3).unwrap();
        assert_eq!(load_epoch(&base), 3);
        assert_eq!(read_epoch(&base).unwrap(), Some(3));
        store_epoch(&base, 7).unwrap();
        assert_eq!(load_epoch(&base), 7);
        assert_eq!(epoch_path(&base), dir.join("log.epoch"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_sidecar_is_an_error_strictly_and_zero_leniently() {
        let dir = std::env::temp_dir().join(format!("fenestra-epoch-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("log");
        for garbage in [&b"garbage"[..], b"{\"epoch\":\"three\"}", b"{}"] {
            std::fs::write(epoch_path(&base), garbage).unwrap();
            assert!(read_epoch(&base).is_err(), "strict read refuses corruption");
            assert_eq!(load_epoch(&base), 0, "boot degrades corruption to 0");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
