#![warn(missing_docs)]
//! # fenestra-base
//!
//! Shared substrate for the Fenestra explicit-state stream processing
//! system (a prototype of Margara, Dell'Aglio & Bernstein, *Break the
//! Windows: Explicit State Management for Stream Processing Systems*,
//! EDBT 2017).
//!
//! This crate defines the vocabulary every other crate speaks:
//!
//! * [`time`] — logical timestamps, durations, and half-open validity
//!   intervals (`[start, end)`), the paper's "time of validity".
//! * [`value`] — the dynamically typed [`value::Value`] carried by
//!   stream records and state facts. Totally ordered and hashable
//!   (floats use IEEE total ordering) so values can key indexes.
//! * [`symbol`] — a global thread-safe string interner; attributes,
//!   stream names, and string values are interned [`symbol::Symbol`]s.
//! * [`record`] — compact field/value records and stream events.
//! * [`parse`] — shared lexer + expression parser for the DSLs.
//! * [`expr`] — a small expression language (field refs, literals,
//!   arithmetic, comparison, boolean logic, string ops) shared by
//!   stream filters, state-management rules, and the query engine.
//! * [`error`] — the common error type.

pub mod error;
pub mod expr;
pub mod parse;
pub mod record;
pub mod symbol;
pub mod time;
pub mod value;

pub use error::{Error, Result};
pub use expr::Expr;
pub use record::{Event, FieldId, Record, StreamId};
pub use symbol::Symbol;
pub use time::{Duration, Interval, Timestamp};
pub use value::Value;
