//! Stream records and events.
//!
//! A [`Record`] is a small, sorted association of interned field names
//! to [`Value`]s — the payload of a stream element. An [`Event`] is a
//! record stamped with its event time and source stream.

use crate::symbol::Symbol;
use crate::time::Timestamp;
use crate::value::Value;
use std::fmt;

/// Interned field name.
pub type FieldId = Symbol;
/// Interned stream name.
pub type StreamId = Symbol;

/// A compact record: fields kept sorted by symbol index for O(log n)
/// lookup and canonical equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Record {
    fields: Vec<(FieldId, Value)>,
}

impl Record {
    /// The empty record.
    pub fn new() -> Record {
        Record::default()
    }

    /// Build a record from `(name, value)` pairs. Later duplicates of a
    /// field name overwrite earlier ones.
    pub fn from_pairs<I, N, V>(pairs: I) -> Record
    where
        I: IntoIterator<Item = (N, V)>,
        N: Into<Symbol>,
        V: Into<Value>,
    {
        let mut r = Record::new();
        for (n, v) in pairs {
            r.set(n.into(), v.into());
        }
        r
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Set `field` to `value`, replacing any existing value.
    pub fn set(&mut self, field: impl Into<FieldId>, value: impl Into<Value>) -> &mut Self {
        let field = field.into();
        let value = value.into();
        match self.fields.binary_search_by_key(&field, |(f, _)| *f) {
            Ok(i) => self.fields[i].1 = value,
            Err(i) => self.fields.insert(i, (field, value)),
        }
        self
    }

    /// Builder-style [`Record::set`].
    pub fn with(mut self, field: impl Into<FieldId>, value: impl Into<Value>) -> Self {
        self.set(field, value);
        self
    }

    /// Look up a field. Returns `None` if absent.
    pub fn get(&self, field: impl Into<FieldId>) -> Option<&Value> {
        let field = field.into();
        self.fields
            .binary_search_by_key(&field, |(f, _)| *f)
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Look up a field, yielding [`Value::Null`] if absent.
    pub fn get_or_null(&self, field: impl Into<FieldId>) -> Value {
        self.get(field).copied().unwrap_or(Value::Null)
    }

    /// Remove a field, returning its value if present.
    pub fn remove(&mut self, field: impl Into<FieldId>) -> Option<Value> {
        let field = field.into();
        self.fields
            .binary_search_by_key(&field, |(f, _)| *f)
            .ok()
            .map(|i| self.fields.remove(i).1)
    }

    /// Iterate fields in canonical (symbol-index) order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &Value)> {
        self.fields.iter().map(|(f, v)| (*f, v))
    }

    /// Keep only the named fields (projection).
    pub fn project(&self, fields: &[FieldId]) -> Record {
        let mut out = Record::new();
        for f in fields {
            if let Some(v) = self.get(*f) {
                out.set(*f, *v);
            }
        }
        out
    }

    /// Merge `other` into `self`; `other`'s fields win on conflict.
    pub fn merge(&mut self, other: &Record) {
        for (f, v) in other.iter() {
            self.set(f, *v);
        }
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {v}")?;
        }
        write!(f, "}}")
    }
}

impl<N: Into<Symbol>, V: Into<Value>> FromIterator<(N, V)> for Record {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Self {
        Record::from_pairs(iter)
    }
}

/// A stream element: a record stamped with event time and provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event time (application time, not arrival time).
    pub ts: Timestamp,
    /// The stream this element arrived on.
    pub stream: StreamId,
    /// Payload.
    pub record: Record,
}

impl Event {
    /// Construct an event.
    pub fn new(stream: impl Into<StreamId>, ts: impl Into<Timestamp>, record: Record) -> Event {
        Event {
            ts: ts.into(),
            stream: stream.into(),
            record,
        }
    }

    /// Shorthand: build the payload from pairs.
    pub fn from_pairs<I, N, V>(
        stream: impl Into<StreamId>,
        ts: impl Into<Timestamp>,
        pairs: I,
    ) -> Event
    where
        I: IntoIterator<Item = (N, V)>,
        N: Into<Symbol>,
        V: Into<Value>,
    {
        Event::new(stream, ts, Record::from_pairs(pairs))
    }

    /// Field accessor on the payload.
    pub fn get(&self, field: impl Into<FieldId>) -> Option<&Value> {
        self.record.get(field)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{} {}", self.stream, self.ts, self.record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut r = Record::new();
        assert!(r.is_empty());
        r.set("user", "alice").set("count", 3i64);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("user"), Some(&Value::str("alice")));
        assert_eq!(r.get("count"), Some(&Value::Int(3)));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.get_or_null("missing"), Value::Null);
        assert_eq!(r.remove("user"), Some(Value::str("alice")));
        assert_eq!(r.get("user"), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn overwrite_keeps_single_entry() {
        let mut r = Record::new();
        r.set("x", 1i64);
        r.set("x", 2i64);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("x"), Some(&Value::Int(2)));
    }

    #[test]
    fn canonical_equality_ignores_insertion_order() {
        let a = Record::from_pairs([("b", 2i64), ("a", 1i64)]);
        let b = Record::from_pairs([("a", 1i64), ("b", 2i64)]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_pairs_duplicate_last_wins() {
        let r = Record::from_pairs([("k", 1i64), ("k", 9i64)]);
        assert_eq!(r.get("k"), Some(&Value::Int(9)));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn projection_and_merge() {
        let r = Record::from_pairs([("a", 1i64), ("b", 2i64), ("c", 3i64)]);
        let p = r.project(&[
            Symbol::intern("a"),
            Symbol::intern("c"),
            Symbol::intern("zz"),
        ]);
        assert_eq!(p, Record::from_pairs([("a", 1i64), ("c", 3i64)]));

        let mut m = Record::from_pairs([("a", 0i64), ("d", 4i64)]);
        m.merge(&r);
        assert_eq!(m.get("a"), Some(&Value::Int(1)), "merge overwrites");
        assert_eq!(m.get("d"), Some(&Value::Int(4)));
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn iter_is_sorted_by_symbol_index() {
        let r = Record::from_pairs([("z-rec", 1i64), ("a-rec", 2i64), ("m-rec", 3i64)]);
        let ids: Vec<u32> = r.iter().map(|(f, _)| f.index()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn event_basics() {
        let e = Event::from_pairs("clicks", 42u64, [("user", "u1")]);
        assert_eq!(e.ts, Timestamp::new(42));
        assert_eq!(e.stream, Symbol::intern("clicks"));
        assert_eq!(e.get("user"), Some(&Value::str("u1")));
        assert_eq!(e.to_string(), "clicks@t42 {user: \"u1\"}");
    }
}
