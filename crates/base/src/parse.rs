//! Shared lexer and expression parser for the Fenestra DSLs.
//!
//! The state-management rule language (`fenestra-rules`) and the state
//! query language (`fenestra-query`) share one token stream and one
//! expression grammar:
//!
//! ```text
//! expr    := or
//! or      := and ("or" and)*
//! and     := not ("and" not)*
//! not     := "not" not | cmp
//! cmp     := add (("=="|"!="|"<"|"<="|">"|">=") add)?
//! add     := mul (("+"|"-") mul)*
//! mul     := unary (("*"|"/"|"%") unary)*
//! unary   := "-" unary | primary
//! primary := literal | name | func "(" args ")" | "(" expr ")"
//! name    := ident ("." ident)*        // dotted names resolve in scope
//! literal := int | float | string | duration | "true" | "false" | "null"
//! ```
//!
//! Duration literals (`500ms`, `10s`, `5m`, `2h`) lex to
//! [`Tok::Duration`]; in expression position they evaluate to their
//! millisecond count as an integer, and statement-level parsers may
//! consume them directly (e.g. `within 5m`).

use crate::error::{Error, Result};
use crate::expr::{BinOp, Expr, Func, UnOp};
use crate::symbol::Symbol;
use crate::time::Duration;
use crate::value::Value;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Double-quoted string literal (interned).
    Str(Symbol),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Duration literal, in milliseconds.
    Duration(u64),
    /// Operator or punctuation (`==`, `<=`, `(`, `.`, `$`, …).
    Punct(&'static str),
}

/// A token with its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Line, 1-based.
    pub line: u32,
    /// Column, 1-based.
    pub col: u32,
}

const PUNCTS: &[&str] = &[
    "==", "!=", "<=", ">=", "->", "&&", "||", "<", ">", "=", "+", "-", "*", "/", "%", "(", ")",
    "{", "}", "[", "]", ",", ":", ".", "$", "@", "?", ";",
];

/// Tokenize `src`. Comments run from `#` to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let n = bytes.len();
    while i < n {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            col = 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        if c == '#' {
            while i < n && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let (tline, tcol) = (line, col);
        if c == '"' {
            let mut s = String::new();
            i += 1;
            col += 1;
            loop {
                if i >= n {
                    return Err(Error::parse(tline, tcol, "unterminated string"));
                }
                let ch = bytes[i] as char;
                i += 1;
                col += 1;
                match ch {
                    '"' => break,
                    '\\' => {
                        if i >= n {
                            return Err(Error::parse(tline, tcol, "unterminated escape"));
                        }
                        let esc = bytes[i] as char;
                        i += 1;
                        col += 1;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '"' => '"',
                            other => {
                                return Err(Error::parse(
                                    tline,
                                    tcol,
                                    format!("unknown escape `\\{other}`"),
                                ))
                            }
                        });
                    }
                    '\n' => return Err(Error::parse(tline, tcol, "newline in string")),
                    other => s.push(other),
                }
            }
            out.push(Token {
                tok: Tok::Str(Symbol::intern(&s)),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (bytes[i] as char).is_ascii_digit() {
                i += 1;
                col += 1;
            }
            let mut is_float = false;
            if i + 1 < n && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
                is_float = true;
                i += 1;
                col += 1;
                while i < n && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
            }
            let text = &src[start..i];
            // Duration suffix?
            if !is_float {
                let suffix_start = i;
                while i < n && (bytes[i] as char).is_ascii_alphabetic() {
                    i += 1;
                    col += 1;
                }
                let suffix = &src[suffix_start..i];
                if !suffix.is_empty() {
                    let value: u64 = text
                        .parse()
                        .map_err(|_| Error::parse(tline, tcol, "integer overflow"))?;
                    let millis = match suffix {
                        "ms" => Duration::millis(value),
                        "s" => Duration::secs(value),
                        "m" => Duration::minutes(value),
                        "h" => Duration::hours(value),
                        other => {
                            return Err(Error::parse(
                                tline,
                                tcol,
                                format!("unknown duration suffix `{other}`"),
                            ))
                        }
                    };
                    out.push(Token {
                        tok: Tok::Duration(millis.as_millis()),
                        line: tline,
                        col: tcol,
                    });
                    continue;
                }
            }
            let tok = if is_float {
                Tok::Float(
                    text.parse()
                        .map_err(|_| Error::parse(tline, tcol, "bad float"))?,
                )
            } else {
                Tok::Int(
                    text.parse()
                        .map_err(|_| Error::parse(tline, tcol, "integer overflow"))?,
                )
            };
            out.push(Token {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < n {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    i += 1;
                    col += 1;
                } else {
                    break;
                }
            }
            out.push(Token {
                tok: Tok::Ident(src[start..i].to_owned()),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Punctuation: longest match first.
        let rest = &src[i..];
        let mut matched = None;
        for p in PUNCTS {
            if rest.starts_with(p) {
                matched = Some(*p);
                break;
            }
        }
        let Some(p) = matched else {
            return Err(Error::parse(
                tline,
                tcol,
                format!("unexpected character `{c}`"),
            ));
        };
        i += p.len();
        col += p.len() as u32;
        out.push(Token {
            tok: Tok::Punct(p),
            line: tline,
            col: tcol,
        });
    }
    Ok(out)
}

/// A cursor over a token stream, shared by the DSL parsers.
pub struct Cursor<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Cursor at the start of `toks`.
    pub fn new(toks: &'a [Token]) -> Cursor<'a> {
        Cursor { toks, pos: 0 }
    }

    /// The current token, if any.
    pub fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    /// Position info of the current (or last) token, for errors.
    pub fn pos(&self) -> (u32, u32) {
        match self.toks.get(self.pos).or_else(|| self.toks.last()) {
            Some(t) => (t.line, t.col),
            None => (1, 1),
        }
    }

    /// Whether the stream is exhausted.
    pub fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Advance and return the current token.
    #[allow(clippy::should_implement_trait)] // cursor, not an Iterator
    pub fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.pos).map(|t| &t.tok);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Error at the current position.
    pub fn error(&self, msg: impl Into<String>) -> Error {
        let (line, col) = self.pos();
        Error::parse(line, col, msg)
    }

    /// Consume the given punctuation or fail.
    pub fn expect_punct(&mut self, p: &str) -> Result<()> {
        match self.peek() {
            Some(Tok::Punct(q)) if *q == p => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected `{p}`, found {other:?}"))),
        }
    }

    /// Consume the given keyword (identifier) or fail.
    pub fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    /// Consume an identifier or fail.
    pub fn expect_ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(s.clone())
            }
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// If the current token is this punctuation, consume it.
    pub fn eat_punct(&mut self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p) && {
            self.pos += 1;
            true
        }
    }

    /// If the current token is this keyword, consume it.
    pub fn eat_kw(&mut self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) && {
            self.pos += 1;
            true
        }
    }

    /// Parse an expression (the shared grammar).
    pub fn expression(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while self.eat_kw("or") || self.eat_punct("||") {
            let rhs = self.parse_and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while self.eat_kw("and") || self.eat_punct("&&") {
            let rhs = self.parse_not()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(self.parse_not()?.not())
        } else {
            self.parse_cmp()
        }
    }

    fn parse_cmp(&mut self) -> Result<Expr> {
        let lhs = self.parse_add()?;
        let op = match self.peek() {
            Some(Tok::Punct("==")) | Some(Tok::Punct("=")) => BinOp::Eq,
            Some(Tok::Punct("!=")) => BinOp::Ne,
            Some(Tok::Punct("<")) => BinOp::Lt,
            Some(Tok::Punct("<=")) => BinOp::Le,
            Some(Tok::Punct(">")) => BinOp::Gt,
            Some(Tok::Punct(">=")) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.parse_add()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn parse_add(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("+")) => BinOp::Add,
                Some(Tok::Punct("-")) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Punct("*")) => BinOp::Mul,
                Some(Tok::Punct("/")) => BinOp::Div,
                Some(Tok::Punct("%")) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_punct("-") {
            Ok(Expr::Unary(UnOp::Neg, Box::new(self.parse_unary()?)))
        } else if self.eat_kw("not") {
            // `not` is primarily handled looser than comparison (see
            // `parse_not`), but it is also accepted in operand
            // position, e.g. `1 + not (x)`, so printed expressions
            // always re-parse.
            Ok(self.parse_unary()?.not())
        } else {
            self.parse_primary()
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Expr::lit(i))
            }
            Some(Tok::Float(f)) => {
                self.pos += 1;
                Ok(Expr::lit(f))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Lit(Value::Str(s)))
            }
            Some(Tok::Duration(ms)) => {
                self.pos += 1;
                Ok(Expr::lit(ms as i64))
            }
            Some(Tok::Punct("(")) => {
                self.pos += 1;
                let e = self.expression()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "true" => return Ok(Expr::lit(true)),
                    "false" => return Ok(Expr::lit(false)),
                    "null" => return Ok(Expr::Lit(Value::Null)),
                    _ => {}
                }
                // Function call?
                if matches!(self.peek(), Some(Tok::Punct("("))) {
                    if let Some(f) = Func::by_name(&name) {
                        self.pos += 1;
                        let mut args = Vec::new();
                        if !self.eat_punct(")") {
                            loop {
                                args.push(self.expression()?);
                                if self.eat_punct(")") {
                                    break;
                                }
                                self.expect_punct(",")?;
                            }
                        }
                        return Ok(Expr::Call(f, args));
                    }
                    return Err(self.error(format!("unknown function `{name}`")));
                }
                // Dotted name chain.
                let mut full = name;
                while self.eat_punct(".") {
                    let part = self.expect_ident()?;
                    full.push('.');
                    full.push_str(&part);
                }
                Ok(Expr::name(full.as_str()))
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parse a standalone expression from source text.
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = lex(src)?;
    let mut c = Cursor::new(&toks);
    let e = c.expression()?;
    if !c.at_end() {
        return Err(c.error("trailing input after expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{EmptyScope, SliceScope};

    fn eval(src: &str) -> Value {
        parse_expr(src).unwrap().eval(&EmptyScope).unwrap()
    }

    #[test]
    fn arithmetic_precedence() {
        assert_eq!(eval("1 + 2 * 3"), Value::Int(7));
        assert_eq!(eval("(1 + 2) * 3"), Value::Int(9));
        assert_eq!(eval("10 - 4 - 3"), Value::Int(3), "left assoc");
        assert_eq!(eval("7 % 4 + 1"), Value::Int(4));
        assert_eq!(eval("-3 + 5"), Value::Int(2));
    }

    #[test]
    fn comparison_and_logic() {
        assert_eq!(eval("1 < 2 and 2 < 3"), Value::Bool(true));
        assert_eq!(eval("1 < 2 and 3 < 2"), Value::Bool(false));
        assert_eq!(eval("1 > 2 or 2 > 1"), Value::Bool(true));
        assert_eq!(eval("not (1 == 1)"), Value::Bool(false));
        assert_eq!(eval("\"a\" != \"b\""), Value::Bool(true));
        // Single `=` is accepted as equality in the DSLs.
        assert_eq!(eval("3 = 3"), Value::Bool(true));
    }

    #[test]
    fn literals() {
        assert_eq!(eval("true"), Value::Bool(true));
        assert_eq!(eval("null"), Value::Null);
        assert_eq!(eval("2.5"), Value::Float(2.5));
        assert_eq!(eval("\"hi\\n\""), Value::str("hi\n"));
        assert_eq!(eval("5s"), Value::Int(5000), "durations are millis ints");
        assert_eq!(eval("2m"), Value::Int(120_000));
        assert_eq!(eval("1h"), Value::Int(3_600_000));
        assert_eq!(eval("10ms"), Value::Int(10));
    }

    #[test]
    fn names_and_dotted_names() {
        let e = parse_expr("user").unwrap();
        assert_eq!(e, Expr::name("user"));
        let e = parse_expr("a.user").unwrap();
        assert_eq!(e, Expr::name("a.user"));
        let bindings = vec![(Symbol::intern("a.user"), Value::str("u1"))];
        assert_eq!(
            parse_expr("a.user == \"u1\"")
                .unwrap()
                .eval(&SliceScope(&bindings))
                .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn functions() {
        assert_eq!(eval("min(3, 5)"), Value::Int(3));
        assert_eq!(eval("abs(0 - 4)"), Value::Int(4));
        assert_eq!(eval("coalesce(null, null, 9)"), Value::Int(9));
        assert_eq!(eval("contains(\"hello\", \"ell\")"), Value::Bool(true));
        assert!(parse_expr("nope(1)").is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        assert_eq!(eval("1 + # comment\n 2"), Value::Int(3));
    }

    #[test]
    fn error_positions() {
        let err = parse_expr("1 +\n  )").unwrap_err();
        match err {
            Error::Parse { line, col, .. } => {
                assert_eq!(line, 2);
                assert_eq!(col, 3);
            }
            other => panic!("expected parse error, got {other}"),
        }
        assert!(parse_expr("\"unterminated").is_err());
        assert!(parse_expr("1 2").is_err(), "trailing input");
        assert!(parse_expr("5q").is_err(), "unknown duration suffix");
    }

    #[test]
    fn lex_positions() {
        let toks = lex("a\n  bb").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
