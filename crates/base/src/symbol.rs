//! Global thread-safe string interner.
//!
//! Attribute names, stream names, field names, and string values are
//! interned once and referenced by a compact [`Symbol`] (a `u32`).
//! Interning makes equality and hashing O(1), keeps [`crate::Value`]
//! `Copy`-sized, and lets indexes key on integers.
//!
//! The interner is a process-global append-only table guarded by a
//! `parking_lot::RwLock`; resolution of an existing symbol takes the
//! read lock only.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// An interned string. Cheap to copy, compare, and hash.
///
/// Two `Symbol`s are equal iff their strings are equal. The ordering of
/// `Symbol` itself is *interning order*, not lexicographic; use
/// [`Symbol::as_str`] when lexicographic order matters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

struct Interner {
    lookup: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            lookup: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its symbol. Idempotent.
    pub fn intern(s: &str) -> Symbol {
        {
            let g = interner().read();
            if let Some(&id) = g.lookup.get(s) {
                return Symbol(id);
            }
        }
        let mut g = interner().write();
        if let Some(&id) = g.lookup.get(s) {
            return Symbol(id);
        }
        // Leaking is deliberate: the interner is append-only and global
        // for the process lifetime, mirroring rustc's string interner.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = g.strings.len() as u32;
        g.strings.push(leaked);
        g.lookup.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// The raw interner index (stable for the process lifetime only —
    /// never persist it; persist [`Symbol::as_str`] instead).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::intern(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("sym-test-alpha");
        let b = Symbol::intern("sym-test-beta");
        assert_ne!(a, b);
        assert_ne!(a.as_str(), b.as_str());
    }

    #[test]
    fn display_and_debug() {
        let s = Symbol::intern("room");
        assert_eq!(s.to_string(), "room");
        assert_eq!(format!("{s:?}"), "\"room\"");
    }

    #[test]
    fn concurrent_interning() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    for j in 0..100 {
                        out.push(Symbol::intern(&format!("concurrent-{}", (i * j) % 50)));
                    }
                    out
                })
            })
            .collect();
        let all: Vec<Symbol> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        for s in all {
            assert!(s.as_str().starts_with("concurrent-"));
            assert_eq!(Symbol::intern(s.as_str()), s);
        }
    }
}
