//! A small expression language over [`Value`]s.
//!
//! Expressions are shared by stream filter/map operators, the
//! state-management rule DSL, and the query engine's `FILTER` clauses.
//! Evaluation resolves free names through a [`Scope`]; each host
//! supplies its own scope (event fields, rule bindings, query variable
//! bindings).
//!
//! Semantics:
//! * Arithmetic follows a numeric tower: `Int ∘ Int → Int` (wrapping is
//!   an error-free i64 op; overflow panics in debug like normal Rust),
//!   any float operand promotes to `Float`.
//! * Comparison uses [`Value::partial_cmp_numeric`]; comparing
//!   incompatible types is a type error (not `false`) so bugs surface.
//! * Equality (`==`, `!=`) is defined across all types: `Int 3` equals
//!   `Float 3.0` (numeric-tower equality) but `Int 3 != Str "3"` is
//!   simply `true`.
//! * `And`/`Or` short-circuit on truthiness ([`Value::is_truthy`]).
//! * `Null` propagates through arithmetic (any `Null` operand yields
//!   `Null`) and compares equal only to `Null` under `==`.

use crate::error::{Error, Result};
use crate::symbol::Symbol;
use crate::value::Value;
use std::fmt;

/// Name resolution environment for expression evaluation.
pub trait Scope {
    /// Resolve a free name to a value. `None` means unbound (an error
    /// for [`Expr::Name`], distinguishable from a present-but-`Null`
    /// binding).
    fn lookup(&self, name: Symbol) -> Option<Value>;
}

/// The empty scope: every name is unbound.
pub struct EmptyScope;

impl Scope for EmptyScope {
    fn lookup(&self, _name: Symbol) -> Option<Value> {
        None
    }
}

/// A scope backed by a slice of bindings (linear scan; fine for the
/// handful of names rules bind).
pub struct SliceScope<'a>(pub &'a [(Symbol, Value)]);

impl Scope for SliceScope<'_> {
    fn lookup(&self, name: Symbol) -> Option<Value> {
        self.0
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition or string concatenation).
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division when both operands are ints).
    Div,
    /// `%`
    Mod,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit)
    And,
    /// `or` (short-circuit)
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical not (truthiness-based).
    Not,
}

/// Built-in functions callable from expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Absolute value of a number.
    Abs,
    /// Smaller of two values (numeric tower).
    Min,
    /// Larger of two values (numeric tower).
    Max,
    /// String containment test.
    Contains,
    /// String prefix test.
    StartsWith,
    /// Length of a string, in bytes.
    Len,
    /// Coalesce: first non-null argument.
    Coalesce,
}

impl Func {
    /// Function name as written in the DSLs.
    pub fn name(self) -> &'static str {
        match self {
            Func::Abs => "abs",
            Func::Min => "min",
            Func::Max => "max",
            Func::Contains => "contains",
            Func::StartsWith => "starts_with",
            Func::Len => "len",
            Func::Coalesce => "coalesce",
        }
    }

    /// Look a function up by its DSL name.
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name {
            "abs" => Func::Abs,
            "min" => Func::Min,
            "max" => Func::Max,
            "contains" => Func::Contains,
            "starts_with" => Func::StartsWith,
            "len" => Func::Len,
            "coalesce" => Func::Coalesce,
            _ => return None,
        })
    }

    /// Expected argument count, or `None` for variadic.
    pub fn arity(self) -> Option<usize> {
        match self {
            Func::Abs | Func::Len => Some(1),
            Func::Min | Func::Max | Func::Contains | Func::StartsWith => Some(2),
            Func::Coalesce => None,
        }
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// A free name resolved through the [`Scope`] (event field, rule
    /// binding, or query variable, depending on the host).
    Name(Symbol),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Built-in function call.
    Call(Func, Vec<Expr>),
}

impl Expr {
    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Name helper.
    pub fn name(n: impl Into<Symbol>) -> Expr {
        Expr::Name(n.into())
    }

    /// `self == other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self != other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self and other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(other))
    }

    /// `self or other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(other))
    }

    /// `self + other`
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(other))
    }

    /// `not self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }

    /// Collect the free names referenced anywhere in the expression.
    pub fn free_names(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_names(&self, out: &mut Vec<Symbol>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Name(n) => out.push(*n),
            Expr::Unary(_, e) => e.collect_names(out),
            Expr::Binary(_, a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_names(out);
                }
            }
        }
    }

    /// Evaluate under `scope`.
    pub fn eval(&self, scope: &dyn Scope) -> Result<Value> {
        match self {
            Expr::Lit(v) => Ok(*v),
            Expr::Name(n) => scope
                .lookup(*n)
                .ok_or_else(|| Error::UnboundName(n.as_str().to_owned())),
            Expr::Unary(op, e) => {
                let v = e.eval(scope)?;
                eval_unary(*op, v)
            }
            Expr::Binary(op, a, b) => match op {
                BinOp::And => {
                    let va = a.eval(scope)?;
                    if !va.is_truthy() {
                        Ok(Value::Bool(false))
                    } else {
                        Ok(Value::Bool(b.eval(scope)?.is_truthy()))
                    }
                }
                BinOp::Or => {
                    let va = a.eval(scope)?;
                    if va.is_truthy() {
                        Ok(Value::Bool(true))
                    } else {
                        Ok(Value::Bool(b.eval(scope)?.is_truthy()))
                    }
                }
                _ => {
                    let va = a.eval(scope)?;
                    let vb = b.eval(scope)?;
                    eval_binary(*op, va, vb)
                }
            },
            Expr::Call(f, args) => {
                if let Some(n) = f.arity() {
                    if args.len() != n {
                        return Err(Error::Invalid(format!(
                            "{} expects {} argument(s), got {}",
                            f.name(),
                            n,
                            args.len()
                        )));
                    }
                }
                let vals: Vec<Value> = args.iter().map(|a| a.eval(scope)).collect::<Result<_>>()?;
                eval_call(*f, &vals)
            }
        }
    }

    /// Evaluate as a predicate: truthiness of the result.
    pub fn eval_bool(&self, scope: &dyn Scope) -> Result<bool> {
        Ok(self.eval(scope)?.is_truthy())
    }
}

fn eval_unary(op: UnOp, v: Value) -> Result<Value> {
    match op {
        UnOp::Not => Ok(Value::Bool(!v.is_truthy())),
        UnOp::Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Null => Ok(Value::Null),
            other => Err(Error::type_err("negation", other.type_name().to_owned())),
        },
    }
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => eval_arith(op, a, b),
        Eq => Ok(Value::Bool(values_equal(&a, &b))),
        Ne => Ok(Value::Bool(!values_equal(&a, &b))),
        Lt | Le | Gt | Ge => {
            if matches!(a, Value::Null) || matches!(b, Value::Null) {
                return Ok(Value::Bool(false));
            }
            let ord = a.partial_cmp_numeric(&b).ok_or_else(|| {
                Error::type_err(
                    format!("comparison `{}`", op.symbol()),
                    format!("{} vs {}", a.type_name(), b.type_name()),
                )
            })?;
            let pass = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(pass))
        }
        And | Or => unreachable!("short-circuit ops handled by caller"),
    }
}

/// Equality across the numeric tower; other cross-type pairs are unequal.
fn values_equal(a: &Value, b: &Value) -> bool {
    match a.partial_cmp_numeric(b) {
        Some(ord) => ord.is_eq(),
        None => false,
    }
}

fn eval_arith(op: BinOp, a: Value, b: Value) -> Result<Value> {
    use Value::*;
    // Null propagates.
    if matches!(a, Null) || matches!(b, Null) {
        return Ok(Null);
    }
    // String concatenation.
    if op == BinOp::Add {
        if let (Str(x), Str(y)) = (&a, &b) {
            let mut s = String::with_capacity(x.as_str().len() + y.as_str().len());
            s.push_str(x.as_str());
            s.push_str(y.as_str());
            return Ok(Value::str(&s));
        }
    }
    match (a, b) {
        (Int(x), Int(y)) => match op {
            BinOp::Add => Ok(Int(x.wrapping_add(y))),
            BinOp::Sub => Ok(Int(x.wrapping_sub(y))),
            BinOp::Mul => Ok(Int(x.wrapping_mul(y))),
            BinOp::Div => {
                if y == 0 {
                    Err(Error::DivisionByZero)
                } else {
                    Ok(Int(x.wrapping_div(y)))
                }
            }
            BinOp::Mod => {
                if y == 0 {
                    Err(Error::DivisionByZero)
                } else {
                    Ok(Int(x.wrapping_rem(y)))
                }
            }
            _ => unreachable!(),
        },
        (x, y) => {
            let (fx, fy) = match (x.as_f64(), y.as_f64()) {
                (Some(fx), Some(fy)) => (fx, fy),
                _ => {
                    return Err(Error::type_err(
                        format!("arithmetic `{}`", op.symbol()),
                        format!("{} {} {}", x.type_name(), op.symbol(), y.type_name()),
                    ))
                }
            };
            let r = match op {
                BinOp::Add => fx + fy,
                BinOp::Sub => fx - fy,
                BinOp::Mul => fx * fy,
                BinOp::Div => fx / fy,
                BinOp::Mod => fx % fy,
                _ => unreachable!(),
            };
            Ok(Float(r))
        }
    }
}

fn eval_call(f: Func, args: &[Value]) -> Result<Value> {
    match f {
        Func::Abs => match args[0] {
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Float(x) => Ok(Value::Float(x.abs())),
            Value::Null => Ok(Value::Null),
            other => Err(Error::type_err("abs", other.type_name().to_owned())),
        },
        Func::Min | Func::Max => {
            let (a, b) = (args[0], args[1]);
            if matches!(a, Value::Null) || matches!(b, Value::Null) {
                return Ok(Value::Null);
            }
            let ord = a.partial_cmp_numeric(&b).ok_or_else(|| {
                Error::type_err(f.name(), format!("{} vs {}", a.type_name(), b.type_name()))
            })?;
            let take_a = if f == Func::Min {
                ord.is_le()
            } else {
                ord.is_ge()
            };
            Ok(if take_a { a } else { b })
        }
        Func::Contains | Func::StartsWith => match (args[0], args[1]) {
            (Value::Str(s), Value::Str(needle)) => {
                let pass = if f == Func::Contains {
                    s.as_str().contains(needle.as_str())
                } else {
                    s.as_str().starts_with(needle.as_str())
                };
                Ok(Value::Bool(pass))
            }
            (a, b) => Err(Error::type_err(
                f.name(),
                format!("{}, {}", a.type_name(), b.type_name()),
            )),
        },
        Func::Len => match args[0] {
            Value::Str(s) => Ok(Value::Int(s.as_str().len() as i64)),
            other => Err(Error::type_err("len", other.type_name().to_owned())),
        },
        Func::Coalesce => Ok(args
            .iter()
            .copied()
            .find(|v| !matches!(v, Value::Null))
            .unwrap_or(Value::Null)),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Name(n) => write!(f, "{n}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Unary(UnOp::Not, e) => write!(f, "(not ({e}))"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope(pairs: &[(&str, Value)]) -> Vec<(Symbol, Value)> {
        pairs.iter().map(|(n, v)| (Symbol::intern(n), *v)).collect()
    }

    #[test]
    fn literals_and_names() {
        let bindings = scope(&[("x", Value::Int(10))]);
        let s = SliceScope(&bindings);
        assert_eq!(Expr::lit(5i64).eval(&s).unwrap(), Value::Int(5));
        assert_eq!(Expr::name("x").eval(&s).unwrap(), Value::Int(10));
        assert!(matches!(
            Expr::name("y").eval(&s),
            Err(Error::UnboundName(_))
        ));
    }

    #[test]
    fn arithmetic_tower() {
        let s = EmptyScope;
        assert_eq!(
            Expr::lit(2i64).add(Expr::lit(3i64)).eval(&s).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            Expr::lit(2i64).add(Expr::lit(0.5)).eval(&s).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Expr::lit(7i64)
                .sub(Expr::lit(2i64))
                .mul(Expr::lit(3i64))
                .eval(&s)
                .unwrap(),
            Value::Int(15)
        );
        assert_eq!(
            Expr::Binary(
                BinOp::Div,
                Box::new(Expr::lit(7i64)),
                Box::new(Expr::lit(2i64))
            )
            .eval(&s)
            .unwrap(),
            Value::Int(3),
            "integer division truncates"
        );
        assert_eq!(
            Expr::Binary(
                BinOp::Mod,
                Box::new(Expr::lit(7i64)),
                Box::new(Expr::lit(4i64))
            )
            .eval(&s)
            .unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn division_by_zero() {
        let s = EmptyScope;
        let e = Expr::Binary(
            BinOp::Div,
            Box::new(Expr::lit(1i64)),
            Box::new(Expr::lit(0i64)),
        );
        assert_eq!(e.eval(&s), Err(Error::DivisionByZero));
        // Float division by zero yields inf, not an error.
        let e = Expr::Binary(
            BinOp::Div,
            Box::new(Expr::lit(1.0)),
            Box::new(Expr::lit(0.0)),
        );
        assert_eq!(e.eval(&s).unwrap(), Value::Float(f64::INFINITY));
    }

    #[test]
    fn null_propagation() {
        let s = EmptyScope;
        assert_eq!(
            Expr::lit(Value::Null)
                .add(Expr::lit(1i64))
                .eval(&s)
                .unwrap(),
            Value::Null
        );
        // Null comparisons are false, equality with Null only for Null.
        assert_eq!(
            Expr::lit(Value::Null).lt(Expr::lit(1i64)).eval(&s).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::lit(Value::Null)
                .eq(Expr::lit(Value::Null))
                .eval(&s)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::lit(Value::Null).eq(Expr::lit(0i64)).eval(&s).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn comparison_and_equality() {
        let s = EmptyScope;
        assert_eq!(
            Expr::lit(3i64).eq(Expr::lit(3.0)).eval(&s).unwrap(),
            Value::Bool(true),
            "numeric tower equality"
        );
        assert_eq!(
            Expr::lit(3i64).eq(Expr::lit("3")).eval(&s).unwrap(),
            Value::Bool(false),
            "cross-type equality is false, not an error"
        );
        assert_eq!(
            Expr::lit("a").lt(Expr::lit("b")).eval(&s).unwrap(),
            Value::Bool(true)
        );
        assert!(
            Expr::lit(1i64).lt(Expr::lit("b")).eval(&s).is_err(),
            "ordering across types is a type error"
        );
    }

    #[test]
    fn short_circuit() {
        let s = EmptyScope;
        // `false and <unbound>` must not evaluate the right side.
        let e = Expr::lit(false).and(Expr::name("nope"));
        assert_eq!(e.eval(&s).unwrap(), Value::Bool(false));
        let e = Expr::lit(true).or(Expr::name("nope"));
        assert_eq!(e.eval(&s).unwrap(), Value::Bool(true));
        let e = Expr::lit(true).and(Expr::lit(0i64));
        assert_eq!(
            e.eval(&s).unwrap(),
            Value::Bool(true),
            "truthiness of Int(0)"
        );
    }

    #[test]
    fn not_and_neg() {
        let s = EmptyScope;
        assert_eq!(Expr::lit(true).not().eval(&s).unwrap(), Value::Bool(false));
        assert_eq!(
            Expr::Unary(UnOp::Neg, Box::new(Expr::lit(3i64)))
                .eval(&s)
                .unwrap(),
            Value::Int(-3)
        );
        assert!(Expr::Unary(UnOp::Neg, Box::new(Expr::lit("a")))
            .eval(&s)
            .is_err());
    }

    #[test]
    fn string_ops() {
        let s = EmptyScope;
        assert_eq!(
            Expr::lit("foo").add(Expr::lit("bar")).eval(&s).unwrap(),
            Value::str("foobar")
        );
        assert_eq!(
            Expr::Call(Func::Contains, vec![Expr::lit("hello"), Expr::lit("ell")])
                .eval(&s)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::Call(Func::StartsWith, vec![Expr::lit("hello"), Expr::lit("he")])
                .eval(&s)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::Call(Func::Len, vec![Expr::lit("héllo")])
                .eval(&s)
                .unwrap(),
            Value::Int(6),
            "len counts bytes"
        );
    }

    #[test]
    fn functions() {
        let s = EmptyScope;
        assert_eq!(
            Expr::Call(Func::Abs, vec![Expr::lit(-4i64)])
                .eval(&s)
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            Expr::Call(Func::Min, vec![Expr::lit(4i64), Expr::lit(2.5)])
                .eval(&s)
                .unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Expr::Call(Func::Max, vec![Expr::lit(4i64), Expr::lit(2.5)])
                .eval(&s)
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            Expr::Call(
                Func::Coalesce,
                vec![
                    Expr::lit(Value::Null),
                    Expr::lit(Value::Null),
                    Expr::lit(7i64)
                ]
            )
            .eval(&s)
            .unwrap(),
            Value::Int(7)
        );
        assert!(matches!(
            Expr::Call(Func::Abs, vec![]).eval(&s),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn free_names_collected() {
        let e = Expr::name("a").add(Expr::name("b")).lt(Expr::Call(
            Func::Min,
            vec![Expr::name("a"), Expr::lit(1i64)],
        ));
        let names: Vec<&str> = e.free_names().iter().map(|s| s.as_str()).collect();
        let mut expected = vec!["a", "b"];
        expected.sort_unstable_by_key(|n| Symbol::intern(n).index());
        assert_eq!(names, expected);
    }

    #[test]
    fn display_round_readable() {
        let e = Expr::name("x").add(Expr::lit(1i64)).gt(Expr::lit(10i64));
        assert_eq!(e.to_string(), "((x + 1) > 10)");
    }
}
