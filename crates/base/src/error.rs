//! Common error type shared across the workspace.

use std::fmt;

/// Errors raised by Fenestra components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An expression referenced a field or variable that is not bound.
    UnboundName(String),
    /// An operation was applied to operands of the wrong type.
    Type {
        /// What was being evaluated.
        context: String,
        /// Description of the offending operand types.
        detail: String,
    },
    /// Division or modulo by zero.
    DivisionByZero,
    /// A DSL / query text failed to parse.
    Parse {
        /// 1-based line of the offending token.
        line: u32,
        /// 1-based column of the offending token.
        col: u32,
        /// What went wrong.
        message: String,
    },
    /// A rule, query, or schema failed validation.
    Invalid(String),
    /// The state store rejected an operation (e.g. retracting a fact
    /// that was never asserted).
    Store(String),
    /// I/O error (persistence, WAL).
    Io(String),
    /// Corrupt or incompatible persisted data.
    Corrupt(String),
}

impl Error {
    /// Shorthand for a parse error.
    pub fn parse(line: u32, col: u32, message: impl Into<String>) -> Error {
        Error::Parse {
            line,
            col,
            message: message.into(),
        }
    }

    /// Shorthand for a type error.
    pub fn type_err(context: impl Into<String>, detail: impl Into<String>) -> Error {
        Error::Type {
            context: context.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnboundName(n) => write!(f, "unbound name `{n}`"),
            Error::Type { context, detail } => write!(f, "type error in {context}: {detail}"),
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            Error::Invalid(m) => write!(f, "invalid: {m}"),
            Error::Store(m) => write!(f, "store error: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::Corrupt(m) => write!(f, "corrupt data: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            Error::UnboundName("x".into()).to_string(),
            "unbound name `x`"
        );
        assert_eq!(
            Error::parse(3, 7, "expected `)`").to_string(),
            "parse error at 3:7: expected `)`"
        );
        assert_eq!(Error::DivisionByZero.to_string(), "division by zero");
        assert!(Error::type_err("add", "int + string")
            .to_string()
            .contains("int + string"));
    }

    #[test]
    fn from_io() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, Error::Io(_)));
    }
}
