//! The dynamically typed value carried by records and state facts.
//!
//! [`Value`] is `Copy`-cheap (one word of payload), totally ordered,
//! and hashable — floats are compared with IEEE-754 total ordering so
//! values can serve as index and join keys without surprises. `NaN`
//! therefore equals itself and sorts above `+∞`.

use crate::symbol::Symbol;
use crate::time::Timestamp;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifier of an entity in the state repository (EAV model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EntityId(pub u64);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A dynamically typed scalar value.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// Absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (totally ordered; see module docs).
    Float(f64),
    /// Interned string.
    Str(Symbol),
    /// Reference to a state entity.
    Id(EntityId),
    /// A point in logical time (so rules/queries can compare times).
    Time(Timestamp),
}

impl Value {
    /// Intern `s` and wrap it.
    pub fn str(s: &str) -> Value {
        Value::Str(Symbol::intern(s))
    }

    /// Rank of the variant, used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Id(_) => 5,
            Value::Time(_) => 6,
        }
    }

    /// Human-readable type name (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Id(_) => "id",
            Value::Time(_) => "time",
        }
    }

    /// `true` unless the value is `Null` or `Bool(false)`.
    ///
    /// This is the truthiness used by filter predicates: a predicate
    /// that evaluates to a non-boolean non-null value passes.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Null | Value::Bool(false))
    }

    /// Extract a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Extract an interned string, if this is one.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Extract an entity id, if this is one.
    pub fn as_id(&self) -> Option<EntityId> {
        match self {
            Value::Id(e) => Some(*e),
            _ => None,
        }
    }

    /// Extract a timestamp, if this is one.
    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Numeric comparison that treats `Int` and `Float` as one numeric
    /// tower; other types compare only within their own type. Returns
    /// `None` for cross-type comparisons (other than int/float).
    pub fn partial_cmp_numeric(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.total_cmp(b)),
            (Int(a), Float(b)) => Some((*a as f64).total_cmp(b)),
            (Float(a), Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.as_str().cmp(b.as_str())),
            (Id(a), Id(b)) => Some(a.cmp(b)),
            (Time(a), Time(b)) => Some(a.cmp(b)),
            (Null, Null) => Some(Ordering::Equal),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: values order by type rank first, then within the
    /// type. Ints and floats that are *numerically equal but of
    /// different type* are **not** equal under this order (it must be
    /// a total order usable as a BTree key); use
    /// [`Value::partial_cmp_numeric`] for numeric-tower comparison.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.as_str().cmp(b.as_str()),
            (Id(a), Id(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            // to_bits is consistent with total_cmp equality except for
            // distinct NaN payloads, which we normalize.
            Value::Float(f) => {
                let bits = if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                };
                bits.hash(state);
            }
            Value::Str(s) => s.as_str().hash(state),
            Value::Id(e) => e.hash(state),
            Value::Time(t) => t.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // Keep a decimal point so floats re-parse as floats.
            Value::Float(x) if x.is_finite() && x.fract() == 0.0 => write!(f, "{x:.1}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{:?}", s.as_str()),
            Value::Id(e) => write!(f, "{e}"),
            Value::Time(t) => write!(f, "{t}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<Symbol> for Value {
    fn from(v: Symbol) -> Self {
        Value::Str(v)
    }
}
impl From<EntityId> for Value {
    fn from(v: EntityId) -> Self {
        Value::Id(v)
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Time(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equality_within_types() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert_eq!(Value::str("a"), Value::str("a"));
        assert_ne!(Value::str("a"), Value::str("b"));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn int_float_not_eq_in_total_order() {
        // Total order used by indexes must keep types apart…
        assert_ne!(Value::Int(3), Value::Float(3.0));
        // …but numeric comparison unifies the tower.
        assert_eq!(
            Value::Int(3).partial_cmp_numeric(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(3).partial_cmp_numeric(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn nan_is_self_equal_and_hash_consistent() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        // NaN sorts above +inf in total order.
        assert!(Value::Float(f64::INFINITY) < a);
    }

    #[test]
    fn eq_implies_hash_eq() {
        let pairs = [
            (Value::Int(7), Value::Int(7)),
            (Value::str("x"), Value::str("x")),
            (Value::Bool(true), Value::Bool(true)),
            (Value::Float(1.5), Value::Float(1.5)),
            (
                Value::Time(Timestamp::new(9)),
                Value::Time(Timestamp::new(9)),
            ),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Int(0).is_truthy());
        assert!(Value::str("").is_truthy());
    }

    #[test]
    fn cross_type_order_is_stable() {
        let mut vals = [
            Value::str("z"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
            Value::Id(EntityId(2)),
            Value::Time(Timestamp::new(1)),
        ];
        vals.sort();
        let ranks: Vec<u8> = vals.iter().map(|v| v.type_rank()).collect();
        let mut sorted = ranks.clone();
        sorted.sort_unstable();
        assert_eq!(ranks, sorted);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_f64(), Some(5.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Id(EntityId(9)).as_id(), Some(EntityId(9)));
        assert_eq!(
            Value::Time(Timestamp::new(3)).as_time(),
            Some(Timestamp::new(3))
        );
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Id(EntityId(4)).to_string(), "#4");
    }
}
