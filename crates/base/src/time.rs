//! Logical time: timestamps, durations, and half-open validity intervals.
//!
//! The paper models state as "a collection of data elements annotated
//! with their time of validity". We use a discrete logical clock
//! (milliseconds by convention, but nothing depends on the unit): a
//! [`Timestamp`] is a point, an [`Interval`] is a half-open span
//! `[start, end)` whose `end` may be absent (the element is still
//! valid).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point on the logical event-time axis (milliseconds by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The origin of the time axis.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The greatest representable instant.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Construct from a raw millisecond count.
    #[inline]
    pub const fn new(millis: u64) -> Self {
        Timestamp(millis)
    }

    /// The raw millisecond count.
    #[inline]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// Saturating subtraction of a duration (floors at time zero).
    #[inline]
    pub fn saturating_sub(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_sub(d.0))
    }

    /// The timestamp immediately after `self`, saturating at [`Timestamp::MAX`].
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0.saturating_add(1))
    }

    /// Align down to a multiple of `step` (window bucketing helper).
    ///
    /// `step` must be non-zero.
    #[inline]
    pub fn align_down(self, step: Duration) -> Timestamp {
        debug_assert!(step.0 > 0, "align_down with zero step");
        Timestamp(self.0 - self.0 % step.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Timestamp {
    fn from(v: u64) -> Self {
        Timestamp(v)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    /// Distance between two instants. Panics in debug builds if
    /// `rhs > self`.
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        debug_assert!(rhs.0 <= self.0, "negative duration");
        Duration(self.0 - rhs.0)
    }
}

/// A span of logical time (milliseconds by convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> Duration {
        Duration(n)
    }

    /// `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> Duration {
        Duration(n * 1_000)
    }

    /// `n` minutes.
    #[inline]
    pub const fn minutes(n: u64) -> Duration {
        Duration(n * 60_000)
    }

    /// `n` hours.
    #[inline]
    pub const fn hours(n: u64) -> Duration {
        Duration(n * 3_600_000)
    }

    /// The raw millisecond count.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whether this span is zero-length.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

/// A half-open validity interval `[start, end)`.
///
/// `end == None` means the interval is *open*: the annotated element is
/// still valid "now" and into the future until retracted. This is the
/// paper's "time of validity" annotation on state elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub start: Timestamp,
    /// Exclusive upper bound; `None` = still valid.
    pub end: Option<Timestamp>,
}

impl Interval {
    /// An interval open toward the future: `[start, ∞)`.
    #[inline]
    pub const fn open(start: Timestamp) -> Interval {
        Interval { start, end: None }
    }

    /// A closed interval `[start, end)`. Panics in debug builds if
    /// `end < start` (empty intervals with `end == start` are allowed
    /// and contain no instant).
    #[inline]
    pub fn closed(start: Timestamp, end: Timestamp) -> Interval {
        debug_assert!(start <= end, "interval end before start");
        Interval {
            start,
            end: Some(end),
        }
    }

    /// Whether the interval is still open toward the future.
    #[inline]
    pub const fn is_open(&self) -> bool {
        self.end.is_none()
    }

    /// Whether the interval contains no instant at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        matches!(self.end, Some(e) if e <= self.start)
    }

    /// Whether the instant `t` falls inside `[start, end)`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && self.end.is_none_or(|e| t < e)
    }

    /// Whether this interval and `other` share at least one instant.
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        let self_ends_after = self.end.is_none_or(|e| e > other.start);
        let other_ends_after = other.end.is_none_or(|e| e > self.start);
        self_ends_after && other_ends_after && !self.is_empty() && !other.is_empty()
    }

    /// Whether this interval shares at least one instant with `[from, to)`.
    #[inline]
    pub fn overlaps_range(&self, from: Timestamp, to: Timestamp) -> bool {
        self.overlaps(&Interval::closed(from, to))
    }

    /// Close an open interval at `end`. Returns `false` (leaving the
    /// interval untouched) if it is already closed or if `end` precedes
    /// the start.
    #[inline]
    pub fn close_at(&mut self, end: Timestamp) -> bool {
        if self.end.is_some() || end < self.start {
            return false;
        }
        self.end = Some(end);
        true
    }

    /// Length of the interval, if closed.
    #[inline]
    pub fn length(&self) -> Option<Duration> {
        self.end.map(|e| e - self.start)
    }

    /// The intersection of two intervals, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let start = self.start.max(other.start);
        let end = match (self.end, other.end) {
            (None, None) => None,
            (Some(e), None) | (None, Some(e)) => Some(e),
            (Some(a), Some(b)) => Some(a.min(b)),
        };
        let out = Interval { start, end };
        if out.is_empty() && out.end.is_some() {
            None
        } else {
            Some(out)
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.end {
            Some(e) => write!(f, "[{}, {})", self.start, e),
            None => write!(f, "[{}, ∞)", self.start),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arith() {
        let t = Timestamp::new(100);
        assert_eq!(t + Duration::millis(50), Timestamp::new(150));
        assert_eq!(Timestamp::new(150) - t, Duration::millis(50));
        assert_eq!(t.saturating_sub(Duration::millis(200)), Timestamp::ZERO);
        assert_eq!(
            Timestamp::MAX.saturating_add(Duration::millis(1)),
            Timestamp::MAX
        );
        assert_eq!(t.next(), Timestamp::new(101));
    }

    #[test]
    fn align_down_buckets() {
        let step = Duration::millis(10);
        assert_eq!(Timestamp::new(0).align_down(step), Timestamp::new(0));
        assert_eq!(Timestamp::new(9).align_down(step), Timestamp::new(0));
        assert_eq!(Timestamp::new(10).align_down(step), Timestamp::new(10));
        assert_eq!(Timestamp::new(25).align_down(step), Timestamp::new(20));
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(Duration::secs(2), Duration::millis(2000));
        assert_eq!(Duration::minutes(1), Duration::secs(60));
        assert_eq!(Duration::hours(1), Duration::minutes(60));
        assert!(Duration::ZERO.is_zero());
    }

    #[test]
    fn interval_contains() {
        let i = Interval::closed(Timestamp::new(10), Timestamp::new(20));
        assert!(!i.contains(Timestamp::new(9)));
        assert!(i.contains(Timestamp::new(10)));
        assert!(i.contains(Timestamp::new(19)));
        assert!(!i.contains(Timestamp::new(20)));

        let open = Interval::open(Timestamp::new(5));
        assert!(open.contains(Timestamp::new(5)));
        assert!(open.contains(Timestamp::MAX));
        assert!(!open.contains(Timestamp::new(4)));
    }

    #[test]
    fn interval_empty() {
        let e = Interval::closed(Timestamp::new(5), Timestamp::new(5));
        assert!(e.is_empty());
        assert!(!e.contains(Timestamp::new(5)));
        assert!(!Interval::open(Timestamp::new(5)).is_empty());
    }

    #[test]
    fn interval_overlaps() {
        let a = Interval::closed(Timestamp::new(0), Timestamp::new(10));
        let b = Interval::closed(Timestamp::new(10), Timestamp::new(20));
        let c = Interval::closed(Timestamp::new(5), Timestamp::new(15));
        assert!(!a.overlaps(&b), "half-open adjacency does not overlap");
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        let open = Interval::open(Timestamp::new(8));
        assert!(open.overlaps(&a));
        assert!(open.overlaps(&b));
        let empty = Interval::closed(Timestamp::new(3), Timestamp::new(3));
        assert!(!empty.overlaps(&a));
    }

    #[test]
    fn interval_close() {
        let mut i = Interval::open(Timestamp::new(10));
        assert!(!i.close_at(Timestamp::new(9)), "cannot close before start");
        assert!(i.close_at(Timestamp::new(15)));
        assert_eq!(i, Interval::closed(Timestamp::new(10), Timestamp::new(15)));
        assert!(!i.close_at(Timestamp::new(20)), "already closed");
    }

    #[test]
    fn interval_intersect() {
        let a = Interval::closed(Timestamp::new(0), Timestamp::new(10));
        let b = Interval::closed(Timestamp::new(5), Timestamp::new(15));
        assert_eq!(
            a.intersect(&b),
            Some(Interval::closed(Timestamp::new(5), Timestamp::new(10)))
        );
        let c = Interval::closed(Timestamp::new(10), Timestamp::new(15));
        assert_eq!(a.intersect(&c), None);
        let open = Interval::open(Timestamp::new(3));
        assert_eq!(
            open.intersect(&a),
            Some(Interval::closed(Timestamp::new(3), Timestamp::new(10)))
        );
    }

    #[test]
    fn interval_length() {
        assert_eq!(
            Interval::closed(Timestamp::new(3), Timestamp::new(10)).length(),
            Some(Duration::millis(7))
        );
        assert_eq!(Interval::open(Timestamp::new(3)).length(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Timestamp::new(7).to_string(), "t7");
        assert_eq!(Duration::millis(7).to_string(), "7ms");
        assert_eq!(
            Interval::closed(Timestamp::new(1), Timestamp::new(2)).to_string(),
            "[t1, t2)"
        );
        assert_eq!(Interval::open(Timestamp::new(1)).to_string(), "[t1, ∞)");
    }
}
