//! Property tests for the shared substrate: expression print→parse
//! round-trips, evaluation determinism, record canonicalization, and
//! interval algebra.

use fenestra_base::expr::{BinOp, EmptyScope, Expr, Func, UnOp};
use fenestra_base::parse::parse_expr;
use fenestra_base::record::Record;
use fenestra_base::time::{Interval, Timestamp};
use fenestra_base::value::Value;
use proptest::prelude::*;

/// Random expressions over a printable subset of values (no `Time`/`Id`
/// literals — the DSL has no literal syntax for those).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-1000i64..1000).prop_map(Expr::lit),
        (-100.0f64..100.0).prop_map(|f| Expr::lit((f * 4.0).round() / 4.0)),
        prop_oneof![Just("alpha"), Just("beta"), Just("s_1")]
            .prop_map(|s| Expr::Lit(Value::str(s))),
        any::<bool>().prop_map(Expr::lit),
        Just(Expr::Lit(Value::Null)),
        prop_oneof![Just("x"), Just("y"), Just("a.field")].prop_map(Expr::name),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                ]
            )
                .prop_map(|(a, b, op)| Expr::Binary(op, Box::new(a), Box::new(b))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call(Func::Min, vec![a, b])),
            inner.clone().prop_map(|e| Expr::Call(Func::Abs, vec![e])),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing an expression and re-parsing it yields an expression
    /// that evaluates identically (the ASTs may differ in `not`
    /// encoding, so we compare behaviour, not structure).
    #[test]
    fn expr_print_parse_round_trip(e in expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to reparse `{printed}`: {err}"));
        let scope = EmptyScope;
        let a = e.eval(&scope);
        let b = reparsed.eval(&scope);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y, "printed: {}", printed),
            (Err(_), Err(_)) => {} // both error (unbound names etc.)
            (x, y) => prop_assert!(false, "divergent: {:?} vs {:?} for `{}`", x, y, printed),
        }
    }

    /// Evaluation is deterministic.
    #[test]
    fn expr_eval_deterministic(e in expr_strategy()) {
        let scope = EmptyScope;
        prop_assert_eq!(e.eval(&scope).ok(), e.eval(&scope).ok());
    }

    /// Record canonicalization: insertion order never matters.
    #[test]
    fn record_order_canonical(pairs in prop::collection::vec(
        (prop_oneof![Just("a"), Just("b"), Just("c"), Just("d")], -10i64..10), 0..12)
    ) {
        let forward = Record::from_pairs(pairs.clone());
        // Reversing changes which duplicate wins, so dedup keeping the
        // last occurrence first.
        let mut dedup: Vec<(&str, i64)> = Vec::new();
        for (k, v) in &pairs {
            dedup.retain(|(k2, _)| k2 != k);
            dedup.push((k, *v));
        }
        let mut shuffled = dedup.clone();
        shuffled.reverse();
        let a = Record::from_pairs(dedup);
        let b = Record::from_pairs(shuffled);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &forward);
    }

    /// Interval intersection is commutative and contained in both.
    #[test]
    fn interval_intersection_props(
        a_start in 0u64..100, a_len in 1u64..50,
        b_start in 0u64..100, b_len in 1u64..50,
        open_a in any::<bool>(), open_b in any::<bool>(),
    ) {
        let a = if open_a {
            Interval::open(Timestamp::new(a_start))
        } else {
            Interval::closed(Timestamp::new(a_start), Timestamp::new(a_start + a_len))
        };
        let b = if open_b {
            Interval::open(Timestamp::new(b_start))
        } else {
            Interval::closed(Timestamp::new(b_start), Timestamp::new(b_start + b_len))
        };
        let ab = a.intersect(&b);
        let ba = b.intersect(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.is_some(), a.overlaps(&b), "{} vs {}", a, b);
        if let Some(i) = ab {
            for probe in 0..220u64 {
                let t = Timestamp::new(probe);
                prop_assert_eq!(i.contains(t), a.contains(t) && b.contains(t));
            }
        }
    }

    /// `contains` agrees with `overlaps` against a degenerate
    /// one-instant interval.
    #[test]
    fn contains_is_point_overlap(start in 0u64..50, len in 1u64..30, probe in 0u64..100) {
        let iv = Interval::closed(Timestamp::new(start), Timestamp::new(start + len));
        let point = Interval::closed(Timestamp::new(probe), Timestamp::new(probe + 1));
        prop_assert_eq!(iv.contains(Timestamp::new(probe)), iv.overlaps(&point));
    }
}

mod fuzz {
    use fenestra_base::parse::{lex, parse_expr};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The lexer never panics on arbitrary input — it either
        /// tokenizes or reports a positioned error.
        #[test]
        fn lexer_total_on_arbitrary_strings(s in "\\PC*") {
            let _ = lex(&s);
        }

        /// Same for the expression parser.
        #[test]
        fn expr_parser_total_on_arbitrary_strings(s in "\\PC*") {
            let _ = parse_expr(&s);
        }

        /// And on token-soup built from DSL-plausible fragments.
        #[test]
        fn expr_parser_total_on_token_soup(
            parts in prop::collection::vec(
                prop_oneof![
                    Just("("), Just(")"), Just("+"), Just("=="), Just("and"),
                    Just("not"), Just("1"), Just("2.5"), Just("\"s\""),
                    Just("name"), Just("a.b"), Just("min"), Just(","),
                    Just("5s"), Just("null"),
                ],
                0..24,
            )
        ) {
            let s = parts.join(" ");
            let _ = parse_expr(&s);
        }
    }
}

mod rules_fuzz_support {
    // The rules/query parser fuzz lives in their own crates' test
    // suites; this module just pins the shared lexer used by both.
    #[test]
    fn lexer_handles_unicode_and_controls() {
        for s in ["\u{0}", "🦀🦀", "a\tb\r\nc", "\"\\u0041\"", "𝕊 ≤ 𝕋"] {
            let _ = fenestra_base::parse::lex(s);
        }
    }
}
