//! E5 — §1/§5 claim: explicit state "might simplify the processing
//! task by activating some derivations only when specific conditions
//! on the state are met" and "can simplify the processing effort by
//! limiting the amount of streaming data that needs to be analyzed."
//!
//! A click-stream where only a fraction of users are in an active
//! session at any moment. The gated pipeline checks the state before
//! running the (deliberately expensive) analysis stage; the ungated
//! pipeline analyses everything. We sweep the active fraction by
//! varying session density.

use crate::table::{fmt_f, Table};
use crate::time_it;
use fenestra_base::expr::Expr;
use fenestra_base::time::Duration;
use fenestra_core::Engine;
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::graph::Graph;
use fenestra_stream::ops::filter::Filter;
use fenestra_stream::ops::map::Derive;
use fenestra_stream::ops::state::StateGate;
use fenestra_stream::window::time::TimeWindowOp;
use fenestra_temporal::AttrSchema;
use fenestra_workloads::{ClickstreamConfig, ClickstreamWorkload};

const RULES: &str = r#"
    rule enter:
      on clicks where action == "enter"
      replace $(user).status = "active"
    rule leave:
      on clicks where action == "leave"
      if state($(user)).status == "active"
      retract $(user).status = "active"
"#;

/// An "expensive" analysis stage: several derived columns plus a
/// grouped window — enough work that skipping it matters.
fn analysis_stage(
    g: &mut Graph,
    input: fenestra_stream::graph::NodeId,
) -> fenestra_stream::graph::SinkHandle {
    let d1 = g.add_op(Derive::new("score", Expr::name("ts").add(Expr::lit(1i64))));
    g.connect(input, d1);
    let d2 = g.add_op(Derive::new(
        "score2",
        Expr::name("score").mul(Expr::lit(3i64)),
    ));
    g.connect(d1, d2);
    let f = g.add_op(Filter::new(Expr::name("score2").ge(Expr::lit(0i64))));
    g.connect(d2, f);
    let win = g.add_op(
        TimeWindowOp::tumbling(Duration::secs(30))
            .group_by(["user"])
            .aggregate(AggSpec::count("n"))
            .aggregate(AggSpec::count_distinct("page", "pages")),
    );
    g.connect(f, win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    sink
}

struct Outcome {
    wall: f64,
    analyzed: u64,
    rows: usize,
}

fn run_pipeline(w: &ClickstreamWorkload, gated: bool) -> Outcome {
    let mut engine = Engine::with_defaults();
    engine.declare_attr("status", AttrSchema::one());
    engine.add_rules_text(RULES).unwrap();
    let store = engine.shared_store();
    let mut g = Graph::new();
    let entry = if gated {
        let gate = g.add_op(StateGate::new(store, "user", "status", "active"));
        g.connect_source("clicks", gate);
        gate
    } else {
        let pass = g.add_op(Filter::new(Expr::lit(true)));
        g.connect_source("clicks", pass);
        pass
    };
    let sink = analysis_stage(&mut g, entry);
    engine.set_graph(g).unwrap();
    let (_, wall) = time_it(|| {
        engine.run(w.events.iter().cloned());
        engine.finish();
    });
    // Events that reached the analysis stage = the entry node's output
    // (the gate/pass node is the first one added to the graph).
    let _ = entry;
    let analyzed = engine.node_metrics()[0].2;
    Outcome {
        wall,
        analyzed,
        rows: sink.len(),
    }
}

/// Run E5.
pub fn run() -> Table {
    let mut t = Table::new(
        "E5: state-gated processing (only active-session events analyzed)",
        &[
            "workload", "events", "variant", "analyzed", "wall_ms", "out_rows",
        ],
    );
    // Sparse sessions (few users active at once) vs dense.
    for (label, sessions, users) in [("sparse", 60usize, 200usize), ("dense", 400, 40)] {
        let w = ClickstreamWorkload::generate(&ClickstreamConfig {
            users,
            sessions,
            mean_session_ms: 30_000.0,
            session_arrival_gap_ms: 3_000,
            ..Default::default()
        });
        // Pad with out-of-session noise traffic (users browsing without
        // entering): these are exactly what gating eliminates.
        let mut events = w.events.clone();
        let mut noise = Vec::new();
        for (i, e) in w.events.iter().enumerate() {
            // Interleave two noise clicks per real event, from ghosts.
            for k in 0..2u64 {
                noise.push(fenestra_base::record::Event::from_pairs(
                    "clicks",
                    e.ts.millis(),
                    [
                        (
                            "user",
                            fenestra_base::value::Value::str(&format!(
                                "ghost{}",
                                (i as u64 * 2 + k) % 500
                            )),
                        ),
                        ("action", fenestra_base::value::Value::str("browse")),
                        ("page", fenestra_base::value::Value::str("page0")),
                    ],
                ));
            }
        }
        events.extend(noise);
        events.sort_by_key(|e| e.ts);
        let w2 = ClickstreamWorkload {
            events,
            sessions: w.sessions.clone(),
        };

        for gated in [false, true] {
            let o = run_pipeline(&w2, gated);
            t.row(vec![
                label.into(),
                w2.events.len().to_string(),
                if gated { "gated" } else { "ungated" }.into(),
                o.analyzed.to_string(),
                fmt_f(o.wall * 1e3),
                o.rows.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_shape_holds() {
        let t = super::run();
        // In each workload pair, the gated variant analyses strictly
        // fewer events.
        for pair in t.rows.chunks(2) {
            let ungated: u64 = pair[0][3].parse().unwrap();
            let gated: u64 = pair[1][3].parse().unwrap();
            assert!(
                gated * 2 < ungated,
                "gating should cut analyzed events at least in half: {gated} vs {ungated}"
            );
        }
    }
}
