//! E7 — §3 feasibility: "we envision the possibility to implement the
//! state component as a temporal database."
//!
//! Microbenchmark of the temporal store's core operations, the
//! foundation everything else stands on. (Criterion variants live in
//! `benches/store.rs`; this harness prints one-shot throughput so the
//! table in EXPERIMENTS.md can be regenerated without criterion.)

use crate::table::{fmt_f, Table};
use crate::time_it;
use fenestra_base::time::Timestamp;
use fenestra_temporal::{AttrSchema, TemporalStore};

/// Run E7.
pub fn run() -> Table {
    let mut t = Table::new(
        "E7: temporal store microbenchmarks",
        &["operation", "n", "wall_ms", "ops_per_sec"],
    );
    let n: u64 = 100_000;
    let visitors = 1_000u64;

    // assert (cardinality-many)
    let mut store = TemporalStore::without_wal();
    let ids: Vec<_> = (0..visitors)
        .map(|v| store.named_entity(format!("e{v}").as_str()))
        .collect();
    let (_, secs) = time_it(|| {
        for i in 0..n {
            store
                .assert_at(
                    ids[(i % visitors) as usize],
                    "tag",
                    i as i64,
                    Timestamp::new(i + 1),
                )
                .unwrap();
        }
    });
    t.row(vec![
        "assert (many)".into(),
        n.to_string(),
        fmt_f(secs * 1e3),
        fmt_f(n as f64 / secs),
    ]);

    // replace (cardinality-one) — the paper's hot path
    let mut store = TemporalStore::without_wal();
    store.declare_attr("room", AttrSchema::one());
    let ids: Vec<_> = (0..visitors)
        .map(|v| store.named_entity(format!("v{v}").as_str()))
        .collect();
    let (_, secs) = time_it(|| {
        for i in 0..n {
            store
                .replace_at(
                    ids[(i % visitors) as usize],
                    "room",
                    format!("room{}", i % 17).as_str(),
                    Timestamp::new(i + 1),
                )
                .unwrap();
        }
    });
    t.row(vec![
        "replace (one)".into(),
        n.to_string(),
        fmt_f(secs * 1e3),
        fmt_f(n as f64 / secs),
    ]);

    // current-state point reads on that store
    let reads = 200_000u64;
    let (_, secs) = time_it(|| {
        let mut acc = 0usize;
        for i in 0..reads {
            if store
                .current()
                .value(ids[(i % visitors) as usize], "room")
                .is_some()
            {
                acc += 1;
            }
        }
        acc
    });
    t.row(vec![
        "current point read".into(),
        reads.to_string(),
        fmt_f(secs * 1e3),
        fmt_f(reads as f64 / secs),
    ]);

    // as-of point reads (half-way probe over deep history)
    let probe = Timestamp::new(n / 2);
    let (_, secs) = time_it(|| {
        let mut acc = 0usize;
        for i in 0..reads {
            if store
                .as_of(probe)
                .value(ids[(i % visitors) as usize], "room")
                .is_some()
            {
                acc += 1;
            }
        }
        acc
    });
    t.row(vec![
        "as-of point read".into(),
        reads.to_string(),
        fmt_f(secs * 1e3),
        fmt_f(reads as f64 / secs),
    ]);

    // full current snapshot scan
    let (count, secs) = time_it(|| store.current().facts().count());
    t.row(vec![
        "current full scan".into(),
        count.to_string(),
        fmt_f(secs * 1e3),
        fmt_f(count as f64 / secs),
    ]);

    // GC of closed history
    let before = store.stored_fact_count();
    let (reclaimed, secs) = time_it(|| store.gc(Timestamp::new(n)));
    t.row(vec![
        format!("gc ({before} facts)"),
        reclaimed.to_string(),
        fmt_f(secs * 1e3),
        fmt_f(reclaimed as f64 / secs.max(1e-9)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_runs_and_reports_sane_throughput() {
        let t = super::run();
        assert_eq!(t.rows.len(), 6);
        // Replace throughput should comfortably exceed 100k ops/s in
        // debug... keep the bar low for CI machines: > 10k.
        let replace_ops: f64 = t.rows[1][3].parse().unwrap();
        assert!(replace_ops > 10_000.0, "replace {replace_ops} ops/s");
    }
}
