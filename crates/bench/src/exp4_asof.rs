//! E4 — §3.2 claim: "queryable state … enables the users to query the
//! state on-demand, potentially referring to historical data. This
//! would not be possible using only stream processing technologies."
//!
//! The stream-only way to answer "where was everyone at time T?" is to
//! replay the event log up to T. The state repository answers from its
//! timelines. We sweep history length and compare per-query latency.

use crate::table::{fmt_f, Table};
use crate::time_it;
use fenestra_base::time::Timestamp;
use fenestra_temporal::{AttrSchema, TemporalStore};

/// Build a store with `n` replace transitions over `visitors` visitors,
/// returning it (WAL enabled so the replay baseline can use it).
fn build(n: u64, visitors: u64) -> TemporalStore {
    let mut s = TemporalStore::new();
    s.declare_attr("room", AttrSchema::one());
    let ids: Vec<_> = (0..visitors)
        .map(|v| s.named_entity(format!("v{v}").as_str()))
        .collect();
    for i in 0..n {
        let v = ids[(i % visitors) as usize];
        let room = format!("room{}", (i * 7) % 20);
        s.replace_at(v, "room", room.as_str(), Timestamp::new(i + 1))
            .unwrap();
    }
    s
}

/// Run E4.
pub fn run() -> Table {
    let mut t = Table::new(
        "E4: historical point query — as-of vs log replay",
        &[
            "history_len",
            "asof_us",
            "replay_ms",
            "speedup",
            "store_facts",
        ],
    );
    let visitors = 50;
    for n in [1_000u64, 10_000, 50_000, 200_000] {
        let store = build(n, visitors);
        let probe = Timestamp::new(n / 2);
        let queries = 200u64;
        // As-of queries against the store.
        let (_, asof_secs) = time_it(|| {
            let mut acc = 0usize;
            for q in 0..queries {
                let e = store
                    .lookup_entity(format!("v{}", q % visitors).as_str())
                    .unwrap();
                if store.as_of(probe).value(e, "room").is_some() {
                    acc += 1;
                }
            }
            acc
        });
        // Replay baseline: rebuild the prefix of the journal up to the
        // probe, then read current state (what a stream-only system
        // must do). One replay serves one query batch at one instant.
        let (_, replay_secs) = time_it(|| {
            let cut = store
                .wal()
                .iter()
                .position(|op| match op {
                    fenestra_temporal::WalOp::Replace { t, .. } => *t > probe,
                    _ => false,
                })
                .unwrap_or(store.wal().len());
            let prefix = &store.wal()[..cut];
            let replayed = TemporalStore::replay(prefix).unwrap();
            let mut acc = 0usize;
            for q in 0..queries {
                if let Some(e) = replayed.lookup_entity(format!("v{}", q % visitors).as_str()) {
                    if replayed.current().value(e, "room").is_some() {
                        acc += 1;
                    }
                }
            }
            acc
        });
        let asof_us = asof_secs * 1e6 / queries as f64;
        let replay_ms = replay_secs * 1e3;
        t.row(vec![
            n.to_string(),
            fmt_f(asof_us),
            fmt_f(replay_ms),
            format!(
                "{:.0}x",
                (replay_secs / queries as f64) / (asof_secs / queries as f64)
            ),
            store.stored_fact_count().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_shape_holds() {
        let t = super::run();
        // At the largest history, as-of must beat replay by a wide
        // margin per query.
        let last = t.rows.last().unwrap();
        let speedup: f64 = last[3].trim_end_matches('x').parse().unwrap();
        assert!(speedup > 10.0, "as-of should dominate replay: {speedup}x");
    }
}
