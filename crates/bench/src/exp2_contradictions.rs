//! E2 — §1 claim: with a fixed window over the security service's
//! sensor stream, "it is possible that a visitor moves through
//! multiple rooms within the scope of a single window … the erroneous
//! conclusion that the visitor is simultaneously in multiple rooms."
//!
//! We probe the building trace once per minute. The windowed view
//! treats every position event in the window as valid; the state view
//! asks `as_of(probe)`. Metrics: contradiction rate (fraction of
//! visible visitors with >1 room) and position accuracy vs the oracle.

use crate::table::{fmt_f, Table};
use fenestra_base::time::Timestamp;
use fenestra_base::value::Value;
use fenestra_core::Engine;
use fenestra_temporal::AttrSchema;
use fenestra_workloads::{BuildingConfig, BuildingWorkload};
use std::collections::HashMap;

fn workload() -> BuildingWorkload {
    BuildingWorkload::generate(&BuildingConfig {
        visitors: 30,
        rooms: 12,
        mean_dwell_ms: 90_000,
        duration_ms: 3_600_000,
        seed: 77,
    })
}

/// Run E2.
pub fn run() -> Table {
    let w = workload();
    let probes: Vec<Timestamp> = (300_000..3_600_000u64)
        .step_by(60_000)
        .map(Timestamp::new)
        .collect();
    let mut t = Table::new(
        format!(
            "E2: contradictory state ({} moves, 30 visitors, probes each minute)",
            w.events.len()
        ),
        &[
            "approach",
            "window",
            "contradiction_rate",
            "accuracy",
            "visible_visitors",
        ],
    );

    for window_s in [60u64, 300, 900, 3600] {
        let window_ms = window_s * 1000;
        let mut contradicted = 0usize;
        let mut visible = 0usize;
        let mut correct = 0usize;
        for &probe in &probes {
            let mut rooms: HashMap<&str, Vec<&str>> = HashMap::new();
            for e in &w.events {
                if e.ts <= probe && e.ts.millis() + window_ms > probe.millis() {
                    rooms
                        .entry(e.get("visitor").unwrap().as_str().unwrap())
                        .or_default()
                        .push(e.get("room").unwrap().as_str().unwrap());
                }
            }
            for (v, rs) in &rooms {
                visible += 1;
                if rs.len() > 1 {
                    contradicted += 1;
                }
                // Windowed "answer": most recent event in window — even
                // giving the baseline this best-case disambiguation.
                let answer = rs.last().copied();
                if answer == w.true_room_at(v, probe) {
                    correct += 1;
                }
            }
        }
        t.row(vec![
            "window".into(),
            format!("{window_s}s"),
            fmt_f(contradicted as f64 / visible.max(1) as f64),
            fmt_f(correct as f64 / visible.max(1) as f64),
            format!("{:.1}/probe", visible as f64 / probes.len() as f64),
        ]);
    }

    // Explicit state.
    let mut engine = Engine::with_defaults();
    engine.declare_attr("room", AttrSchema::one());
    engine
        .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
        .unwrap();
    engine.run(w.events.iter().cloned());
    engine.finish();
    let store = engine.store();
    let mut visible = 0usize;
    let mut correct = 0usize;
    let contradicted = 0usize; // cardinality-one: impossible by construction
    for &probe in &probes {
        for v in 0..30 {
            let name = format!("v{v}");
            let Some(e) = store.lookup_entity(name.as_str()) else {
                continue;
            };
            let rooms = store.as_of(probe).values(e, "room");
            assert!(rooms.len() <= 1, "store contradiction — impossible");
            if let Some(r) = rooms.first() {
                visible += 1;
                if Some(*r) == w.true_room_at(&name, probe).map(Value::str) {
                    correct += 1;
                }
            }
        }
    }
    t.row(vec![
        "explicit-state".into(),
        "replace rule".into(),
        fmt_f(contradicted as f64),
        fmt_f(correct as f64 / visible.max(1) as f64),
        format!("{:.1}/probe", visible as f64 / probes.len() as f64),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_shape_holds() {
        let t = super::run();
        let state = t.rows.last().unwrap();
        assert_eq!(state[2], "0", "state never contradicts");
        assert_eq!(state[3], "1.00", "state positions exact");
        // Large windows contradict heavily.
        let w3600 = &t.rows[3];
        assert!(
            w3600[2].parse::<f64>().unwrap() > 0.5,
            "hour-long window should contradict most visitors: {}",
            w3600[2]
        );
    }
}
