//! E11 — ablations over Fenestra's own design choices (not a paper
//! claim; DESIGN.md calls these out as knobs worth quantifying):
//!
//! * WAL journaling on/off (durability tax on the store hot path);
//! * interaction semantics (`StateFirst` / `StreamFirst` / `Snapshot`);
//! * lateness bound (reorder-buffer cost when input is in order);
//! * single-threaded vs pipelined executor on a window pipeline;
//! * auto-reasoning on/off under classification churn.

use crate::table::{fmt_f, Table};
use crate::time_it;
use fenestra_base::expr::Expr;
use fenestra_base::record::Event;
use fenestra_base::time::{Duration, Timestamp};
use fenestra_base::value::Value;
use fenestra_core::{Engine, EngineConfig, Semantics};
use fenestra_reason::{Axiom, Ontology};
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::ops::filter::Filter;
use fenestra_stream::parallel::ParallelExecutor;
use fenestra_stream::watermark::WatermarkPolicy;
use fenestra_stream::window::time::TimeWindowOp;
use fenestra_temporal::{AttrSchema, TemporalStore};
use fenestra_workloads::{ClickstreamConfig, ClickstreamWorkload};

const RULES: &str = r#"
    rule enter:
      on clicks where action == "enter"
      replace $(user).status = "active"
    rule leave:
      on clicks where action == "leave"
      if state($(user)).status == "active"
      retract $(user).status = "active"
"#;

fn engine_throughput(events: &[Event], cfg: EngineConfig) -> f64 {
    let mut engine = Engine::new(cfg);
    engine.declare_attr("status", AttrSchema::one());
    engine.add_rules_text(RULES).unwrap();
    let (_, secs) = time_it(|| {
        engine.run(events.iter().cloned());
        engine.finish();
    });
    events.len() as f64 / secs
}

/// Run E11.
pub fn run() -> Table {
    let mut t = Table::new(
        "E11: ablations over Fenestra design choices",
        &["knob", "setting", "metric", "value"],
    );

    // --- WAL on/off on the store hot path. ---------------------------------
    let n = 100_000u64;
    for wal in [true, false] {
        let mut store = if wal {
            TemporalStore::new()
        } else {
            TemporalStore::without_wal()
        };
        store.declare_attr("room", AttrSchema::one());
        let ids: Vec<_> = (0..500u64)
            .map(|v| store.named_entity(format!("v{v}").as_str()))
            .collect();
        let (_, secs) = time_it(|| {
            for i in 0..n {
                store
                    .replace_at(
                        ids[(i % 500) as usize],
                        "room",
                        format!("r{}", i % 13).as_str(),
                        Timestamp::new(i + 1),
                    )
                    .unwrap();
            }
        });
        t.row(vec![
            "WAL journaling".into(),
            if wal { "on" } else { "off" }.into(),
            "replace ops/s".into(),
            fmt_f(n as f64 / secs),
        ]);
    }

    // --- Interaction semantics. --------------------------------------------
    let w = ClickstreamWorkload::generate(&ClickstreamConfig {
        users: 50,
        sessions: 400,
        ..Default::default()
    });
    for (name, sem) in [
        ("StateFirst", Semantics::StateFirst),
        ("StreamFirst", Semantics::StreamFirst),
        ("Snapshot", Semantics::Snapshot),
    ] {
        let tput = engine_throughput(
            &w.events,
            EngineConfig {
                semantics: sem,
                ..EngineConfig::default()
            },
        );
        t.row(vec![
            "semantics".into(),
            name.into(),
            "events/s".into(),
            fmt_f(tput),
        ]);
    }

    // --- Lateness bound (in-order input pays the buffer anyway). ------------
    for lateness in [0u64, 1_000, 60_000] {
        let tput = engine_throughput(
            &w.events,
            EngineConfig {
                max_lateness: Duration::millis(lateness),
                ..EngineConfig::default()
            },
        );
        t.row(vec![
            "lateness bound".into(),
            format!("{lateness}ms"),
            "events/s".into(),
            fmt_f(tput),
        ]);
    }

    // --- Executor: single-threaded vs pipelined. -----------------------------
    let events: Vec<Event> = (0..80_000u64)
        .map(|i| Event::from_pairs("s", i, [("v", (i % 97) as i64)]))
        .collect();
    let make_graph = || {
        let mut g = Graph::new();
        let f = g.add_op(Filter::new(Expr::name("v").ge(Expr::lit(0i64))));
        g.connect_source("s", f);
        let win = g.add_op(
            TimeWindowOp::tumbling(Duration::millis(1000)).aggregate(AggSpec::sum("v", "total")),
        );
        g.connect(f, win);
        let sink = g.add_sink();
        g.connect(win, sink.node);
        (g, sink)
    };
    {
        let (g, sink) = make_graph();
        let mut ex = Executor::new(g);
        let (_, secs) = time_it(|| {
            ex.run(events.iter().cloned());
            ex.finish();
        });
        let _ = sink.take();
        t.row(vec![
            "executor".into(),
            "single-threaded".into(),
            "events/s".into(),
            fmt_f(events.len() as f64 / secs),
        ]);
    }
    {
        let (g, sink) = make_graph();
        let mut ex = ParallelExecutor::new(g, WatermarkPolicy::strict()).unwrap();
        let (_, secs) = time_it(|| {
            ex.run(events.iter().cloned());
            ex.finish();
        });
        let _ = sink.take();
        t.row(vec![
            "executor".into(),
            "pipelined".into(),
            "events/s".into(),
            fmt_f(events.len() as f64 / secs),
        ]);
    }

    // --- Auto-reasoning under churn. -----------------------------------------
    let churn: Vec<Event> = (0..2_000u64)
        .map(|i| {
            Event::from_pairs(
                "catalog",
                i + 1,
                [
                    ("product", Value::str(&format!("p{}", i % 100))),
                    ("class", Value::str(&format!("c0_{}", i % 4))),
                ],
            )
        })
        .collect();
    let taxonomy = {
        let mut axioms = Vec::new();
        for d in 0..4 {
            for w in 0..4 {
                axioms.push(Axiom::SubClassOf(
                    Value::str(&format!("c{d}_{w}")),
                    Value::str(&format!("c{}_{}", d + 1, w / 2)),
                ));
            }
        }
        Ontology::from_axioms(axioms)
    };
    for auto in [false, true] {
        let mut engine = Engine::new(EngineConfig {
            auto_reason: auto,
            ..EngineConfig::default()
        });
        engine.declare_attr("type", AttrSchema::one());
        engine.set_ontology(taxonomy.clone());
        engine
            .add_rules_text("rule cls:\n on catalog\n replace $(product).type = class")
            .unwrap();
        let (_, secs) = time_it(|| {
            engine.run(churn.iter().cloned());
            engine.finish();
            if !auto {
                engine.reason_now().unwrap();
            }
        });
        t.row(vec![
            "reasoning".into(),
            if auto {
                "per-transition"
            } else {
                "once-at-end"
            }
            .into(),
            "events/s".into(),
            fmt_f(churn.len() as f64 / secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_runs() {
        let t = super::run();
        assert_eq!(t.rows.len(), 12);
        // WAL-off must not be slower than WAL-on (modulo noise: allow
        // 20% slack).
        let on: f64 = t.rows[0][3].parse().unwrap();
        let off: f64 = t.rows[1][3].parse().unwrap();
        assert!(off > on * 0.8, "wal-off {off} vs wal-on {on}");
    }
}
