//! E1 — §1 claim: "windows with a predefined and fixed size might not
//! be suitable … A shorter observation time frame would be
//! meaningless, whereas a larger time frame could waste computational
//! resources."
//!
//! One click-stream trace, three session detectors:
//! * fixed tumbling windows (size sweep) — sessions fragment/merge;
//! * gap-based session windows (gap sweep) — boundaries are guessed;
//! * explicit state driven by enter/leave — boundaries are exact.
//!
//! Metrics: detected session count vs truth, fraction of true sessions
//! recovered *exactly* (same user, start, end), and a memory proxy
//! (events retained by the operator / open state entries).

use crate::table::{fmt_f, Table};
use fenestra_base::time::{Duration, Timestamp};
use fenestra_base::value::Value;
use fenestra_core::Engine;
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::window::session::SessionWindowOp;
use fenestra_stream::window::time::TimeWindowOp;
use fenestra_temporal::AttrSchema;
use fenestra_workloads::{ClickstreamConfig, ClickstreamWorkload};

fn workload() -> ClickstreamWorkload {
    ClickstreamWorkload::generate(&ClickstreamConfig {
        users: 40,
        sessions: 300,
        mean_session_ms: 60_000.0,
        session_sigma: 1.2,
        ..Default::default()
    })
}

/// Fraction of true sessions whose (user, start, end) is recovered
/// exactly by `(user, start, end)` rows.
fn exact_fraction(truth: &ClickstreamWorkload, detected: &[(String, Timestamp, Timestamp)]) -> f64 {
    let hits = truth
        .sessions
        .iter()
        .filter(|s| {
            detected
                .iter()
                .any(|(u, a, b)| *u == s.user && *a == s.start && *b == s.end)
        })
        .count();
    hits as f64 / truth.sessions.len() as f64
}

/// Run E1.
pub fn run() -> Table {
    let w = workload();
    let mut t = Table::new(
        format!(
            "E1: session detection ({} true sessions, mean {:.0}s)",
            w.sessions.len(),
            w.mean_session_len() / 1000.0
        ),
        &["approach", "param", "detected", "exact_frac", "mem_proxy"],
    );

    // Fixed tumbling windows.
    for secs in [15u64, 30, 60, 120, 300] {
        let mut g = Graph::new();
        let win = g.add_op(
            TimeWindowOp::tumbling(Duration::secs(secs))
                .group_by(["user"])
                .aggregate(AggSpec::count("n")),
        );
        g.connect_source("clicks", win);
        let sink = g.add_sink();
        g.connect(win, sink.node);
        let mut ex = Executor::new(g);
        ex.run(w.events.iter().cloned());
        ex.finish();
        let rows = sink.take();
        let detected: Vec<(String, Timestamp, Timestamp)> = rows
            .iter()
            .map(|e| {
                (
                    e.get("user").unwrap().as_str().unwrap().to_owned(),
                    e.get("window_start").unwrap().as_time().unwrap(),
                    e.get("window_end").unwrap().as_time().unwrap(),
                )
            })
            .collect();
        t.row(vec![
            "tumbling".into(),
            format!("{secs}s"),
            detected.len().to_string(),
            fmt_f(exact_fraction(&w, &detected)),
            // A tumbling window retains up to one window of events.
            format!("~{}s of events", secs),
        ]);
    }

    // Session windows (gap sweep).
    for gap_s in [5u64, 15, 60, 180] {
        let mut g = Graph::new();
        let win = g.add_op(
            SessionWindowOp::new(Duration::secs(gap_s))
                .group_by(["user"])
                .aggregate(AggSpec::count("n")),
        );
        g.connect_source("clicks", win);
        let sink = g.add_sink();
        g.connect(win, sink.node);
        let mut ex = Executor::new(g);
        ex.run(w.events.iter().cloned());
        ex.finish();
        let rows = sink.take();
        let detected: Vec<(String, Timestamp, Timestamp)> = rows
            .iter()
            .map(|e| {
                (
                    e.get("user").unwrap().as_str().unwrap().to_owned(),
                    e.get("window_start").unwrap().as_time().unwrap(),
                    e.get("window_end").unwrap().as_time().unwrap(),
                )
            })
            .collect();
        t.row(vec![
            "session-window".into(),
            format!("gap {gap_s}s"),
            detected.len().to_string(),
            fmt_f(exact_fraction(&w, &detected)),
            format!("gap-dependent"),
        ]);
    }

    // Explicit state.
    let mut engine = Engine::with_defaults();
    engine.declare_attr("status", AttrSchema::one());
    engine
        .add_rules_text(
            r#"
            rule enter:
              on clicks where action == "enter"
              replace $(user).status = "active"
            rule leave:
              on clicks where action == "leave"
              if state($(user)).status == "active"
              retract $(user).status = "active"
            "#,
        )
        .unwrap();
    engine.run(w.events.iter().cloned());
    engine.finish();
    let store = engine.store();
    let mut detected: Vec<(String, Timestamp, Timestamp)> = Vec::new();
    let mut max_open = 0usize;
    {
        // Collect every closed status interval as a detected session.
        let users: std::collections::BTreeSet<&str> =
            w.sessions.iter().map(|s| s.user.as_str()).collect();
        for u in users {
            if let Some(e) = store.lookup_entity(u) {
                for (iv, v, _) in store.history(e, "status") {
                    if v == Value::str("active") {
                        if let Some(end) = iv.end {
                            detected.push((u.to_owned(), iv.start, end));
                        }
                    }
                }
            }
        }
        // Memory proxy: the peak number of simultaneously open sessions
        // equals the peak active-user count in the oracle.
        for s in &w.sessions {
            max_open = max_open.max(w.active_at(s.start));
        }
    }
    t.row(vec![
        "explicit-state".into(),
        "enter/leave rules".into(),
        detected.len().to_string(),
        fmt_f(exact_fraction(&w, &detected)),
        format!("{max_open} open facts peak"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_shape_holds() {
        let t = super::run();
        // Last row is the explicit-state approach: exact_frac must be 1.
        let state_row = t.rows.last().unwrap();
        assert_eq!(state_row[3], "1.00", "explicit state recovers all sessions");
        // No fixed window achieves exact recovery.
        for r in &t.rows[..5] {
            assert_ne!(r[3], "1.00", "tumbling {} should not be exact", r[1]);
        }
    }
}
