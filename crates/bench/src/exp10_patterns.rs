//! E10 — §3.3 open question 1: "we envision more complex situations in
//! which a state transition is determined by multiple streaming
//! elements."
//!
//! Multi-event rule triggers are CEP patterns. We measure matcher
//! throughput as the sequence length grows, and the end-to-end cost of
//! a pattern-triggered state rule vs a single-event rule on the same
//! stream.

use crate::table::{fmt_f, Table};
use crate::time_it;
use fenestra_base::expr::Expr;
use fenestra_base::record::Event;
use fenestra_base::time::Duration;
use fenestra_base::value::Value;
use fenestra_cep::{EventPattern, Matcher, Pattern, PatternSpec};
use fenestra_core::Engine;
use fenestra_temporal::AttrSchema;

fn events(n: u64, users: u64) -> Vec<Event> {
    (0..n)
        .map(|i| {
            let kind = match i % 5 {
                0 => "a",
                1 => "b",
                2 => "c",
                3 => "d",
                _ => "e",
            };
            Event::from_pairs(
                "s",
                i + 1,
                [
                    ("kind", Value::str(kind)),
                    ("user", Value::str(&format!("u{}", (i / 5) % users))),
                ],
            )
        })
        .collect()
}

fn seq_pattern(len: usize, within_ms: u64) -> PatternSpec {
    let kinds = ["a", "b", "c", "d", "e"];
    let atoms: Vec<Pattern> = (0..len)
        .map(|i| {
            let mut atom =
                EventPattern::on("s", kinds[i]).filter(Expr::name("kind").eq(Expr::lit(kinds[i])));
            if i > 0 {
                atom = atom.filter(
                    Expr::name("user").eq(Expr::name(format!("{}.user", kinds[0]).as_str())),
                );
            }
            Pattern::atom(atom)
        })
        .collect();
    PatternSpec::new(Pattern::seq(atoms), Duration::millis(within_ms))
}

/// Run E10.
pub fn run() -> Table {
    let mut t = Table::new(
        "E10: multi-event triggers — matcher scaling and rule overhead",
        &["config", "events", "matches", "wall_ms", "kevents_per_sec"],
    );
    let evs = events(30_000, 100);

    for len in [2usize, 3, 4, 5] {
        let mut matcher = Matcher::new(seq_pattern(len, 50)).unwrap();
        let mut matches = 0usize;
        let (_, secs) = time_it(|| {
            for e in &evs {
                matches += matcher.on_event(e).len();
            }
        });
        t.row(vec![
            format!("seq len {len} (within 50ms)"),
            evs.len().to_string(),
            matches.to_string(),
            fmt_f(secs * 1e3),
            fmt_f(evs.len() as f64 / secs / 1e3),
        ]);
    }

    // End-to-end: single-event rule vs pattern rule in the engine.
    let mut single = Engine::with_defaults();
    single.declare_attr("last", AttrSchema::one());
    single
        .add_rules_text("rule single:\n on s where kind == \"e\"\n replace $(user).last = ts")
        .unwrap();
    let (_, single_secs) = time_it(|| {
        single.run(evs.iter().cloned());
        single.finish();
    });
    t.row(vec![
        "engine: single-event rule".into(),
        evs.len().to_string(),
        single.metrics().rule_fired.to_string(),
        fmt_f(single_secs * 1e3),
        fmt_f(evs.len() as f64 / single_secs / 1e3),
    ]);

    let mut pattern = Engine::with_defaults();
    pattern.declare_attr("funnel", AttrSchema::one());
    pattern
        .add_rules_text(
            r#"
            rule funnel:
              on pattern (x: s where kind == "a")
                 then (y: s where kind == "b" and user == x.user)
                 within 50ms
              replace $(x.user).funnel = y.ts
            "#,
        )
        .unwrap();
    let (_, pat_secs) = time_it(|| {
        pattern.run(evs.iter().cloned());
        pattern.finish();
    });
    t.row(vec![
        "engine: 2-step pattern rule".into(),
        evs.len().to_string(),
        pattern.metrics().rule_fired.to_string(),
        fmt_f(pat_secs * 1e3),
        fmt_f(evs.len() as f64 / pat_secs / 1e3),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_shape_holds() {
        let t = super::run();
        // Longer sequences match less often (stricter) …
        let m2: usize = t.rows[0][2].parse().unwrap();
        let m5: usize = t.rows[3][2].parse().unwrap();
        assert!(m2 > 0);
        assert!(m5 <= m2);
        // … and both engine variants fire.
        let single: usize = t.rows[4][2].parse().unwrap();
        let pattern: usize = t.rows[5][2].parse().unwrap();
        assert!(single > 0 && pattern > 0);
    }
}
