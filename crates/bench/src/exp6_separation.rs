//! E6 — §3.2 claim: "the proposed approach decouples the management of
//! state updates from the stream processing logic … relieves the
//! stream processing system from analyzing information related to the
//! products and their classification, thus simplifying the stream
//! processing rules."
//!
//! We build the §3.1 dashboard twice and measure the *shape* of each
//! solution: how many dataflow operators the stream program needs, how
//! many declarative rule lines the state program needs, and whether
//! they agree with the oracle. The monolithic version must thread the
//! catalog stream through the dataflow (join + bookkeeping); the
//! Fenestra version keeps two one-line rules and a two-operator
//! pipeline.

use crate::table::{fmt_f, Table};
use fenestra_base::expr::Expr;
use fenestra_base::time::Duration;
use fenestra_core::Engine;
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::ops::join::WindowJoin;
use fenestra_stream::ops::map::Derive;
use fenestra_stream::ops::state::StateEnrich;
use fenestra_stream::window::time::TimeWindowOp;
use fenestra_temporal::AttrSchema;
use fenestra_workloads::{EcommerceConfig, EcommerceWorkload};

const STATE_RULES: &str = r#"
    rule classify:
      on catalog
      replace $(product).class = class
"#;

fn workload() -> EcommerceWorkload {
    EcommerceWorkload::generate(&EcommerceConfig {
        products: 80,
        classes: 6,
        sales: 1_500,
        reclass_prob: 0.04,
        ..Default::default()
    })
}

/// Correctly classified revenue rows (fraction of sales carrying the
/// oracle class).
fn score(rows: &[fenestra_base::record::Event], w: &EcommerceWorkload) -> f64 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for e in rows {
        total += 1;
        let p = e.get("product").unwrap().as_str().unwrap();
        if e.get("class").unwrap().as_str() == w.true_class_at(p, e.ts) {
            correct += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Run E6.
pub fn run() -> Table {
    let w = workload();
    let mut t = Table::new(
        "E6: separation of concerns — dashboard implementations compared",
        &[
            "approach",
            "stream_operators",
            "rule_lines",
            "per_sale_accuracy",
            "notes",
        ],
    );

    // --- Monolithic window program: everything in the dataflow. -----------
    let mut g = Graph::new();
    let join = g.add_op(WindowJoin::new(
        "sales",
        "product",
        "catalog",
        "product",
        Duration::secs(600),
    ));
    g.connect_source("sales", join);
    g.connect_source("catalog", join);
    let rev = g.add_op(Derive::new(
        "revenue",
        Expr::name("qty").mul(Expr::name("price")),
    ));
    g.connect(join, rev);
    let enriched_sink = g.add_sink();
    g.connect(rev, enriched_sink.node);
    let win = g.add_op(
        TimeWindowOp::tumbling(Duration::minutes(1))
            .group_by(["class"])
            .aggregate(AggSpec::sum("revenue", "total")),
    );
    g.connect(rev, win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    let mono_ops = g.len() - 2; // sinks excluded
    let mut ex = Executor::new(g);
    ex.run(w.events.iter().cloned());
    ex.finish();
    let mono_acc = score(&enriched_sink.take(), &w);
    let _ = sink.take();
    t.row(vec![
        "monolithic-window".into(),
        mono_ops.to_string(),
        "0".into(),
        fmt_f(mono_acc),
        "catalog must flow through the dataflow; accuracy window-bound".into(),
    ]);

    // --- Fenestra: rules + short pipeline. ---------------------------------
    let mut engine = Engine::with_defaults();
    engine.declare_attr("class", AttrSchema::one());
    engine.add_rules_text(STATE_RULES).unwrap();
    let store = engine.shared_store();
    let mut g = Graph::new();
    let enrich = g.add_op(StateEnrich::new(store, "product").attr("class", "class"));
    g.connect_source("sales", enrich);
    let rev = g.add_op(Derive::new(
        "revenue",
        Expr::name("qty").mul(Expr::name("price")),
    ));
    g.connect(enrich, rev);
    let enriched_sink = g.add_sink();
    g.connect(rev, enriched_sink.node);
    let win = g.add_op(
        TimeWindowOp::tumbling(Duration::minutes(1))
            .group_by(["class"])
            .aggregate(AggSpec::sum("revenue", "total")),
    );
    g.connect(rev, win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    let fen_ops = g.len() - 2;
    engine.set_graph(g).unwrap();
    engine.run(w.events.iter().cloned());
    engine.finish();
    let fen_acc = score(&enriched_sink.take(), &w);
    let _ = sink.take();
    let rule_lines = STATE_RULES.trim().lines().count();
    t.row(vec![
        "fenestra (rules + state)".into(),
        fen_ops.to_string(),
        rule_lines.to_string(),
        fmt_f(fen_acc),
        "classification logic isolated in one declarative rule".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_shape_holds() {
        let t = super::run();
        let mono = &t.rows[0];
        let fen = &t.rows[1];
        assert!(
            fen[3].parse::<f64>().unwrap() > mono[3].parse::<f64>().unwrap(),
            "state-based accuracy should exceed window-bound accuracy"
        );
        assert_eq!(fen[3], "1.00");
        assert!(
            fen[1].parse::<usize>().unwrap() <= mono[1].parse::<usize>().unwrap(),
            "stream program no larger"
        );
    }
}
