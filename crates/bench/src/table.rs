//! Minimal aligned-table rendering for experiment output.

use std::fmt;

/// A simple table: header + rows of strings.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (experiment id + claim).
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as markdown (used verbatim in EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.header.iter().map(|_| "---|").collect::<String>()
        ));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths: Vec<usize> = self
            .header
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:width$}  ", c, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.header)?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

/// Format a float with sensible precision.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_markdown() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("long_column"));
        let md = t.to_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.5), "1234", "round-half-to-even");
        assert_eq!(fmt_f(7.3456), "7.35");
        assert_eq!(fmt_f(0.01234), "0.0123");
    }
}
