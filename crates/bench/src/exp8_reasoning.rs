//! E8 — §3 claim: "the state component can exploit domain information
//! — for instance in the form of ontologies — to derive new knowledge
//! from the explicit information it stores" (and §3.1: "a taxonomy to
//! organize the products … automatically derive sub-classes
//! relations").
//!
//! Closure cost over a product taxonomy, sweeping taxonomy depth, for
//! naive vs semi-naive evaluation; plus the latency of maintaining the
//! materialization under a single reclassification, incremental (DRed)
//! vs full recompute.

use crate::table::{fmt_f, Table};
use crate::time_it;
use fenestra_base::value::{EntityId, Value};
use fenestra_reason::materialize::{naive, seminaive};
use fenestra_reason::triple::{id_resolver, Triple};
use fenestra_reason::{Axiom, IncrementalMaterializer, Ontology};

/// A `depth`-deep chain taxonomy with `width` leaf classes per level.
fn taxonomy(depth: usize) -> Ontology {
    let mut axioms = Vec::new();
    for d in 0..depth {
        for w in 0..4 {
            // level d class w ⊑ level d+1 class w/2
            axioms.push(Axiom::SubClassOf(
                Value::str(&format!("c{d}_{w}")),
                Value::str(&format!("c{}_{}", d + 1, w / 2)),
            ));
        }
    }
    Ontology::from_axioms(axioms)
}

fn base_facts(products: usize, depth: usize) -> Vec<Triple> {
    let _ = depth;
    (0..products)
        .map(|p| {
            Triple::new(
                EntityId(p as u64),
                "type",
                Value::str(&format!("c0_{}", p % 4)),
            )
        })
        .collect()
}

/// Run E8.
pub fn run() -> Table {
    let mut t = Table::new(
        "E8: taxonomy reasoning — closure and incremental maintenance",
        &[
            "depth",
            "base_facts",
            "derived",
            "naive_ms",
            "seminaive_ms",
            "incr_update_us",
            "recompute_ms",
        ],
    );
    for depth in [2usize, 4, 8, 16] {
        let ont = taxonomy(depth);
        let base = base_facts(2_000, depth);
        let (derived_naive, naive_s) = time_it(|| naive(&base, &ont, &id_resolver));
        let (derived_semi, semi_s) = time_it(|| seminaive(&base, &ont, &id_resolver));
        assert_eq!(derived_naive, derived_semi, "strategies must agree");

        // Incremental: reclassify one product.
        let mut inc = IncrementalMaterializer::new(ont.clone(), Box::new(id_resolver));
        for f in &base {
            inc.insert(*f);
        }
        let victim = base[0];
        let (_, incr_s) = time_it(|| {
            inc.remove(&victim);
            inc.insert(Triple::new(victim.s, "type", Value::str("c0_3")));
        });
        // Recompute baseline for the same update.
        let mut base2 = base.clone();
        base2[0] = Triple::new(victim.s, "type", Value::str("c0_3"));
        let (_, recompute_s) = time_it(|| seminaive(&base2, &ont, &id_resolver));

        t.row(vec![
            depth.to_string(),
            base.len().to_string(),
            derived_semi.len().to_string(),
            fmt_f(naive_s * 1e3),
            fmt_f(semi_s * 1e3),
            fmt_f(incr_s * 1e6),
            fmt_f(recompute_s * 1e3),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_shape_holds() {
        let t = super::run();
        for r in &t.rows {
            let naive_ms: f64 = r[3].parse().unwrap();
            let semi_ms: f64 = r[4].parse().unwrap();
            let incr_us: f64 = r[5].parse().unwrap();
            let recompute_ms: f64 = r[6].parse().unwrap();
            // Semi-naive should not be dramatically slower than naive
            // (both reach the same fixpoint; semi-naive avoids
            // re-deriving).
            assert!(
                semi_ms <= naive_ms * 2.0,
                "semi {semi_ms} vs naive {naive_ms}"
            );
            // The incremental update should beat recomputation.
            assert!(
                incr_us / 1e3 < recompute_ms,
                "incremental {incr_us}us vs recompute {recompute_ms}ms"
            );
        }
        // Derived facts grow with depth.
        let d0: usize = t.rows[0][2].parse().unwrap();
        let d3: usize = t.rows[3][2].parse().unwrap();
        assert!(d3 > d0);
    }
}
