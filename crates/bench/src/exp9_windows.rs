//! E9 — baseline fidelity: the window substrate Fenestra is compared
//! against must itself be competently implemented, or every
//! state-vs-window comparison is a strawman. This experiment
//! reproduces the classic result of Li et al. (SIGMOD'05, cited as
//! \[10\] by the paper): pane-based sliding aggregation beats both
//! per-window recomputation and, for cheap aggregates, incremental
//! add/evict — with the gap growing as size/slide grows.

use crate::table::{fmt_f, Table};
use crate::time_it;
use fenestra_base::record::Event;
use fenestra_base::time::Duration;
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::window::time::{SlidingStrategy, TimeWindowOp};

fn events(n: u64) -> Vec<Event> {
    (0..n)
        .map(|i| {
            Event::from_pairs(
                "s",
                i * 10,
                [("v", ((i * 31) % 1000) as i64), ("k", (i % 8) as i64)],
            )
        })
        .collect()
}

fn run_strategy(evs: &[Event], size: u64, slide: u64, strat: SlidingStrategy) -> (usize, f64) {
    let mut g = Graph::new();
    let win = g.add_op(
        TimeWindowOp::sliding(Duration::millis(size), Duration::millis(slide))
            .strategy(strat)
            .group_by(["k"])
            .aggregate(AggSpec::sum("v", "total"))
            .aggregate(AggSpec::count("n")),
    );
    g.connect_source("s", win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    let mut ex = Executor::new(g);
    let (_, secs) = time_it(|| {
        ex.run(evs.iter().cloned());
        ex.finish();
    });
    (sink.take().len(), secs)
}

/// Run E9.
pub fn run() -> Table {
    let evs = events(60_000);
    let mut t = Table::new(
        "E9: sliding aggregation strategies (60k events, grouped sum+count)",
        &[
            "size/slide",
            "overlap",
            "recompute_ms",
            "incremental_ms",
            "panes_ms",
            "rows",
        ],
    );
    for (size, slide) in [
        (1_000u64, 1_000u64),
        (5_000, 1_000),
        (20_000, 1_000),
        (60_000, 2_000),
    ] {
        let mut results = Vec::new();
        let mut rows = Vec::new();
        for strat in [
            SlidingStrategy::Recompute,
            SlidingStrategy::Incremental,
            SlidingStrategy::Panes,
        ] {
            let (n, secs) = run_strategy(&evs, size, slide, strat);
            results.push(secs);
            rows.push(n);
        }
        assert_eq!(rows[0], rows[1]);
        assert_eq!(rows[1], rows[2]);
        t.row(vec![
            format!("{size}/{slide}"),
            format!("{}x", size / slide),
            fmt_f(results[0] * 1e3),
            fmt_f(results[1] * 1e3),
            fmt_f(results[2] * 1e3),
            rows[0].to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e9_shape_holds() {
        let t = super::run();
        // At the highest overlap, recomputation must be the slowest
        // strategy.
        let high = &t.rows[2];
        let recompute: f64 = high[2].parse().unwrap();
        let panes: f64 = high[4].parse().unwrap();
        assert!(
            recompute > panes,
            "recompute {recompute}ms should exceed panes {panes}ms at 20x overlap"
        );
    }
}
