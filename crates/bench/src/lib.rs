//! # fenestra-bench
//!
//! The experiment harness. The reproduced paper is a vision paper with
//! no evaluation section, so each experiment here operationalizes one
//! of its *claims* (see DESIGN.md §5 for the index and EXPERIMENTS.md
//! for measured results):
//!
//! | Exp | Claim |
//! |-----|-------|
//! | E1  | fixed windows are inadequate for sessions (§1) |
//! | E2  | windows yield contradictory state (§1) |
//! | E3  | windows lose old-but-valid classifications (§3.1) |
//! | E4  | explicit state makes history queryable (§3.2) |
//! | E5  | state-gating reduces processing (§1/§5) |
//! | E6  | separation of concerns simplifies rules (§3.2) |
//! | E7  | the temporal store is feasible as a state repository (§3) |
//! | E8  | reasoning over state is maintainable (§3) |
//! | E9  | the window substrate is a fair baseline (Li et al. panes) |
//! | E10 | multi-event transitions via CEP triggers (§3.3 Q1) |
//! | E11 | ablations over Fenestra's own design knobs |
//!
//! Each `expN` module exposes `run() -> Table`; the `experiments`
//! binary prints one or all. Criterion microbenches live in
//! `benches/`.

pub mod exp10_patterns;
pub mod exp11_ablations;
pub mod exp1_sessions;
pub mod exp2_contradictions;
pub mod exp3_classification;
pub mod exp4_asof;
pub mod exp5_gating;
pub mod exp6_separation;
pub mod exp7_store;
pub mod exp8_reasoning;
pub mod exp9_windows;
pub mod table;

pub use table::Table;

use std::time::Instant;

/// An experiment entry: `(id, title, runner)`.
pub type Experiment = (&'static str, &'static str, fn() -> Table);

/// Wall-clock a closure, returning `(result, elapsed_seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// All experiments in order, as `(id, title, runner)`.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        (
            "e1",
            "Session detection vs fixed windows",
            exp1_sessions::run,
        ),
        (
            "e2",
            "Contradictions in windowed state",
            exp2_contradictions::run,
        ),
        (
            "e3",
            "Classification joins: window vs state",
            exp3_classification::run,
        ),
        ("e4", "Historical queries: as-of vs replay", exp4_asof::run),
        ("e5", "State-gated processing", exp5_gating::run),
        ("e6", "Separation of concerns", exp6_separation::run),
        ("e7", "Temporal store microbenchmarks", exp7_store::run),
        (
            "e8",
            "Reasoning maintenance strategies",
            exp8_reasoning::run,
        ),
        (
            "e9",
            "Sliding-window aggregation strategies",
            exp9_windows::run,
        ),
        (
            "e10",
            "Multi-event rule triggers (CEP)",
            exp10_patterns::run,
        ),
        ("e11", "Design-choice ablations", exp11_ablations::run),
    ]
}
