//! E3 — §3.1 claim: with stream-only processing "it becomes impossible
//! to express all the processing by means of computations over sliding
//! windows. Indeed, the system must ensure that all the information
//! that builds up the most recent classification of products is taken
//! into account, independently from the time when such information was
//! generated."
//!
//! Sales join their product's classification. The windowed
//! stream–stream join only sees classification events within its
//! window; the stream–state join reads the classification valid at the
//! sale's timestamp. Metrics: fraction of sales classified at all,
//! fraction classified *correctly*, and the operator's memory proxy.

use crate::table::{fmt_f, Table};
use fenestra_base::time::Duration;
use fenestra_core::Engine;
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::ops::join::WindowJoin;
use fenestra_stream::ops::state::StateEnrich;
use fenestra_temporal::AttrSchema;
use fenestra_workloads::{EcommerceConfig, EcommerceWorkload};

fn workload() -> EcommerceWorkload {
    EcommerceWorkload::generate(&EcommerceConfig {
        products: 150,
        classes: 8,
        sales: 3_000,
        sale_gap_ms: 100,
        reclass_prob: 0.03,
        ..Default::default()
    })
}

/// Run E3.
pub fn run() -> Table {
    let w = workload();
    let mut t = Table::new(
        format!(
            "E3: sale classification ({} sales, {} catalog updates)",
            w.sale_count, w.catalog_count
        ),
        &[
            "approach",
            "window",
            "join_rows_per_sale",
            "correct",
            "mem_proxy",
        ],
    );

    for window_s in [10u64, 60, 300, 1800] {
        let mut g = Graph::new();
        let join = g.add_op(WindowJoin::new(
            "sales",
            "product",
            "catalog",
            "product",
            Duration::secs(window_s),
        ));
        g.connect_source("sales", join);
        g.connect_source("catalog", join);
        let sink = g.add_sink();
        g.connect(join, sink.node);
        let mut ex = Executor::new(g);
        ex.run(w.events.iter().cloned());
        ex.finish();
        let rows = sink.take();
        // A sale may join several catalog versions inside the window;
        // count per-sale outcomes: classified at all / any wrong class.
        use std::collections::HashMap;
        let mut per_sale: HashMap<(u64, &str), Vec<&str>> = HashMap::new();
        for e in &rows {
            let p = e.get("product").unwrap().as_str().unwrap();
            let c = e.get("class").unwrap().as_str().unwrap();
            per_sale.entry((e.ts.millis(), p)).or_default().push(c);
        }
        let classified = per_sale.len();
        let mut correct = 0usize;
        for ((ts, p), classes) in &per_sale {
            let truth = w.true_class_at(p, fenestra_base::time::Timestamp::new(*ts));
            // Correct only if the join yields exactly the true class
            // (ambiguous multi-matches are wrong answers for a
            // dashboard).
            if classes.len() == 1 && truth == Some(classes[0]) {
                correct += 1;
            }
        }
        // NB: can exceed 1.0 — a catalog event re-joins buffered
        // sales, producing duplicate/ambiguous rows; that ambiguity is
        // part of the window join's failure mode.
        t.row(vec![
            "window-join".into(),
            format!("{window_s}s"),
            fmt_f(classified as f64 / w.sale_count as f64),
            fmt_f(correct as f64 / w.sale_count as f64),
            format!("~{window_s}s buffered/side"),
        ]);
    }

    // Stream–state join.
    let mut engine = Engine::with_defaults();
    engine.declare_attr("class", AttrSchema::one());
    engine
        .add_rules_text("rule cls:\n on catalog\n replace $(product).class = class")
        .unwrap();
    let store = engine.shared_store();
    let mut g = Graph::new();
    let enrich = g.add_op(StateEnrich::new(store, "product").attr("class", "class"));
    g.connect_source("sales", enrich);
    let sink = g.add_sink();
    g.connect(enrich, sink.node);
    engine.set_graph(g).unwrap();
    engine.run(w.events.iter().cloned());
    engine.finish();
    let rows = sink.take();
    let mut classified = 0usize;
    let mut correct = 0usize;
    for e in &rows {
        let p = e.get("product").unwrap().as_str().unwrap();
        let c = e.get("class").unwrap().as_str();
        if c.is_some() {
            classified += 1;
        }
        if c == w.true_class_at(p, e.ts) {
            correct += 1;
        }
    }
    let open_facts = engine.store().open_fact_count();
    t.row(vec![
        "state-join".into(),
        "—".into(),
        fmt_f(classified as f64 / w.sale_count as f64),
        fmt_f(correct as f64 / w.sale_count as f64),
        format!("{open_facts} open facts (O(products))"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_shape_holds() {
        let t = super::run();
        let state = t.rows.last().unwrap();
        assert_eq!(state[2], "1.00", "state classifies every sale");
        assert_eq!(state[3], "1.00", "state classifies correctly");
        // Small windows classify almost nothing.
        let w10 = &t.rows[0];
        assert!(
            w10[3].parse::<f64>().unwrap() < 0.5,
            "10s window should miss most sales: {}",
            w10[3]
        );
        // Bigger windows classify more but stay below the state join.
        let w1800 = &t.rows[3];
        assert!(w1800[3].parse::<f64>().unwrap() < 1.0);
        assert!(
            w1800[3].parse::<f64>().unwrap() > w10[3].parse::<f64>().unwrap(),
            "coverage grows with window size"
        );
    }
}
