//! Replication failover smoke benchmark: what WAL shipping costs on
//! the ingest path, how far a warm follower runs behind, and what a
//! fenced failover loses (nothing acked) and takes (promotion time).
//!
//! Drives real `fenestrad` subprocesses through the full drill:
//!
//! 1. boot a leader (`--replicate`, `--fsync always`, 2 shards,
//!    periodic snapshots so segment rotation is exercised) and a warm
//!    follower (`--follow`);
//! 2. ingest N events on one pipelined connection, reading every
//!    durable ack — the throughput number, with shipping active;
//! 3. wait for the follower's queryable state to converge — the
//!    catch-up number;
//! 4. `kill -9` the leader, promote the follower
//!    (`{"cmd":"promote"}`) — the promotion number — and assert every
//!    durably-acked event is queryable on the new leader, which must
//!    also accept a post-failover write under the bumped epoch.
//!
//! Reports ingest throughput, catch-up and promotion latency, the
//! leader's shipping counters with the ship→apply→ack lag summary
//! (`ack_lag_us`, from the follower's acks), and the follower's apply
//! counters with its per-batch apply cost (`apply_us`). Results go to
//! `BENCH_replication.json` at the repository root, with a before/after
//! comparison against the committed numbers printed to stderr
//! (tolerant of missing or differently-shaped committed files).
//!
//! A second, smaller drill then runs in sync-ack mode
//! (`--sync-replicas 1`): every durable ack additionally waits for the
//! follower to confirm it applied and fsynced the covering WAL bytes.
//! The leader is killed the instant the last ack lands — no
//! convergence wait — and the promoted follower must still hold every
//! acked event. Its throughput and `sync_wait_us` summary land under
//! the `"sync"` key of the same JSON file, quantifying what the
//! stronger ack costs.
//!
//! ```text
//! cargo run -p fenestra-bench --release --bin repl_smoke [-- EVENTS] \
//!     [--fenestrad PATH]
//! ```
//!
//! The `fenestrad` binary is found next to this executable (built by
//! `cargo build --release --workspace`), built on demand if missing,
//! or taken from `--fenestrad PATH`.
//!
//! This is a smoke benchmark (one run, wall-clock): it catches
//! order-of-magnitude regressions and replication-path breakage, not
//! small drifts. The no-acked-loss assertion is real, though — a
//! failover that loses durably-acked events fails the run.

use serde_json::{Map, Number, Value as Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The fenestrad binary: explicit `--fenestrad PATH`, else the sibling
/// of this executable, built on demand if absent.
fn fenestrad_bin(explicit: Option<PathBuf>) -> PathBuf {
    if let Some(bin) = explicit {
        assert!(bin.exists(), "--fenestrad {}: no such file", bin.display());
        return bin;
    }
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("binary dir").to_path_buf();
    let bin = dir.join(format!("fenestrad{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
        let mut cmd = Command::new(cargo);
        cmd.current_dir(env!("CARGO_MANIFEST_DIR")).args([
            "build",
            "-p",
            "fenestra-server",
            "--bin",
            "fenestrad",
        ]);
        if dir.file_name().is_some_and(|n| n == "release") {
            cmd.arg("--release");
        }
        let status = cmd.status().expect("cargo build fenestrad");
        assert!(status.success(), "building fenestrad failed");
    }
    bin
}

/// A running fenestrad over a state directory.
struct Daemon {
    child: Child,
    addr: String,
    repl_addr: Option<String>,
}

impl Daemon {
    /// Spawn over `dir` with a WAL, a snapshot path, durable acks, 2
    /// shards, and a rules file (attributes and rules only — the
    /// follower-setup contract). `extra` carries the role flags.
    fn spawn(bin: &Path, dir: &Path, extra: &[&str]) -> Daemon {
        let rules = dir.join("rules.txt");
        std::fs::write(&rules, "rule mv:\n on s\n replace $(visitor).room = room\n").unwrap();
        let mut child = Command::new(bin)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--shards")
            .arg("2")
            .arg("--snapshot")
            .arg(dir.join("state.json"))
            .arg("--wal")
            .arg(dir.join("log"))
            .arg("--fsync")
            .arg("always")
            .arg("--rules")
            .arg(&rules)
            .args(extra)
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn fenestrad");
        let expect_repl = extra.contains(&"--replicate");
        let stderr = child.stderr.take().unwrap();
        let mut reader = BufReader::new(stderr);
        let mut addr = None;
        let mut repl_addr = None;
        while addr.is_none() || (expect_repl && repl_addr.is_none()) {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "fenestrad exited before announcing its addresses"
            );
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("fenestrad: listening on ") {
                addr = Some(rest.to_string());
            }
            if let Some(rest) = line.strip_prefix("fenestrad: serving replication to followers on ")
            {
                repl_addr = Some(rest.to_string());
            }
        }
        // Keep draining stderr so the child never blocks on a full
        // pipe.
        std::thread::spawn(move || for _line in reader.lines().map_while(Result::ok) {});
        Daemon {
            child,
            addr: addr.unwrap(),
            repl_addr,
        }
    }

    fn connect(&self) -> Conn {
        let stream = TcpStream::connect(&self.addr).expect("connect to fenestrad");
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    /// SIGKILL — no drain, no snapshot, no farewell to followers.
    fn kill9(mut self) {
        self.child.kill().expect("kill -9 fenestrad");
        self.child.wait().expect("reap fenestrad");
    }

    fn shutdown(mut self) {
        let mut c = self.connect();
        let v = c.call(r#"{"cmd":"shutdown"}"#);
        assert!(v.get("bye").is_some(), "graceful shutdown: {v}");
        self.child.wait().expect("reap fenestrad");
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").unwrap();
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        assert!(self.reader.read_line(&mut line).unwrap() > 0, "EOF");
        serde_json::from_str(line.trim()).expect("reply is JSON")
    }

    fn call(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

fn ok(v: &Json) -> bool {
    v.get("ok").and_then(Json::as_bool) == Some(true)
}

fn occupied_rooms(c: &mut Conn) -> usize {
    let v = c.call(r#"{"cmd":"query","q":"select ?v ?r where { ?v room ?r }"}"#);
    assert!(ok(&v), "{v}");
    v.get("rows").and_then(Json::as_array).unwrap().len()
}

/// Poll the daemon until its queryable state holds `n` occupied rooms;
/// returns how long that took.
fn wait_rows(daemon: &Daemon, n: usize, why: &str) -> Duration {
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(60);
    let mut last = usize::MAX;
    while Instant::now() < deadline {
        let mut c = daemon.connect();
        last = occupied_rooms(&mut c);
        if last == n {
            return t0.elapsed();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("{why}: wanted {n} rows, converged to {last}");
}

/// Ingest `n` events on one pipelined connection (acks drained on a
/// reader thread), then a `sync` barrier; returns the wall time until
/// every durable ack was read and the barrier replied.
fn ingest_acked(daemon: &Daemon, n: u64) -> Duration {
    let stream = TcpStream::connect(&daemon.addr).expect("connect for ingest");
    let mut input = stream.try_clone().expect("clone stream");
    let t0 = Instant::now();
    let reader = std::thread::spawn(move || {
        let mut lines = BufReader::new(stream).lines();
        let mut acks = 0u64;
        let mut synced = false;
        while acks < n || !synced {
            let line = lines
                .next()
                .expect("connection closed early")
                .expect("read reply");
            assert!(line.contains("\"ok\":true"), "rejected: {line}");
            if line.contains("\"synced\"") {
                synced = true;
            } else {
                acks += 1;
            }
        }
    });
    for i in 1..=n {
        writeln!(
            input,
            r#"{{"stream":"s","ts":{i},"visitor":"v{i}","room":"r{i}"}}"#
        )
        .expect("send event");
    }
    writeln!(input, r#"{{"cmd":"sync"}}"#).expect("send sync");
    reader.join().expect("reader thread");
    t0.elapsed()
}

/// Poll the leader's stats until a follower shipping session is live,
/// so sync-mode ingest never races session setup into a timeout.
fn wait_followers(daemon: &Daemon) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut c = daemon.connect();
        let s = c.call(r#"{"cmd":"stats"}"#);
        if stat_u64(repl_section(&s), "followers") >= 1 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "no follower session registered: {s}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn repl_section(stats: &Json) -> &Json {
    stats
        .get("replication")
        .unwrap_or_else(|| panic!("no replication section in {stats}"))
}

fn stat_u64(repl: &Json, key: &str) -> u64 {
    repl.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing replication.{key} in {repl}"))
}

fn ms(d: Duration) -> Json {
    Json::Number(
        Number::from_f64((d.as_secs_f64() * 1e3 * 10.0).round() / 10.0).unwrap_or_else(|| 0.into()),
    )
}

fn main() {
    let mut events: u64 = 10_000;
    let mut bin_override: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fenestrad" => {
                bin_override = Some(args.next().expect("--fenestrad needs a path").into());
            }
            n => events = n.parse().expect("EVENTS must be a number"),
        }
    }
    let bin = fenestrad_bin(bin_override);

    let base = std::env::temp_dir().join(format!("fenestra-repl-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let ldir = base.join("leader");
    let fdir = base.join("follower");
    std::fs::create_dir_all(&ldir).expect("leader dir");
    std::fs::create_dir_all(&fdir).expect("follower dir");

    // `--snapshot-every-ms` makes the leader rotate segments mid-run,
    // so the follower exercises the Rotate path, not just appends.
    let leader = Daemon::spawn(
        &bin,
        &ldir,
        &["--replicate", "127.0.0.1:0", "--snapshot-every-ms", "200"],
    );
    let repl = leader.repl_addr.clone().unwrap();
    let follower = Daemon::spawn(&bin, &fdir, &["--follow", &repl]);
    eprintln!(
        "leader {} shipping to follower {}",
        leader.addr, follower.addr
    );

    let ingest_elapsed = ingest_acked(&leader, events);
    let events_per_sec = events as f64 / ingest_elapsed.as_secs_f64();
    let catch_up = wait_rows(&follower, events as usize, "follower catches up");
    eprintln!(
        "ingested {events} durably-acked events in {:.1}ms ({events_per_sec:.1} events/s), \
         follower caught up {:.1}ms after the last ack",
        ingest_elapsed.as_secs_f64() * 1e3,
        catch_up.as_secs_f64() * 1e3,
    );

    // The leader's shipping counters and the ship→apply→ack lag, read
    // before the crash (they die with the process).
    let mut lc = leader.connect();
    let ls = lc.call(r#"{"cmd":"stats"}"#);
    let lrepl = repl_section(&ls).clone();
    assert_eq!(stat_u64(&lrepl, "followers"), 1, "{lrepl}");
    assert!(stat_u64(&lrepl, "ship_frames") > 0, "{lrepl}");
    drop(lc);

    leader.kill9();
    let mut fc = follower.connect();
    let t_promote = Instant::now();
    let v = fc.call(r#"{"cmd":"promote"}"#);
    let promote_elapsed = t_promote.elapsed();
    assert!(ok(&v), "promotion: {v}");
    let epoch = v.get("epoch").and_then(Json::as_u64).expect("epoch");
    assert!(epoch >= 1, "promotion bumps the epoch: {v}");

    // The headline guarantee: nothing durably acked is missing, and
    // the promoted node takes writes.
    let rows = occupied_rooms(&mut fc);
    assert_eq!(
        rows, events as usize,
        "failover lost acked events: {rows} of {events} rows survive"
    );
    let ts = events + 1;
    let v = fc.call(&format!(
        r#"{{"stream":"s","ts":{ts},"visitor":"v{ts}","room":"r{ts}"}}"#
    ));
    assert!(ok(&v), "post-failover write: {v}");
    let v = fc.call(r#"{"cmd":"sync"}"#);
    assert!(ok(&v), "post-failover sync: {v}");
    eprintln!(
        "killed leader; promoted follower to epoch {epoch} in {:.1}ms; \
         all {events} acked events queryable, post-failover write accepted",
        promote_elapsed.as_secs_f64() * 1e3,
    );

    let fs = fc.call(r#"{"cmd":"stats"}"#);
    let frepl = repl_section(&fs).clone();
    assert!(stat_u64(&frepl, "applied_ops") >= events, "{frepl}");

    let mut leader_out = Map::new();
    for key in ["ship_frames", "ship_bytes", "snapshots_shipped"] {
        leader_out.insert(key.into(), Json::from(stat_u64(&lrepl, key)));
    }
    leader_out.insert(
        "ack_lag_us".into(),
        lrepl.get("ack_lag_us").cloned().unwrap_or(Json::Null),
    );
    let mut follower_out = Map::new();
    for key in [
        "applied_frames",
        "applied_ops",
        "applied_bytes",
        "reconnects",
        "epoch",
    ] {
        follower_out.insert(key.into(), Json::from(stat_u64(&frepl, key)));
    }
    follower_out.insert(
        "apply_us".into(),
        frepl.get("apply_us").cloned().unwrap_or(Json::Null),
    );

    follower.shutdown();

    // ----- sync-ack drill: every ack carries follower coverage ------
    //
    // Smaller event count: each commit waits a network+fsync round
    // trip, so this measures per-ack latency, not bulk throughput.
    let sync_events = (events / 10).max(100);
    let sldir = base.join("sync-leader");
    let sfdir = base.join("sync-follower");
    std::fs::create_dir_all(&sldir).expect("sync leader dir");
    std::fs::create_dir_all(&sfdir).expect("sync follower dir");
    let leader = Daemon::spawn(
        &bin,
        &sldir,
        &[
            "--replicate",
            "127.0.0.1:0",
            "--snapshot-every-ms",
            "200",
            "--sync-replicas",
            "1",
            "--sync-timeout-ms",
            "5000",
        ],
    );
    let repl = leader.repl_addr.clone().unwrap();
    let follower = Daemon::spawn(&bin, &sfdir, &["--follow", &repl]);
    wait_followers(&leader);

    let sync_ingest = ingest_acked(&leader, sync_events);
    let sync_events_per_sec = sync_events as f64 / sync_ingest.as_secs_f64();
    let mut lc = leader.connect();
    let ls = lc.call(r#"{"cmd":"stats"}"#);
    let srepl = repl_section(&ls).clone();
    drop(lc);
    assert!(stat_u64(&srepl, "sync_acks_ok") > 0, "{srepl}");
    assert_eq!(stat_u64(&srepl, "sync_acks_timeout"), 0, "{srepl}");

    // Kill with zero grace: no convergence wait, no sync barrier on
    // the follower. Sync acks are the only thing standing between the
    // client and data loss here.
    leader.kill9();
    let mut fc = follower.connect();
    let t_promote = Instant::now();
    let v = fc.call(r#"{"cmd":"promote"}"#);
    let sync_promote = t_promote.elapsed();
    assert!(ok(&v), "sync-mode promotion: {v}");
    let rows = occupied_rooms(&mut fc);
    assert_eq!(
        rows, sync_events as usize,
        "sync-mode failover lost acked events: {rows} of {sync_events} rows survive"
    );
    eprintln!(
        "sync mode: {sync_events} events at {sync_events_per_sec:.1} events/s \
         ({:.1}ms), immediate kill -9, all acked events survive promotion \
         ({:.1}ms)",
        sync_ingest.as_secs_f64() * 1e3,
        sync_promote.as_secs_f64() * 1e3,
    );

    let mut sync_out = Map::new();
    sync_out.insert("events".into(), Json::from(sync_events));
    sync_out.insert("ingest_elapsed_ms".into(), ms(sync_ingest));
    sync_out.insert(
        "events_per_sec".into(),
        Json::Number(Number::from_f64((sync_events_per_sec * 10.0).round() / 10.0).unwrap()),
    );
    sync_out.insert("promote_ms".into(), ms(sync_promote));
    for key in ["sync_acks_ok", "sync_acks_timeout", "sync_acks_fallback"] {
        sync_out.insert(key.into(), Json::from(stat_u64(&srepl, key)));
    }
    sync_out.insert(
        "sync_wait_us".into(),
        srepl.get("sync_wait_us").cloned().unwrap_or(Json::Null),
    );

    let mut root = Map::new();
    root.insert("benchmark".into(), Json::from("repl_smoke"));
    root.insert("events".into(), Json::from(events));
    root.insert("ingest_elapsed_ms".into(), ms(ingest_elapsed));
    root.insert(
        "events_per_sec".into(),
        Json::Number(Number::from_f64((events_per_sec * 10.0).round() / 10.0).unwrap()),
    );
    root.insert("catch_up_ms".into(), ms(catch_up));
    root.insert("promote_ms".into(), ms(promote_elapsed));
    root.insert("leader".into(), Json::Object(leader_out));
    root.insert("follower".into(), Json::Object(follower_out));
    root.insert("sync".into(), Json::Object(sync_out));

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_replication.json");
    // Before/after against the committed numbers (CI surfaces this as
    // a non-gating signal).
    if let Some(old) = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        eprintln!("-- before/after vs committed BENCH_replication.json --");
        for key in ["events_per_sec", "catch_up_ms", "promote_ms"] {
            let was = old.get(key).and_then(Json::as_f64);
            let now = root.get(key).and_then(Json::as_f64);
            match (was, now) {
                (Some(w), Some(n)) if w > 0.0 => {
                    eprintln!("{key:<16} {w:>10.1} -> {n:>10.1}  ({:.2}x)", n / w);
                }
                _ => eprintln!("{key:<16} no committed baseline"),
            }
        }
        let old_sync = old.get("sync").cloned().unwrap_or(Json::Null);
        let new_sync = root.get("sync").cloned().unwrap_or(Json::Null);
        for (label, path) in [
            ("sync events_per_sec", vec!["events_per_sec"]),
            ("sync promote_ms", vec!["promote_ms"]),
            ("sync_wait_us p50", vec!["sync_wait_us", "p50"]),
            ("sync_wait_us p99", vec!["sync_wait_us", "p99"]),
        ] {
            let dig = |mut v: &Json| {
                for p in &path {
                    v = v.get(p)?;
                }
                v.as_f64()
            };
            match (dig(&old_sync), dig(&new_sync)) {
                (Some(w), Some(n)) if w > 0.0 => {
                    eprintln!("{label:<20} {w:>10.1} -> {n:>10.1}  ({:.2}x)", n / w);
                }
                _ => eprintln!("{label:<20} no committed baseline"),
            }
        }
    }
    let mut text = Json::Object(root).to_string();
    text.push('\n');
    std::fs::write(&out, text).expect("write BENCH_replication.json");
    eprintln!("wrote {}", out.display());

    follower.shutdown();
    let _ = std::fs::remove_dir_all(&base);
}
