//! Query-plane smoke benchmark: what compiling a statement costs,
//! what the plan cache saves, and what shared watch subplans buy.
//!
//! Three measurements, all in-process:
//!
//! 1. **Compile vs cached dispatch** — compile N distinct SQL
//!    statements cold through a [`PlanCache`], then look one of them
//!    up M times hot. The cached lookup must be ≥ 10× faster than a
//!    cold compile; the run fails otherwise (that ratio is the whole
//!    point of the cache).
//! 2. **Server-driven cache traffic** — an embedded `fenestrad`
//!    answers the same statement over JSONL repeatedly; the
//!    plan-cache hit/miss counters are read back off the Prometheus
//!    listener (`fenestra_plan_cache_*`), proving the cache is
//!    visible where operators will look for it.
//! 3. **Watch subplan sharing** — register 1k watches of one
//!    identical statement versus 1k watches of distinct statements on
//!    two fresh servers, comparing registration time and the
//!    resulting cache entry counts (1 vs 1000).
//!
//! Results go to `BENCH_query.json` at the repository root, with a
//! before/after comparison against the committed numbers printed to
//! stderr (non-gating; CI surfaces the same diff).
//!
//! ```text
//! cargo run -p fenestra-bench --release --bin query_smoke
//! ```

use fenestra_core::EngineConfig;
use fenestra_query::PlanCache;
use fenestra_server::{Server, ServerConfig, ServerHandle};
use fenestra_temporal::AttrSchema;
use serde_json::{Map, Value as Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;

fn num(v: f64) -> Json {
    serde_json::Number::from_f64(v)
        .map(Json::Number)
        .unwrap_or(Json::Null)
}

/// One JSONL client with a read timeout.
struct Client {
    out: TcpStream,
    lines: std::io::Lines<BufReader<TcpStream>>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let out = TcpStream::connect(addr).expect("connect");
        out.set_nodelay(true).unwrap();
        out.set_read_timeout(Some(std::time::Duration::from_secs(60)))
            .unwrap();
        let lines = BufReader::new(out.try_clone().unwrap()).lines();
        Client { out, lines }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.out, "{line}").expect("send");
    }

    fn recv(&mut self) -> Json {
        let line = self.lines.next().expect("closed").expect("read");
        serde_json::from_str(&line).unwrap_or_else(|e| panic!("bad reply `{line}`: {e}"))
    }

    fn call(&mut self, line: &str) -> Json {
        self.send(line);
        self.recv()
    }
}

/// An embedded server with the visitor→room rule and a handful of
/// facts, so queries return rows rather than exercising empty scans.
fn server() -> ServerHandle {
    let config = ServerConfig::new("127.0.0.1:0")
        .metrics_addr("127.0.0.1:0")
        .engine(EngineConfig::default())
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on sensors\n replace $(visitor).room = room")
                .unwrap();
        });
    let handle = Server::start(config).expect("start server");
    let mut c = Client::connect(handle.local_addr());
    for i in 0..32u64 {
        let room = if i % 2 == 0 { "lab" } else { "lobby" };
        let v = c.call(&format!(
            r#"{{"stream":"sensors","ts":{},"visitor":"v{i}","room":"{room}"}}"#,
            1000 + i
        ));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    }
    let v = c.call(r#"{"cmd":"sync"}"#);
    assert_eq!(v.get("synced").and_then(Json::as_bool), Some(true), "{v}");
    handle
}

/// Scrape one Prometheus sample off the metrics listener.
fn scrape(addr: std::net::SocketAddr, name: &str) -> u64 {
    let mut m = TcpStream::connect(addr).expect("connect metrics");
    m.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    write!(m, "GET /metrics HTTP/1.1\r\nHost: fenestra\r\n\r\n").unwrap();
    let mut response = String::new();
    m.read_to_string(&mut response).expect("read response");
    let body = response.split_once("\r\n\r\n").expect("http body").1;
    body.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("missing {name} in:\n{body}"))
}

/// Register `stmts` as watches (empty views: nothing matches the
/// rooms they name) and return the elapsed milliseconds plus the
/// server's plan-cache entry count afterwards.
fn register_watches(stmts: &[String]) -> (f64, u64) {
    let mut handle = server();
    let mut c = Client::connect(handle.local_addr());
    let t0 = Instant::now();
    for (i, stmt) in stmts.iter().enumerate() {
        c.send(&format!(r#"{{"cmd":"watch","name":"w{i}","q":"{stmt}"}}"#));
    }
    for _ in stmts {
        let v = c.recv();
        assert!(v.get("watch").is_some(), "watch rejected: {v}");
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stats = c.call(r#"{"cmd":"stats"}"#);
    let entries = stats
        .get("plans")
        .and_then(|p| p.get("cache"))
        .and_then(|c| c.get("entries"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no plans.cache.entries in {stats}"));
    handle.shutdown();
    (elapsed_ms, entries)
}

fn main() {
    // ----- 1. compile vs cached dispatch, planner only ----------------------
    const COLD: usize = 512;
    const HOT: usize = 100_000;
    let cache = PlanCache::new(COLD * 2);
    let stmts: Vec<String> = (0..COLD)
        .map(|i| {
            format!(
                "SELECT entity FROM state WHERE room = \"room-{i}\" LIMIT {}",
                i + 1
            )
        })
        .collect();
    let t0 = Instant::now();
    for s in &stmts {
        cache.get_or_compile(s).expect("compile");
    }
    let per_compile_us = t0.elapsed().as_secs_f64() * 1e6 / COLD as f64;
    let t0 = Instant::now();
    for _ in 0..HOT {
        cache.get_or_compile(&stmts[0]).expect("cached");
    }
    let per_lookup_us = t0.elapsed().as_secs_f64() * 1e6 / HOT as f64;
    let speedup = per_compile_us / per_lookup_us.max(1e-3);
    eprintln!("compile {per_compile_us:.2}us  cached {per_lookup_us:.3}us  speedup {speedup:.0}x");
    assert!(
        speedup >= 10.0,
        "cached dispatch must be >= 10x faster than cold compile, got {speedup:.1}x"
    );

    // ----- 2. server-driven traffic with /metrics-visible counters ----------
    const QUERIES: usize = 2_000;
    let mut handle = server();
    let maddr = handle.metrics_addr().expect("metrics listener");
    let mut c = Client::connect(handle.local_addr());
    let stmt = r#"{"cmd":"query","q":"select ?v where { ?v room \"lab\" }"}"#;
    let t0 = Instant::now();
    for _ in 0..QUERIES {
        let v = c.call(stmt);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let hits = scrape(maddr, "fenestra_plan_cache_hits_total");
    let misses = scrape(maddr, "fenestra_plan_cache_misses_total");
    let exec_count = scrape(maddr, "fenestra_plan_exec_us_count");
    eprintln!(
        "server: {QUERIES} queries in {:.1}ms ({:.0}/s), cache {hits} hits / {misses} misses",
        elapsed * 1e3,
        QUERIES as f64 / elapsed
    );
    assert!(
        hits >= QUERIES as u64 - 1,
        "repeat queries must hit the cache"
    );
    assert!(
        exec_count >= QUERIES as u64,
        "every dispatch records exec_us"
    );
    handle.shutdown();

    // ----- 3. watch subplan sharing: 1k identical vs 1k distinct ------------
    const WATCHES: usize = 1_000;
    let identical: Vec<String> = (0..WATCHES)
        .map(|_| r#"select ?v where { ?v room \"nowhere\" }"#.to_string())
        .collect();
    let distinct: Vec<String> = (0..WATCHES)
        .map(|i| format!(r#"select ?v where {{ ?v room \"nowhere-{i}\" }}"#))
        .collect();
    let (identical_ms, identical_entries) = register_watches(&identical);
    let (distinct_ms, distinct_entries) = register_watches(&distinct);
    eprintln!(
        "watches: {WATCHES} identical {identical_ms:.1}ms ({identical_entries} plans), \
         {WATCHES} distinct {distinct_ms:.1}ms ({distinct_entries} plans)"
    );
    assert_eq!(identical_entries, 1, "identical watches share one subplan");
    assert_eq!(
        distinct_entries, WATCHES as u64,
        "distinct watches each compile"
    );

    // ----- report -----------------------------------------------------------
    let mut compile = Map::new();
    compile.insert("statements".into(), Json::from(COLD as u64));
    compile.insert("per_compile_us".into(), num(per_compile_us));
    let mut cached = Map::new();
    cached.insert("lookups".into(), Json::from(HOT as u64));
    cached.insert("per_lookup_us".into(), num(per_lookup_us));
    cached.insert("speedup".into(), num(speedup));
    let mut srv = Map::new();
    srv.insert("queries".into(), Json::from(QUERIES as u64));
    srv.insert("queries_per_sec".into(), num(QUERIES as f64 / elapsed));
    srv.insert("cache_hits".into(), Json::from(hits));
    srv.insert("cache_misses".into(), Json::from(misses));
    let mut watches = Map::new();
    watches.insert("count".into(), Json::from(WATCHES as u64));
    watches.insert("identical_ms".into(), num(identical_ms));
    watches.insert(
        "identical_plan_entries".into(),
        Json::from(identical_entries),
    );
    watches.insert("distinct_ms".into(), num(distinct_ms));
    watches.insert("distinct_plan_entries".into(), Json::from(distinct_entries));
    let mut root = Map::new();
    root.insert("benchmark".into(), Json::from("query_smoke"));
    root.insert("compile".into(), Json::Object(compile));
    root.insert("cached".into(), Json::Object(cached));
    root.insert("server".into(), Json::Object(srv));
    root.insert("watches".into(), Json::Object(watches));
    let root = Json::Object(root);

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_query.json");
    // Before/after against the committed numbers (CI surfaces this as
    // a non-gating signal).
    if let Some(old) = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        eprintln!("-- before/after vs committed BENCH_query.json --");
        for (label, path) in [
            ("per_compile_us", ["compile", "per_compile_us"]),
            ("per_lookup_us", ["cached", "per_lookup_us"]),
            ("speedup", ["cached", "speedup"]),
            ("queries_per_sec", ["server", "queries_per_sec"]),
            ("identical_ms", ["watches", "identical_ms"]),
            ("distinct_ms", ["watches", "distinct_ms"]),
        ] {
            let dig = |mut v: &Json| {
                for p in &path {
                    v = v.get(p)?;
                }
                v.as_f64()
            };
            match (dig(&old), dig(&root)) {
                (Some(w), Some(n)) if w > 0.0 => {
                    eprintln!("{label:<16} {w:>10.2} -> {n:>10.2}  ({:.2}x)", n / w);
                }
                _ => eprintln!("{label:<16} no committed baseline"),
            }
        }
    }
    let text = root.to_string();
    println!("{text}");
    std::fs::write(&out, text).expect("write BENCH_query.json");
}
