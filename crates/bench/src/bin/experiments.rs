//! Experiment runner: regenerates every table in EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p fenestra-bench --release --bin experiments            # all
//! cargo run -p fenestra-bench --release --bin experiments -- e3 e4  # some
//! cargo run -p fenestra-bench --release --bin experiments -- --md   # markdown
//! ```

use fenestra_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--md");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|s| s.as_str())
        .collect();
    for (id, title, run) in all_experiments() {
        if !wanted.is_empty() && !wanted.contains(&id) {
            continue;
        }
        eprintln!("running {id}: {title} ...");
        let table = run();
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
