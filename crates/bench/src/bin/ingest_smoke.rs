//! Ingest-throughput smoke benchmark: what the durable WAL costs.
//!
//! Pumps the same event stream through a real `fenestra-server` (TCP,
//! line protocol, engine thread) three times — no WAL, WAL with
//! `fsync every-64`, WAL with `fsync always` — and writes the
//! throughput numbers to `BENCH_ingest.json` at the repository root.
//!
//! ```text
//! cargo run -p fenestra-bench --release --bin ingest_smoke [-- EVENTS]
//! ```
//!
//! This is a smoke benchmark (one run per config, wall-clock): it
//! exists to catch order-of-magnitude regressions and to document the
//! relative cost of each fsync policy, not to be a rigorous harness.

use fenestra_server::{Server, ServerConfig};
use fenestra_temporal::{AttrSchema, FsyncPolicy};
use serde_json::{Map, Number, Value as Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct RunResult {
    label: &'static str,
    events: u64,
    elapsed_ms: f64,
    events_per_sec: f64,
    wal_appends: u64,
    wal_bytes: u64,
    fsyncs: u64,
}

fn run(label: &'static str, events: u64, wal: Option<(&Path, FsyncPolicy)>) -> RunResult {
    let mut config = ServerConfig::new("127.0.0.1:0")
        .queue_capacity(4096)
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on s\n replace $(visitor).room = room")
                .unwrap();
        });
    if let Some((base, policy)) = wal {
        config = config.wal_path(base).fsync(policy);
    }
    let mut handle = Server::start(config).expect("start server");

    let stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut input = stream.try_clone().expect("clone stream");
    // Acks drain on a separate thread so the socket buffers never
    // deadlock the sender.
    let reader = std::thread::spawn(move || {
        let mut acks = 0u64;
        for line in BufReader::new(stream).lines() {
            let line = line.expect("read reply");
            assert!(line.contains("\"ok\":true"), "rejected: {line}");
            acks += 1;
            if acks == events + 1 {
                break; // final stats reply: everything acked + applied
            }
        }
        acks
    });

    let t0 = Instant::now();
    for i in 0..events {
        // 100 visitors cycling through 10 rooms, moving to a *new*
        // room on every visit: every event is a real replace
        // (close + assert), the store's hot path.
        writeln!(
            input,
            r#"{{"stream":"s","ts":{},"visitor":"v{}","room":"r{}"}}"#,
            i + 1,
            i % 100,
            (i / 100) % 10
        )
        .expect("send event");
    }
    // FIFO barrier: the stats reply proves every event was applied.
    writeln!(input, r#"{{"cmd":"stats"}}"#).expect("send stats");
    let acks = reader.join().expect("reader thread");
    let elapsed = t0.elapsed();
    assert_eq!(acks, events + 1, "every event acked");

    let m = handle.metrics();
    let load = |a: &std::sync::atomic::AtomicU64| a.load(std::sync::atomic::Ordering::Relaxed);
    let result = RunResult {
        label,
        events,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        events_per_sec: events as f64 / elapsed.as_secs_f64(),
        wal_appends: load(&m.wal_appends),
        wal_bytes: load(&m.wal_bytes),
        fsyncs: load(&m.fsyncs),
    };
    handle.shutdown();
    result
}

fn main() {
    let events: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("EVENTS must be an integer"))
        .unwrap_or(20_000);

    let dir = std::env::temp_dir().join(format!("fenestra-ingest-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let runs = [
        run("wal-off", events, None),
        run(
            "wal-every-64",
            events,
            Some((&dir.join("every64"), FsyncPolicy::EveryN(64))),
        ),
        run(
            "wal-always",
            events,
            Some((&dir.join("always"), FsyncPolicy::Always)),
        ),
    ];
    let _ = std::fs::remove_dir_all(&dir);

    let mut root = Map::new();
    root.insert("benchmark".into(), Json::from("ingest_smoke"));
    root.insert("events".into(), Json::from(events));
    let mut by_label = Map::new();
    for r in &runs {
        eprintln!(
            "{:<14} {:>9.1} events/s  ({:.0} ms, {} appends, {} fsyncs)",
            r.label, r.events_per_sec, r.elapsed_ms, r.wal_appends, r.fsyncs
        );
        let float = |f: f64| Json::Number(Number::from_f64((f * 10.0).round() / 10.0).unwrap());
        let mut obj = Map::new();
        obj.insert("events".into(), Json::from(r.events));
        obj.insert("elapsed_ms".into(), float(r.elapsed_ms));
        obj.insert("events_per_sec".into(), float(r.events_per_sec));
        obj.insert("wal_appends".into(), Json::from(r.wal_appends));
        obj.insert("wal_bytes".into(), Json::from(r.wal_bytes));
        obj.insert("fsyncs".into(), Json::from(r.fsyncs));
        by_label.insert(r.label.into(), Json::Object(obj));
    }
    root.insert("runs".into(), Json::Object(by_label));

    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ingest.json");
    let mut text = Json::Object(root).to_string();
    text.push('\n');
    std::fs::write(&out, text).expect("write BENCH_ingest.json");
    eprintln!("wrote {}", out.display());
}
