//! Ingest-throughput smoke benchmark: what the durable WAL costs, and
//! what group commit buys back.
//!
//! Pumps the same event stream through a real `fenestra-server` (TCP,
//! line protocol, engine thread) under several configurations:
//!
//! * the three fsync policies (no WAL, `every-64`, `always`) with
//!   single-event lines on one connection — the headline numbers;
//! * a client batch-frame sweep (`{"op":"ingest","events":[…]}` with
//!   8/64/512 events per frame) under `fsync always`;
//! * a connection-count sweep (4 and 8 pipelined connections) under
//!   `fsync always`, where group commit coalesces across connections;
//! * a shard-count sweep (1/2/4/8 keyed engine shards) under `fsync
//!   always` with group commit disabled (`batch_max 1`): per-event
//!   durability makes the disk's flush latency the throughput floor,
//!   and per-shard WALs overlap those fsyncs — the one cost that
//!   parallelizes regardless of core count;
//! * a wire-plane A/B at 256 pipelined connections under `fsync
//!   always`: the identical batch workload through the JSONL plane and
//!   the binary plane (`FNB1` length-prefixed CRC-framed batches) of
//!   one listener — the throughput ratio isolates front-door parse +
//!   route cost, since both planes pay the same engine/WAL/fsync bill.
//!
//! Each run reports throughput, ack-latency percentiles (p50/p99 —
//! under `fsync always` an ack is released only after the covering
//! group commit fsyncs, so this is true commit latency), the server's
//! batching counters, and a **stage breakdown**: the pipeline's
//! per-stage latency histograms (admission, queue wait, reorder dwell,
//! WAL append, fsync, ack hold, late margin) merged across shards and
//! summarized as `{count, p50, p90, p99, max, mean}`. Results go to
//! `BENCH_ingest.json` at the repository root, with a before/after
//! comparison against the committed numbers printed to stderr
//! (tolerant of missing or differently-shaped committed files — new
//! runs simply have no baseline).
//!
//! ```text
//! cargo run -p fenestra-bench --release --bin ingest_smoke [-- EVENTS]
//! # or one configuration only, merged into the committed file:
//! cargo run -p fenestra-bench --release --bin ingest_smoke -- \
//!     [EVENTS] --shards 4 [--fsync always]
//! ```
//!
//! This is a smoke benchmark (one run per config, wall-clock): it
//! exists to catch order-of-magnitude regressions and to document the
//! relative cost of each configuration, not to be a rigorous harness.

use fenestra_base::record::Event;
use fenestra_base::time::Duration as EventDuration;
use fenestra_base::value::Value;
use fenestra_server::{Server, ServerConfig};
use fenestra_temporal::{AttrSchema, FsyncPolicy};
use fenestra_wire::binary;
use serde_json::{Map, Number, Value as Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Group-commit cap for the shard sweep: 1, i.e. group commit OFF —
/// every event pays its own WAL append + fsync. The headline runs show
/// group commit amortizing a single WAL's fsyncs to near zero, which
/// leaves a single-WAL server bottlenecked elsewhere; what per-shard
/// WALs add is *independent fsync pipelines*, and this sweep isolates
/// exactly that: under per-event durability the disk's flush latency
/// is the floor, and N shards overlap N flushes (they are I/O waits,
/// so this parallelizes even on one core). One connection,
/// single-event lines: each event routes to exactly one shard, so
/// submission never waits on a straggler shard and the sweep stays
/// apples-to-apples across shard counts.
const SHARD_SWEEP_COMMIT_MAX: usize = 1;

/// Lateness bound for multi-connection runs: pipelined connections
/// race to the queue, so timestamps interleave slightly out of order.
/// The bound (in event-time ms == one unit per event) comfortably
/// covers the in-flight window of a handful of connections. Durable
/// acks inherit it: a frame's ack is held until the watermark passes
/// the frame, so conn-sweep ack latencies include that reorder delay.
const CONN_SWEEP_LATENESS: u64 = 2_000;

/// Frames between mid-stream `sync` probes on multi-connection runs.
/// Each reply proves everything the connection sent before it has been
/// *processed* (applied or counted late) — proof the send window below
/// can trust, where durable acks cannot serve: the last
/// lateness-bound's worth of acks is withheld until the watermark
/// advances, so an ack-based window tight enough to bound skew would
/// deadlock against its own held tail. Sync replies are never
/// watermark-held. Must stay below the window for the straggling
/// connection to keep unblocking itself.
const CONN_SWEEP_SYNC_EVERY: u64 = 64;

struct RunResult {
    label: String,
    events: u64,
    elapsed_ms: f64,
    events_per_sec: f64,
    ack_p50_us: f64,
    ack_p99_us: f64,
    wal_appends: u64,
    wal_bytes: u64,
    fsyncs: u64,
    ingest_batches: u64,
    ingest_batch_max: u64,
    group_commits: u64,
    acks_deferred: u64,
    late_dropped: u64,
    /// Per-stage latency summaries merged across shards
    /// (`{stage: {count, p50, p90, p99, max, mean}}`).
    stages: Json,
}

/// One event line. 100 visitors cycling through 10 rooms, moving to a
/// *new* room on every visit: every event is a real replace
/// (close + assert), the store's hot path.
fn event_json(i: u64) -> String {
    format!(
        r#"{{"stream":"s","ts":{},"visitor":"v{}","room":"r{}"}}"#,
        i + 1,
        i % 100,
        (i / 100) % 10
    )
}

/// One event of the wire-plane A/B workload, as JSONL. All events
/// share one timestamp and each carries a fresh visitor: with lateness
/// 0 every event applies the moment it arrives (constant ts can never
/// be late, distinct visitors can never conflict), so durable acks
/// release continuously with the group-commit fsyncs and the timed
/// window covers the whole live pipeline — no reorder dwell, no
/// end-of-run flush.
fn ab_event_json(i: u64) -> String {
    format!(
        r#"{{"stream":"s","ts":1,"visitor":"v{}","room":"r{}"}}"#,
        i,
        (i / 100) % 10
    )
}

/// The same event as [`ab_event_json`], as the struct the binary codec
/// encodes — the two planes carry an identical workload.
fn ab_event_struct(i: u64) -> Event {
    Event::from_pairs(
        "s",
        1u64,
        [
            ("visitor", Value::str(&format!("v{i}"))),
            ("room", Value::str(&format!("r{}", (i / 100) % 10))),
        ],
    )
}

/// One wire frame covering `n` events starting at logical index
/// `start`: a plain JSONL event when `n == 1`, a batch frame otherwise.
fn frame(start: u64, n: u64) -> String {
    if n == 1 {
        let mut s = event_json(start);
        s.push('\n');
        s
    } else {
        let evs: Vec<String> = (start..start + n).map(event_json).collect();
        format!("{{\"op\":\"ingest\",\"events\":[{}]}}\n", evs.join(","))
    }
}

/// One `GET /metrics` against the run's own listener: assert the body
/// is Prometheus text with shard-labeled stage histograms present.
fn scrape_metrics(maddr: std::net::SocketAddr) {
    use std::io::Read;
    let mut s = TcpStream::connect(maddr).expect("connect /metrics");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(s, "GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n").expect("send scrape");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read scrape");
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "bad scrape status: {}",
        response.lines().next().unwrap_or("")
    );
    for needle in [
        "# TYPE fenestra_stage_queue_wait_us histogram",
        "fenestra_stage_queue_wait_us_count{shard=\"0\"}",
        "fenestra_engine_events_total{shard=\"0\"}",
    ] {
        assert!(response.contains(needle), "scrape missing `{needle}`");
    }
}

fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx].as_secs_f64() * 1e6
}

fn run(
    label: &str,
    events: u64,
    wal: Option<(&Path, FsyncPolicy)>,
    frame_size: u64,
    connections: u64,
    shards: u32,
    batch_max: usize,
) -> RunResult {
    let mut config = ServerConfig::new("127.0.0.1:0")
        .queue_capacity(4096)
        .batch_max(batch_max)
        .shards(shards)
        .metrics_addr("127.0.0.1:0")
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on s\n replace $(visitor).room = room")
                .unwrap();
        });
    if connections > 1 {
        config.engine.max_lateness = EventDuration::millis(CONN_SWEEP_LATENESS);
    }
    if let Some((base, policy)) = wal {
        config = config.wal_path(base).fsync(policy);
    }
    let mut handle = Server::start(config).expect("start server");
    let addr = handle.local_addr();

    let per_conn_frames = events / (frame_size * connections);
    let per_conn_events = per_conn_frames * frame_size;
    let actual_events = per_conn_events * connections;
    // All reader threads plus the main thread: under `fsync always`
    // with a lateness bound the acks for the last ~bound worth of
    // events are withheld until the watermark passes them, so the main
    // thread must inject the watermark-advancing flush event after the
    // engine has *processed* every connection's frames (each reader's
    // sync barrier proves its connection's) but before the readers
    // can drain their final held acks. Waiting on processing — not
    // just on the senders' writes landing in socket buffers — also
    // keeps the far-future flush from making still-queued events late.
    let all_processed = Arc::new(Barrier::new(connections as usize + 1));
    // Frames *proven processed* per connection, published by each
    // reader as mid-stream sync replies come back. The send window
    // below paces every sender against the minimum across connections.
    let proven: Arc<Vec<AtomicU64>> =
        Arc::new((0..connections).map(|_| AtomicU64::new(0)).collect());
    let expected_syncs = if connections > 1 {
        (per_conn_frames - 1) / CONN_SWEEP_SYNC_EVERY + 1
    } else {
        1
    };

    let t0 = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let all_processed = Arc::clone(&all_processed);
            let proven = Arc::clone(&proven);
            let proven_pub = Arc::clone(&proven);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut input = stream.try_clone().expect("clone stream");
                // Acks drain on a separate thread so the socket buffers
                // never deadlock the sender; it stamps each arrival.
                let reader = std::thread::spawn(move || {
                    let mut recv_at = Vec::with_capacity(per_conn_frames as usize);
                    let mut lines = BufReader::new(stream).lines();
                    let mut syncs_seen = 0u64;
                    while recv_at.len() < per_conn_frames as usize || syncs_seen < expected_syncs {
                        let line = lines
                            .next()
                            .expect("connection closed early")
                            .expect("read reply");
                        assert!(line.contains("\"ok\":true"), "rejected: {line}");
                        if line.contains("\"synced\"") {
                            // Each sync reply proves every frame this
                            // connection sent before it is past the
                            // engine (applied, buffered, or counted
                            // late). The last one is the processing
                            // barrier: held acks for the buffered tail
                            // arrive after it, once the flush below
                            // advances the watermark.
                            syncs_seen += 1;
                            proven_pub[c as usize].store(
                                (syncs_seen * CONN_SWEEP_SYNC_EVERY).min(per_conn_frames),
                                Ordering::Release,
                            );
                            if syncs_seen == expected_syncs && connections > 1 {
                                all_processed.wait();
                            }
                        } else {
                            recv_at.push(Instant::now());
                        }
                    }
                    recv_at
                });
                let mut sent_at = Vec::with_capacity(per_conn_frames as usize);
                // Send window for multi-connection runs, sized well
                // under the lateness bound. Two generator artifacts
                // would otherwise drop events as late and pollute the
                // sweep: claiming timestamps from a shared counter at
                // send time leaves claimed-but-unsent gaps whenever a
                // sender is descheduled between claim and write, so
                // instead connection `c`'s i-th frame takes the
                // interleaved lease (i*connections + c) * frame_size
                // from its own write-time counter; and unbounded
                // pipelining lets a whole connection's stream sit in
                // socket buffers while another's is applied, skewing
                // event time across connections far beyond any fixed
                // bound, so each sender stalls once it runs `window`
                // frames past the *minimum* proven-processed count
                // across all connections. Anything the engine applies
                // was sent, and every sender stays within the window of
                // the straggler, so no applied timestamp can lead a
                // pending one by more than window * connections *
                // frame_size event-time units — under the lateness
                // bound by construction. The straggler itself always
                // unblocks: its own sync replies lift the minimum. One
                // connection reduces to the same monotone, unthrottled
                // stream as before.
                let window = (3 * CONN_SWEEP_LATENESS / 4) / (connections * frame_size);
                for i in 0..per_conn_frames {
                    if connections > 1 {
                        let floor = (i + 1).saturating_sub(window);
                        while proven
                            .iter()
                            .map(|p| p.load(Ordering::Acquire))
                            .min()
                            .unwrap_or(0)
                            < floor
                        {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                    let start = (i * connections + c) * frame_size;
                    let line = frame(start, frame_size);
                    sent_at.push(Instant::now());
                    input.write_all(line.as_bytes()).expect("send frame");
                    if connections > 1
                        && (i + 1) % CONN_SWEEP_SYNC_EVERY == 0
                        && i + 1 < per_conn_frames
                    {
                        writeln!(input, r#"{{"cmd":"sync"}}"#).expect("send sync probe");
                    }
                }
                // Processing barrier: the final sync reply proves every
                // frame this connection sent has been processed by the
                // engine (stats no longer round-trips through the
                // shards).
                writeln!(input, r#"{{"cmd":"sync"}}"#).expect("send sync");
                let recv_at = reader.join().expect("reader thread");
                sent_at
                    .iter()
                    .zip(&recv_at)
                    .map(|(s, r)| *r - *s)
                    .collect::<Vec<Duration>>()
            })
        })
        .collect();
    let _flush_conn = if connections > 1 {
        // Flush the reorder buffers: once the engine has processed
        // every connection's frames, far-future events advance the
        // watermark past everything, draining the buffered tail
        // (applied and WAL'd inside the timed window) and releasing its
        // held acks so the reader threads can finish. One event per
        // workload visitor, because under sharding each shard's
        // watermark advances independently and only events keyed into
        // a shard move it — reusing the workload's own visitors
        // guarantees every shard that buffered anything gets flushed.
        // The flush events' *own* acks stay held — nothing ever passes
        // the watermark beyond them — so only the stats reply is read,
        // and the connection is kept open until shutdown for the
        // unread acks.
        all_processed.wait();
        let stream = TcpStream::connect(addr).expect("connect flush");
        let mut input = stream.try_clone().expect("clone stream");
        let mut lines = BufReader::new(stream.try_clone().expect("clone stream")).lines();
        let ts = actual_events + CONN_SWEEP_LATENESS + 1_000;
        for v in 0..100 {
            writeln!(
                input,
                r#"{{"stream":"s","ts":{ts},"visitor":"v{v}","room":"done"}}"#
            )
            .expect("send flush");
        }
        writeln!(input, r#"{{"cmd":"sync"}}"#).expect("send sync");
        let line = lines.next().expect("flush reply").expect("read reply");
        assert!(line.contains("\"ok\":true"), "rejected: {line}");
        Some(stream)
    } else {
        None
    };
    let mut latencies: Vec<Duration> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("worker thread"));
    }
    let elapsed = t0.elapsed();
    latencies.sort();

    // Scrape the run's own Prometheus listener while the server is
    // still up: guards the exposition wiring under real load (the
    // integration tests do the full parsing).
    if let Some(maddr) = handle.metrics_addr() {
        scrape_metrics(maddr);
    }
    let m = handle.metrics();
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let stages = handle.pipeline_obs().merged_stages_json();
    let result = RunResult {
        label: label.to_string(),
        events: actual_events,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        events_per_sec: actual_events as f64 / elapsed.as_secs_f64(),
        ack_p50_us: percentile_us(&latencies, 0.50),
        ack_p99_us: percentile_us(&latencies, 0.99),
        wal_appends: load(&m.wal_appends),
        wal_bytes: load(&m.wal_bytes),
        fsyncs: load(&m.fsyncs),
        ingest_batches: load(&m.ingest_batches),
        ingest_batch_max: load(&m.ingest_batch_max),
        group_commits: load(&m.group_commits),
        acks_deferred: load(&m.acks_deferred),
        late_dropped: load(&m.late_dropped),
        stages,
    };
    handle.shutdown();
    result
}

/// Which wire plane a [`run_plane`] worker speaks.
#[derive(Clone, Copy, PartialEq)]
enum Plane {
    Jsonl,
    Binary,
}

/// Wire-plane A/B at high connection counts: the same batch workload
/// pushed through the JSONL plane and the binary plane (`FNB1` magic,
/// length-prefixed CRC-framed batches) of one listener, under `fsync
/// always`. The [`ab_event_json`] workload (constant timestamp, fresh
/// visitor per event, lateness 0) applies every event on arrival, so
/// the run is one continuous pipeline: frames stream in unpaced from
/// every connection, shards apply and group-commit as they drain, and
/// each frame's durable ack releases with the fsync that covers it.
/// The timer runs from the moment every connection is armed until the
/// last connection has read its last ack and its sync-barrier reply.
/// Both planes pay identical engine/WAL/fsync costs on identical
/// shard parallelism, so the throughput ratio isolates the front
/// door: socket handling, frame parsing, routing, and ack writeback.
fn run_plane(
    label: &str,
    plane: Plane,
    conns: u64,
    frames_per_conn: u64,
    frame_size: u64,
    shards: u32,
    wal_dir: &Path,
) -> RunResult {
    let per_conn_events = frames_per_conn * frame_size;
    let total = conns * per_conn_events;
    // Queue capacity covers the whole run (every frame splits into up
    // to `shards` parts): the two planes react to a full queue
    // differently by design (connection threads block on the channel,
    // the reactor parks the connection and retries on its tick), and
    // either would measure backpressure scheduling, not the front
    // door this sweep isolates.
    let queue = (conns * frames_per_conn * shards as u64 * 2).max(4096) as usize;
    let config = ServerConfig::new("127.0.0.1:0")
        .queue_capacity(queue)
        .batch_max(512)
        .shards(shards)
        .wal_path(wal_dir)
        .fsync(FsyncPolicy::Always)
        // Pin the pool size instead of `--reactors 0` (min(cores, 4)):
        // on a 1-core runner auto picks a single reactor, whose CFS
        // share against 8 shard threads — not the front door — becomes
        // the bottleneck. Four is what auto picks on any 4+ core box.
        .reactors(4)
        .metrics_addr("127.0.0.1:0")
        .setup(|engine| {
            engine.declare_attr("room", AttrSchema::one());
            engine
                .add_rules_text("rule mv:\n on s\n replace $(visitor).room = room")
                .unwrap();
        });
    let mut handle = Server::start(config).expect("start server");
    let addr = handle.local_addr();

    // Pre-encode every connection's wire bytes: client-side encoding
    // is not the server's front door, so it stays off the clock.
    // Connection `c` owns the disjoint event-index range
    // [c*per_conn_events, (c+1)*per_conn_events) — a fresh visitor per
    // event, one shared timestamp (see [`ab_event_json`]).
    let payloads: Vec<Vec<Vec<u8>>> = (0..conns)
        .map(|c| {
            (0..frames_per_conn)
                .map(|i| {
                    let start = c * per_conn_events + i * frame_size;
                    match plane {
                        Plane::Jsonl => {
                            let evs: Vec<String> =
                                (start..start + frame_size).map(ab_event_json).collect();
                            format!("{{\"op\":\"ingest\",\"events\":[{}]}}\n", evs.join(","))
                                .into_bytes()
                        }
                        Plane::Binary => {
                            let events: Vec<Event> =
                                (start..start + frame_size).map(ab_event_struct).collect();
                            binary::encode_batch("s", &events).expect("encode batch")
                        }
                    }
                })
                .collect()
        })
        .collect();

    // The timer opens once every connection is accepted and armed.
    let start_gate = Arc::new(Barrier::new(conns as usize + 1));

    let workers: Vec<_> = payloads
        .into_iter()
        .map(|frames| {
            let start_gate = Arc::clone(&start_gate);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut input = stream.try_clone().expect("clone stream");
                if plane == Plane::Binary {
                    // Plane negotiation is handshake, not throughput.
                    input.write_all(&binary::MAGIC).expect("send magic");
                }
                let reader = std::thread::spawn(move || {
                    let mut recv_at = Vec::with_capacity(frames_per_conn as usize);
                    let mut synced = false;
                    match plane {
                        Plane::Jsonl => {
                            let mut lines = BufReader::new(stream).lines();
                            while recv_at.len() < frames_per_conn as usize || !synced {
                                let line = lines
                                    .next()
                                    .expect("connection closed early")
                                    .expect("read reply");
                                assert!(line.contains("\"ok\":true"), "rejected: {line}");
                                if line.contains("\"synced\"") {
                                    synced = true;
                                } else {
                                    recv_at.push(Instant::now());
                                }
                            }
                        }
                        Plane::Binary => {
                            let mut r = BufReader::new(stream);
                            while recv_at.len() < frames_per_conn as usize || !synced {
                                let f = binary::read_frame(&mut r, binary::DEFAULT_MAX_FRAME)
                                    .expect("read frame")
                                    .expect("connection closed early");
                                match f {
                                    binary::Frame::Ack { .. } => recv_at.push(Instant::now()),
                                    binary::Frame::Synced => synced = true,
                                    other => panic!("unexpected reply frame: {other:?}"),
                                }
                            }
                        }
                    }
                    recv_at
                });
                let mut sent_at = Vec::with_capacity(frames_per_conn as usize);
                start_gate.wait();
                for bytes in &frames {
                    sent_at.push(Instant::now());
                    input.write_all(bytes).expect("send frame");
                }
                match plane {
                    Plane::Jsonl => writeln!(input, r#"{{"cmd":"sync"}}"#).expect("send sync"),
                    Plane::Binary => input.write_all(&binary::encode_sync()).expect("send sync"),
                }
                let recv_at = reader.join().expect("reader thread");
                sent_at
                    .iter()
                    .zip(&recv_at)
                    .map(|(s, r)| *r - *s)
                    .collect::<Vec<Duration>>()
            })
        })
        .collect();
    start_gate.wait();
    let t0 = Instant::now();

    let mut latencies: Vec<Duration> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("worker thread"));
    }
    let elapsed = t0.elapsed();
    latencies.sort();

    if let Some(maddr) = handle.metrics_addr() {
        scrape_metrics(maddr);
    }
    let m = handle.metrics();
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let stages = handle.pipeline_obs().merged_stages_json();
    let result = RunResult {
        label: label.to_string(),
        events: total,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        events_per_sec: total as f64 / elapsed.as_secs_f64(),
        ack_p50_us: percentile_us(&latencies, 0.50),
        ack_p99_us: percentile_us(&latencies, 0.99),
        wal_appends: load(&m.wal_appends),
        wal_bytes: load(&m.wal_bytes),
        fsyncs: load(&m.fsyncs),
        ingest_batches: load(&m.ingest_batches),
        ingest_batch_max: load(&m.ingest_batch_max),
        group_commits: load(&m.group_commits),
        acks_deferred: load(&m.acks_deferred),
        late_dropped: load(&m.late_dropped),
        stages,
    };
    assert_eq!(
        result.late_dropped, 0,
        "{label}: a constant-timestamp workload can never be late"
    );
    handle.shutdown();
    result
}

fn result_json(r: &RunResult) -> Json {
    let float = |f: f64| {
        Json::Number(Number::from_f64((f * 10.0).round() / 10.0).unwrap_or_else(|| 0.into()))
    };
    let mut obj = Map::new();
    obj.insert("events".into(), Json::from(r.events));
    obj.insert("elapsed_ms".into(), float(r.elapsed_ms));
    obj.insert("events_per_sec".into(), float(r.events_per_sec));
    obj.insert("ack_p50_us".into(), float(r.ack_p50_us));
    obj.insert("ack_p99_us".into(), float(r.ack_p99_us));
    obj.insert("wal_appends".into(), Json::from(r.wal_appends));
    obj.insert("wal_bytes".into(), Json::from(r.wal_bytes));
    obj.insert("fsyncs".into(), Json::from(r.fsyncs));
    obj.insert("ingest_batches".into(), Json::from(r.ingest_batches));
    obj.insert("ingest_batch_max".into(), Json::from(r.ingest_batch_max));
    obj.insert("group_commits".into(), Json::from(r.group_commits));
    obj.insert("acks_deferred".into(), Json::from(r.acks_deferred));
    obj.insert("late_dropped".into(), Json::from(r.late_dropped));
    obj.insert("stages".into(), r.stages.clone());
    Json::Object(obj)
}

fn print_run(r: &RunResult) {
    eprintln!(
        "{:<14} {:>9.1} events/s  (ack p50 {:>7.0}us p99 {:>7.0}us, {} fsyncs, {} group commits)",
        r.label, r.events_per_sec, r.ack_p50_us, r.ack_p99_us, r.fsyncs, r.group_commits
    );
}

/// One line per pipeline stage with samples: where the time went.
fn print_stages(r: &RunResult) {
    let Some(stages) = r.stages.as_object() else {
        return;
    };
    for (stage, s) in stages {
        let count = s.get("count").and_then(Json::as_u64).unwrap_or(0);
        if count == 0 {
            continue;
        }
        let q = |k: &str| s.get(k).and_then(Json::as_u64).unwrap_or(0);
        eprintln!(
            "    {:<18} count {:>7}  p50 {:>7}  p99 {:>9}  max {:>9}",
            stage,
            count,
            q("p50"),
            q("p99"),
            q("max")
        );
    }
}

/// The committed number for `path.to.label.events_per_sec`, if the
/// committed file exists and has that shape (tolerant: any mismatch is
/// just "no baseline").
fn committed_rate(old: &Option<Json>, path: &[&str], label: &str) -> Option<f64> {
    let mut node = old.as_ref()?;
    for key in path {
        node = node.get(key)?;
    }
    node.get(label)?.get("events_per_sec")?.as_f64()
}

fn print_before_after(old: &Option<Json>, path: &[&str], r: &RunResult) {
    match committed_rate(old, path, &r.label) {
        Some(b) if b > 0.0 => eprintln!(
            "{:<14} {:>9.1} -> {:>9.1} events/s  ({:.2}x)",
            r.label,
            b,
            r.events_per_sec,
            r.events_per_sec / b
        ),
        _ => eprintln!("{:<14} (no committed baseline)", r.label),
    }
}

fn main() {
    let mut events: u64 = 20_000;
    let mut only_shards: Option<u32> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let v = args.next().expect("--shards needs a value");
                only_shards = Some(v.parse().expect("--shards must be an integer"));
            }
            "--fsync" => {
                let v = args.next().expect("--fsync needs a value");
                fsync = v.parse().expect("bad --fsync policy");
            }
            n => events = n.parse().expect("EVENTS must be an integer"),
        }
    }

    let dir = std::env::temp_dir().join(format!("fenestra-ingest-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_ingest.json");
    let committed: Option<Json> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());

    // Single-configuration mode: run one shard count and merge it into
    // the committed file without disturbing the other numbers.
    if let Some(n) = only_shards {
        let label = format!("shards-{n}");
        let r = run(
            &label,
            events,
            Some((&dir.join("only"), fsync)),
            1,
            1,
            n.max(1),
            SHARD_SWEEP_COMMIT_MAX,
        );
        print_run(&r);
        print_before_after(&committed, &["sweeps", "shards"], &r);
        let _ = std::fs::remove_dir_all(&dir);
        let mut root = match committed {
            Some(Json::Object(m)) => m,
            _ => {
                let mut m = Map::new();
                m.insert("benchmark".into(), Json::from("ingest_smoke"));
                m
            }
        };
        let mut sweeps = match root.remove("sweeps") {
            Some(Json::Object(m)) => m,
            _ => Map::new(),
        };
        let mut shards = match sweeps.remove("shards") {
            Some(Json::Object(m)) => m,
            _ => Map::new(),
        };
        shards.insert(label, result_json(&r));
        sweeps.insert("shards".into(), Json::Object(shards));
        root.insert("sweeps".into(), Json::Object(sweeps));
        let mut text = Json::Object(root).to_string();
        text.push('\n');
        std::fs::write(&out, text).expect("write BENCH_ingest.json");
        eprintln!("merged into {}", out.display());
        return;
    }

    // Headline runs: one connection, single-event lines, the three
    // fsync policies. Group commit still engages (the engine coalesces
    // the pipelined queue), which is exactly the production shape.
    eprintln!("-- fsync policies (1 connection, single-event lines) --");
    let main_runs = [
        run("wal-off", events, None, 1, 1, 1, 512),
        run(
            "wal-every-64",
            events,
            Some((&dir.join("every64"), FsyncPolicy::EveryN(64))),
            1,
            1,
            1,
            512,
        ),
        run(
            "wal-always",
            events,
            Some((&dir.join("always"), FsyncPolicy::Always)),
            1,
            1,
            1,
            512,
        ),
    ];
    for r in &main_runs {
        print_run(r);
    }
    eprintln!("wal-always stage breakdown (µs; late_margin in ms):");
    print_stages(&main_runs[2]);

    // Client batch-frame sweep under strict durability.
    eprintln!("-- batch frames (1 connection, fsync always) --");
    let batch_runs: Vec<RunResult> = [8u64, 64, 512]
        .iter()
        .map(|&n| {
            run(
                &format!("batch-{n}"),
                events,
                Some((&dir.join(format!("batch{n}")), FsyncPolicy::Always)),
                n,
                1,
                1,
                512,
            )
        })
        .collect();
    for r in &batch_runs {
        print_run(r);
    }

    // Connection sweep under strict durability: the group commit
    // coalesces across connections.
    eprintln!("-- connections (single-event lines, fsync always) --");
    let conn_runs: Vec<RunResult> = [4u64, 8]
        .iter()
        .map(|&n| {
            run(
                &format!("conns-{n}"),
                events,
                Some((&dir.join(format!("conns{n}")), FsyncPolicy::Always)),
                1,
                n,
                1,
                512,
            )
        })
        .collect();
    for r in &conn_runs {
        print_run(r);
        if r.late_dropped > 0 {
            eprintln!(
                "  {} of {} events dropped late — stage breakdown:",
                r.late_dropped, r.events
            );
            print_stages(r);
        }
    }

    // Shard sweep under per-event durability (group commit off): each
    // event pays a full WAL append + fsync, and per-shard WALs overlap
    // those flushes — see SHARD_SWEEP_COMMIT_MAX for why this is the
    // configuration where shard scaling is actually measurable.
    eprintln!("-- shards (1 connection, per-event commit, fsync always) --");
    let shard_runs: Vec<RunResult> = [1u32, 2, 4, 8]
        .iter()
        .map(|&n| {
            run(
                &format!("shards-{n}"),
                events,
                Some((&dir.join(format!("shards{n}")), FsyncPolicy::Always)),
                1,
                1,
                n,
                SHARD_SWEEP_COMMIT_MAX,
            )
        })
        .collect();
    for r in &shard_runs {
        print_run(r);
    }

    // Wire-plane A/B at 256 pipelined connections: the same batch
    // workload through the JSONL plane and the binary plane of one
    // listener; the ratio isolates front-door (parse + route) cost.
    const AB_CONNS: u64 = 256;
    const AB_FRAMES: u64 = 20;
    const AB_FRAME_SIZE: u64 = 16;
    const AB_SHARDS: u32 = 8;
    eprintln!("-- wire planes (256 connections, 16-event frames, 8 shards, fsync always) --");
    // One run per plane is not a measurement on a shared disk:
    // ambient fsync latency swings a single run by ±40%, easily
    // drowning the front-door difference. Interleave three rounds
    // per plane (J,B,J,B,J,B) so slow-disk minutes hit both planes
    // alike, then score each plane by its median-throughput round.
    const AB_ROUNDS: usize = 3;
    let mut jsonl_rounds = Vec::with_capacity(AB_ROUNDS);
    let mut binary_rounds = Vec::with_capacity(AB_ROUNDS);
    for round in 0..AB_ROUNDS {
        jsonl_rounds.push(run_plane(
            "jsonl-conns-256",
            Plane::Jsonl,
            AB_CONNS,
            AB_FRAMES,
            AB_FRAME_SIZE,
            AB_SHARDS,
            &dir.join(format!("jsonl256-{round}")),
        ));
        binary_rounds.push(run_plane(
            "binary-conns-256",
            Plane::Binary,
            AB_CONNS,
            AB_FRAMES,
            AB_FRAME_SIZE,
            AB_SHARDS,
            &dir.join(format!("bin256-{round}")),
        ));
    }
    let median = |mut rounds: Vec<RunResult>| -> RunResult {
        rounds.sort_by(|a, b| a.events_per_sec.total_cmp(&b.events_per_sec));
        rounds.remove(rounds.len() / 2)
    };
    let plane_runs = [median(jsonl_rounds), median(binary_rounds)];
    for r in &plane_runs {
        print_run(r);
    }
    eprintln!("binary-conns-256 decode/dispatch breakdown (µs):");
    print_stages(&plane_runs[1]);
    let plane_ratio = plane_runs[1].events_per_sec / plane_runs[0].events_per_sec;
    let _ = std::fs::remove_dir_all(&dir);

    let mut root = Map::new();
    root.insert("benchmark".into(), Json::from("ingest_smoke"));
    root.insert("events".into(), Json::from(events));
    let mut by_label = Map::new();
    for r in &main_runs {
        by_label.insert(r.label.clone(), result_json(r));
    }
    root.insert("runs".into(), Json::Object(by_label));
    let mut sweeps = Map::new();
    let mut batch = Map::new();
    for r in &batch_runs {
        batch.insert(r.label.clone(), result_json(r));
    }
    sweeps.insert("batch_frames".into(), Json::Object(batch));
    let mut conns = Map::new();
    for r in &conn_runs {
        conns.insert(r.label.clone(), result_json(r));
    }
    sweeps.insert("connections".into(), Json::Object(conns));
    let mut shards_obj = Map::new();
    for r in &shard_runs {
        shards_obj.insert(r.label.clone(), result_json(r));
    }
    sweeps.insert("shards".into(), Json::Object(shards_obj));
    let mut planes = Map::new();
    for r in &plane_runs {
        planes.insert(r.label.clone(), result_json(r));
    }
    planes.insert(
        "binary_vs_jsonl".into(),
        Json::Number(
            Number::from_f64((plane_ratio * 100.0).round() / 100.0).unwrap_or_else(|| 0.into()),
        ),
    );
    sweeps.insert("planes".into(), Json::Object(planes));
    root.insert("sweeps".into(), Json::Object(sweeps));

    // Before/after against the committed numbers (CI surfaces this as
    // a non-gating signal).
    if committed.is_some() {
        eprintln!("-- before/after vs committed BENCH_ingest.json --");
        for r in &main_runs {
            print_before_after(&committed, &["runs"], r);
        }
        for r in &shard_runs {
            print_before_after(&committed, &["sweeps", "shards"], r);
        }
    }
    let off = main_runs[0].events_per_sec;
    let always = main_runs[2].events_per_sec;
    eprintln!(
        "wal-always runs at {:.1}% of wal-off ({:.1}x slowdown)",
        always / off * 100.0,
        off / always
    );
    let (s1, s4) = (shard_runs[0].events_per_sec, shard_runs[2].events_per_sec);
    eprintln!(
        "shards-4 runs at {:.2}x shards-1 under fsync always",
        s4 / s1
    );
    eprintln!("binary plane runs at {plane_ratio:.2}x the JSONL plane at {AB_CONNS} connections");

    let mut text = Json::Object(root).to_string();
    text.push('\n');
    std::fs::write(&out, text).expect("write BENCH_ingest.json");
    eprintln!("wrote {}", out.display());
}
