//! Criterion microbenchmarks for the temporal store (experiment E7).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use fenestra_base::time::Timestamp;
use fenestra_temporal::{AttrSchema, TemporalStore};

fn populated(n: u64, visitors: u64) -> TemporalStore {
    let mut s = TemporalStore::without_wal();
    s.declare_attr("room", AttrSchema::one());
    let ids: Vec<_> = (0..visitors)
        .map(|v| s.named_entity(format!("v{v}").as_str()))
        .collect();
    for i in 0..n {
        s.replace_at(
            ids[(i % visitors) as usize],
            "room",
            format!("room{}", i % 17).as_str(),
            Timestamp::new(i + 1),
        )
        .unwrap();
    }
    s
}

fn bench_writes(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/writes");
    g.sample_size(20);
    g.bench_function("replace_1k", |b| {
        b.iter_batched(
            || {
                let mut s = TemporalStore::without_wal();
                s.declare_attr("room", AttrSchema::one());
                let e = s.named_entity("v");
                (s, e)
            },
            |(mut s, e)| {
                for i in 0..1_000u64 {
                    s.replace_at(
                        e,
                        "room",
                        format!("r{}", i % 9).as_str(),
                        Timestamp::new(i + 1),
                    )
                    .unwrap();
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("assert_many_1k", |b| {
        b.iter_batched(
            || {
                let mut s = TemporalStore::without_wal();
                let e = s.named_entity("v");
                (s, e)
            },
            |(mut s, e)| {
                for i in 0..1_000u64 {
                    s.assert_at(e, "tag", i as i64, Timestamp::new(i + 1))
                        .unwrap();
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut g = c.benchmark_group("store/reads");
    g.sample_size(30);
    for n in [10_000u64, 100_000] {
        let store = populated(n, 100);
        let e = store.lookup_entity("v0").unwrap();
        g.bench_with_input(BenchmarkId::new("current_point", n), &n, |b, _| {
            b.iter(|| store.current().value(e, "room"))
        });
        let probe = Timestamp::new(n / 2);
        g.bench_with_input(BenchmarkId::new("asof_point", n), &n, |b, _| {
            b.iter(|| store.as_of(probe).value(e, "room"))
        });
        g.bench_with_input(BenchmarkId::new("history_scan", n), &n, |b, _| {
            b.iter(|| store.history(e, "room").len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_writes, bench_reads);
criterion_main!(benches);
