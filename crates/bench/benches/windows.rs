//! Criterion benchmarks for sliding-window aggregation strategies
//! (experiment E9 — Li et al. panes vs incremental vs recompute).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fenestra_base::record::Event;
use fenestra_base::time::Duration;
use fenestra_stream::aggregate::AggSpec;
use fenestra_stream::executor::Executor;
use fenestra_stream::graph::Graph;
use fenestra_stream::window::time::{SlidingStrategy, TimeWindowOp};

fn events(n: u64) -> Vec<Event> {
    (0..n)
        .map(|i| Event::from_pairs("s", i * 10, [("v", ((i * 31) % 1000) as i64)]))
        .collect()
}

fn run(evs: &[Event], size: u64, slide: u64, strat: SlidingStrategy) -> usize {
    let mut g = Graph::new();
    let win = g.add_op(
        TimeWindowOp::sliding(Duration::millis(size), Duration::millis(slide))
            .strategy(strat)
            .aggregate(AggSpec::sum("v", "total")),
    );
    g.connect_source("s", win);
    let sink = g.add_sink();
    g.connect(win, sink.node);
    let mut ex = Executor::new(g);
    ex.run(evs.iter().cloned());
    ex.finish();
    sink.take().len()
}

fn bench_strategies(c: &mut Criterion) {
    let evs = events(20_000);
    let mut g = c.benchmark_group("windows/sliding_20x_overlap");
    g.sample_size(10);
    for (name, strat) in [
        ("recompute", SlidingStrategy::Recompute),
        ("incremental", SlidingStrategy::Incremental),
        ("panes", SlidingStrategy::Panes),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strat, |b, &s| {
            b.iter(|| run(&evs, 20_000, 1_000, s))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("windows/tumbling");
    g.sample_size(10);
    g.bench_function("tumbling_1s", |b| {
        b.iter(|| run(&evs, 1_000, 1_000, SlidingStrategy::Panes))
    });
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
